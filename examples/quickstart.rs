//! Quickstart: assemble an AHB system, instrument it, print the energy
//! breakdown.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ahbpower::{report, AnalysisConfig, PowerSession};
use ahbpower_ahb::{AddressMap, AhbBusBuilder, HBurst, HSize, MemorySlave, Op, ScriptedMaster};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A bus: one master, two memory slaves at 0x0000_0000 / 0x0000_1000.
    let script = vec![
        Op::write(0x0000, 0xCAFE_F00D),
        Op::read(0x0000),
        Op::Idle(4),
        Op::Burst {
            write: true,
            burst: HBurst::Incr4,
            addr: 0x1000,
            data: vec![0x11, 0x22, 0x33, 0x44],
            size: HSize::Word,
            busy_between: 0,
        },
        Op::Burst {
            write: false,
            burst: HBurst::Wrap4,
            addr: 0x1008,
            data: vec![0; 4],
            size: HSize::Word,
            busy_between: 0,
        },
    ];
    let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
        .master(Box::new(ScriptedMaster::new(script)))
        .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
        .slave(Box::new(MemorySlave::new(0x1000, 1, 0)))
        .build()?;

    // 2. The power instrumentation (paper-form macromodels, 100 MHz).
    let cfg = AnalysisConfig {
        n_masters: 1,
        n_slaves: 2,
        window_cycles: 5,
        ..AnalysisConfig::paper_testbench()
    };
    let mut session = PowerSession::new(&cfg);

    // 3. Run and report.
    session.run(&mut bus, 60);
    println!("--- instruction energy (Table-1 style) ---");
    print!("{}", report::table1_text(session.ledger()));
    println!("--- sub-block shares (Fig-6 style) ---");
    print!("{}", session.blocks());
    println!("--- power over time (Fig-3 style) ---");
    print!(
        "{}",
        report::trace_ascii(session.trace_points(), |p| p.total_w, 40)
    );
    println!(
        "total: {:.2} pJ over {} cycles",
        session.total_energy() * 1e12,
        session.blocks().cycles()
    );

    // 4. The functional results are still intact (instrumentation is
    //    non-intrusive): the wrap burst read the data the incr burst wrote.
    let m = bus
        .master_as::<ScriptedMaster>(0)
        .expect("master 0 is scripted");
    let reads: Vec<(u32, u32)> = m.reads().collect();
    assert_eq!(reads[0], (0x0000, 0xCAFE_F00D));
    assert_eq!(reads[1], (0x1008, 0x33));
    println!("reads observed: {reads:x?}");
    Ok(())
}
