//! Hosting the instrumented bus on the discrete-event kernel — the paper's
//! SystemC topology: the bus is one clocked module, the power monitor a
//! separate module communicating through a signal (the "global model" of
//! Fig. 1). See the `trace_driven` example for waveform (VCD) dumping.
//!
//! ```text
//! cargo run --release --example kernel_hosted
//! ```

use ahbpower::{run_on_kernel, AnalysisConfig, PowerSession};
use ahbpower_sim::SimTime;
use ahbpower_workloads::PaperTestbench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = AnalysisConfig::paper_testbench();
    let bus = PaperTestbench::sized_for(2_000, cfg.seed).build()?;
    let session = PowerSession::new(&cfg);

    let period = SimTime::from_ps(cfg.period_ps());
    let run = run_on_kernel(bus, Some(session), 2_000, period)?;

    println!("kernel time:   {}", run.kernel.now());
    let stats = run.kernel.stats();
    println!(
        "kernel stats:  {} deltas, {} activations, {} signal changes",
        stats.deltas, stats.activations, stats.signal_changes
    );
    let bus = run.bus.borrow();
    println!(
        "bus stats:     {} cycles, {} transfers OK, {} handovers",
        bus.stats().cycles,
        bus.stats().transfers_ok,
        bus.stats().handovers
    );
    let session = run.session.as_ref().expect("instrumentation attached");
    println!(
        "energy:        {:.3} nJ over {} observed cycles",
        session.borrow().total_energy() * 1e9,
        session.borrow().blocks().cycles()
    );
    print!("{}", session.borrow().blocks());
    Ok(())
}
