//! The paper's headline experiment in miniature: run the DATE'03 testbench
//! (two WRITE-READ masters + default master, three slaves) under the power
//! FSM and print the instruction energy analysis and sub-block shares.
//!
//! ```text
//! cargo run --release --example instruction_energy [cycles]
//! ```

use ahbpower::{report, AnalysisConfig, PowerSession};
use ahbpower_workloads::PaperTestbench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cycles: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(100_000);
    let cfg = AnalysisConfig::paper_testbench();
    let tb = PaperTestbench::sized_for(cycles, cfg.seed);
    let mut bus = tb.build()?;
    let mut session = PowerSession::new(&cfg);
    session.run(&mut bus, cycles);

    println!(
        "paper testbench: {cycles} cycles at 100 MHz = {:.1} us simulated",
        cycles as f64 / cfg.f_clk_hz * 1e6
    );
    println!(
        "transfers OK: {}, handovers: {}, errors: {}\n",
        bus.stats().transfers_ok,
        bus.stats().handovers,
        bus.stats().errors
    );
    println!("== instruction energy analysis (paper Table 1) ==");
    print!("{}", report::table1_text(session.ledger()));
    println!("\n== sub-block contributions (paper Fig. 6) ==");
    print!("{}", session.blocks());
    println!(
        "\naverage bus power: {:.3} mW, peak (200 ns windows): {:.3} mW",
        session.trace().average_power() * 1e3,
        session.trace().peak_power() * 1e3
    );
    Ok(())
}
