//! Trace-driven stimulus + waveform dump: parse a transaction script from
//! text, run it under power instrumentation, and write both a VCD of the
//! bus wires and the energy report.
//!
//! ```text
//! cargo run --release --example trace_driven [script.txt]
//! ```

use std::fs;

use ahbpower::{AnalysisConfig, PowerSession};
use ahbpower_ahb::{parse_ops, AddressMap, AhbBusBuilder, BusTracer, MemorySlave, ScriptedMaster};
use ahbpower_sim::SimTime;

const DEFAULT_SCRIPT: &str = "\
# Default demo trace: write-read pairs, a burst, idle gaps.
write 0x100 0xdeadbeef
read  0x100
idle  4
burst w incr4 0x200 0x11 0x22 0x33 0x44
burst r wrap4 0x208
idle  2
lock
  write 0x300 0x1
  read  0x300
endlock
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => fs::read_to_string(&path)?,
        None => DEFAULT_SCRIPT.to_string(),
    };
    let ops = parse_ops(&text)?;
    println!(
        "parsed {} ops:\n{}",
        ops.len(),
        ahbpower_ahb::format_ops(&ops)
    );

    let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
        .master(Box::new(ScriptedMaster::new(ops)))
        .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
        .build()?;
    let cfg = AnalysisConfig {
        n_masters: 1,
        n_slaves: 1,
        window_cycles: 4,
        ..AnalysisConfig::paper_testbench()
    };
    let mut session = PowerSession::new(&cfg);
    let mut tracer = BusTracer::new(1, 1, SimTime::from_ps(cfg.period_ps()));
    let mut cycles = 0;
    while cycles < 500 && !bus.all_masters_done() {
        let snap = bus.step();
        session.observe(snap);
        tracer.observe(snap);
        cycles += 1;
    }
    println!("--- energy by instruction ---");
    print!("{}", ahbpower::report::table1_text(session.ledger()));
    let m = bus.master_as::<ScriptedMaster>(0).expect("scripted master");
    println!(
        "completed {} transfers in {cycles} cycles; reads: {:x?}",
        m.completed(),
        m.reads().collect::<Vec<_>>()
    );
    fs::create_dir_all("results")?;
    fs::write("results/trace_driven.vcd", tracer.render())?;
    println!("waveforms -> results/trace_driven.vcd (open in any VCD viewer)");
    Ok(())
}
