//! The paper's Section 5.1 characterization flow: synthesize each AHB
//! sub-block at gate level (NOT/AND one-hot decoder, AND-OR-tree muxes,
//! priority arbiter), sweep it over Hamming distances, fit the macromodel
//! coefficients, and compare analytic vs fitted vs measured energy.
//!
//! ```text
//! cargo run --release --example macromodel_validation
//! ```

use ahbpower::{fit_ahb_power_model, report, AnalysisConfig};
use ahbpower_gate::{mux_tree, one_hot_decoder, priority_arbiter};

fn main() {
    let cfg = AnalysisConfig::paper_testbench();
    let tech = cfg.tech();

    // Show what the "synthesis" step produced, like a SIS session would.
    println!("== synthesized reference netlists ==");
    for (name, stats) in [
        (
            "one-hot decoder (3 slaves)",
            one_hot_decoder(3).netlist.stats(),
        ),
        ("M2S mux (41 x 3)", mux_tree(41, 3).netlist.stats()),
        ("S2M mux (35 x 4)", mux_tree(35, 4).netlist.stats()),
        ("priority arbiter (3)", priority_arbiter(3).netlist.stats()),
    ] {
        println!(
            "  {name:<26} {:>4} gates, {:>2} DFFs, {:>3} nets",
            stats.gates, stats.dffs, stats.nets
        );
    }

    // Characterize and validate all four macromodels.
    println!("\n== characterization sweeps and fits ==");
    let (model, validations) = fit_ahb_power_model(cfg.n_masters, cfg.n_slaves, &tech);
    print!("{}", report::validation_text(&validations));

    println!("== fitted coefficients in use ==");
    println!(
        "decoder: alpha = {:.3} pJ/HD, beta = {:.3} pJ",
        model.decoder.alpha * 1e12,
        model.decoder.beta * 1e12
    );
    println!(
        "M2S mux: {:.3} pJ per flipped bit, {:.2} pJ per handover",
        (model.m2s.a_data + model.m2s.a_out) * 1e12,
        model.m2s.b_sel * 1e12
    );
    println!(
        "S2M mux: {:.3} pJ per flipped bit, {:.2} pJ per slave switch",
        (model.s2m.a_data + model.s2m.a_out) * 1e12,
        model.s2m.b_sel * 1e12
    );
    println!(
        "arbiter: {:.3} pJ per request toggle, {:.2} pJ per handover, {:.2} pJ/cycle clock",
        model.arbiter.a_req * 1e12,
        model.arbiter.b_grant * 1e12,
        model.arbiter.e_clock * 1e12
    );
    for v in &validations {
        assert!(
            v.mean_rel_err_fit <= v.mean_rel_err_paper + 1e-12,
            "{}: fitting must not be worse than the analytic form",
            v.block
        );
    }
    println!("\nall fitted models at or below the analytic form's error — ok");
}
