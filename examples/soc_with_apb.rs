//! A fuller AMBA system: CPU-style master on the AHB, memory slaves, and an
//! AHB-to-APB bridge with peripherals (register file + timer) — the typical
//! architecture the paper describes ("a bridge to the lower bandwidth APB,
//! where most of the system peripheral devices are located") — all under
//! power instrumentation with per-master energy attribution.
//!
//! ```text
//! cargo run --release --example soc_with_apb
//! ```

use ahbpower::{AnalysisConfig, PowerSession};
use ahbpower_ahb::{
    AddrRange, AddressMap, AhbBusBuilder, ApbBridge, ApbTimer, IdleMaster, MasterId, MemorySlave,
    Op, RegisterFile, ScriptedMaster, SlaveId,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // APB segment: a register file at 0x000-0x0FF, a timer at 0x100-0x1FF.
    let bridge = ApbBridge::new(
        AddressMap::new(vec![
            AddrRange::new(0x000, 0x100, SlaveId(0)),
            AddrRange::new(0x100, 0x100, SlaveId(1)),
        ])?,
        vec![Box::new(RegisterFile::new(16)), Box::new(ApbTimer::new())],
    )
    .with_window(0x1000);

    // AHB: RAM at 0x0000, the APB bridge at 0x1000.
    let program = vec![
        Op::write(0x0010, 0xDEAD_BEEF), // RAM
        Op::write(0x1008, 0x42),        // APB regfile[2]
        Op::read(0x1008),               // read it back (two-cycle APB access)
        Op::Idle(3),
        Op::write(0x1104, 50), // timer compare = 50
        Op::Idle(40),
        Op::read(0x1108), // timer match flag
        Op::read(0x1100), // timer count
    ];
    let mut bus = AhbBusBuilder::new(AddressMap::new(vec![
        AddrRange::new(0x0000, 0x1000, SlaveId(0)),
        AddrRange::new(0x1000, 0x1000, SlaveId(1)),
    ])?)
    .default_master(MasterId(1))
    .master(Box::new(ScriptedMaster::new(program)))
    .master(Box::new(IdleMaster::new()))
    .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
    .slave(Box::new(bridge))
    .build()?;

    let cfg = AnalysisConfig {
        n_masters: 2,
        n_slaves: 2,
        window_cycles: 10,
        ..AnalysisConfig::paper_testbench()
    };
    let mut session = PowerSession::new(&cfg);
    let mut cycles = 0;
    while cycles < 500 && !bus.all_masters_done() {
        session.observe(bus.step());
        cycles += 1;
    }

    let cpu = bus.master_as::<ScriptedMaster>(0).expect("cpu master");
    let reads: Vec<(u32, u32)> = cpu.reads().collect();
    println!("CPU reads: {reads:x?}");
    assert_eq!(reads[0], (0x1008, 0x42), "APB register round-trip");
    assert_eq!(reads[1], (0x1108, 1), "timer matched after 50+ cycles");
    assert!(reads[2].1 > 50, "timer kept counting");

    let bridge = bus.slave_as::<ApbBridge>(1).expect("bridge");
    println!(
        "APB stats: {} reads, {} writes, {} unmapped",
        bridge.stats().reads,
        bridge.stats().writes,
        bridge.stats().unmapped
    );
    println!(
        "\nenergy: {:.2} pJ over {cycles} cycles",
        session.total_energy() * 1e12
    );
    for (i, e) in session.per_master_energy().iter().enumerate() {
        println!(
            "  master {i}: {:>8.2} pJ ({:.1}%)",
            e * 1e12,
            e / session.total_energy() * 100.0
        );
    }
    print!("{}", session.blocks());
    Ok(())
}
