//! Architecture exploration with the power dimension — the use case the
//! paper's introduction motivates: "in a small time it is possible to
//! evaluate hundreds of different configurations and architectures".
//!
//! Sweeps arbitration policy and slave wait states over an SoC-style
//! workload (CPU + DMA + streaming producer) and reports, per variant,
//! runtime, energy, average power and the energy hot-spot.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use ahbpower::{AnalysisConfig, PowerSession};
use ahbpower_ahb::Arbitration;
use ahbpower_workloads::SocScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<28} {:>9} {:>11} {:>9} {:>12}",
        "variant", "cycles", "energy", "avg pwr", "hot-spot"
    );
    for arbitration in [Arbitration::FixedPriority, Arbitration::RoundRobin] {
        for wait_states in [0u32, 1, 3] {
            let scenario = SocScenario {
                arbitration,
                wait_states,
                ..SocScenario::default()
            };
            let mut bus = scenario.build()?;
            let cfg = AnalysisConfig {
                n_masters: SocScenario::N_MASTERS,
                n_slaves: SocScenario::N_SLAVES,
                ..AnalysisConfig::paper_testbench()
            };
            let mut session = PowerSession::new(&cfg);
            // Run to completion under instrumentation.
            let mut cycles = 0u64;
            while cycles < 200_000 && !bus.all_masters_done() {
                let snap = bus.step();
                session.observe(snap);
                cycles += 1;
            }
            let energy = session.total_energy();
            let seconds = cycles as f64 / cfg.f_clk_hz;
            let hot = session
                .blocks()
                .shares()
                .into_iter()
                .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite shares"))
                .expect("four blocks");
            println!(
                "{:<28} {:>9} {:>8.2} uJ {:>6.2} mW {:>6} {:>4.1}%",
                format!("{arbitration}, {wait_states} waits"),
                cycles,
                energy * 1e6,
                energy / seconds * 1e3,
                hot.0,
                hot.2 * 100.0
            );
        }
    }
    println!(
        "\nReading: wait states stretch runtime (same work, lower average\n\
         power, same energy order); arbitration policy shifts energy by\n\
         changing the number of bus handovers. The hot-spot column is the\n\
         paper's takeaway — optimization effort belongs on the data path\n\
         (M2S), not the arbitration logic."
    );
    Ok(())
}
