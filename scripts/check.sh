#!/usr/bin/env bash
# Full local CI: build, lint, docs, tests, examples, experiments smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --all -- --check

echo "== build =="
cargo build --workspace --all-targets

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== tests =="
cargo test --workspace

echo "== examples =="
for e in quickstart instruction_energy design_space macromodel_validation \
         kernel_hosted soc_with_apb trace_driven; do
    cargo run --release --example "$e" > /dev/null
    echo "  $e ok"
done

echo "== static analysis =="
cargo run --release -p ahbpower-bench --bin repro -- analyze
# The analyzer must also *fail* when fed a protocol violation: a 4-beat
# word burst at 0x3fc crosses a 1 KB boundary.
BAD_SCRIPT="$(mktemp)"
trap 'rm -f "$BAD_SCRIPT"' EXIT
printf 'burst w incr4 0x3fc 1 2 3 4\n' > "$BAD_SCRIPT"
if cargo run --release -p ahbpower-bench --bin repro -- analyze --script "$BAD_SCRIPT" > /dev/null; then
    echo "  ERROR: analyze accepted an illegal script" >&2
    exit 1
fi
echo "  analyze ok (clean tree passes, seeded violation fails)"

echo "== deep concurrency verification =="
# Inverted directions first: each seeded fault must be *caught* (exit
# 1). A checker that lets its mutant through is a regression, same as a
# checker that flags the clean tree.
for MUTANT in ring-torn ordering-relaxed arbiter-double-grant; do
    if cargo run --release -p ahbpower-bench --bin repro -- analyze \
        --mutate "$MUTANT" > /dev/null; then
        echo "  ERROR: analyze --mutate $MUTANT went undetected" >&2
        exit 1
    fi
done
# Then the full clean pass (ring model checker + ordering lint census +
# arbiter state-space walk + tool self-check) — last, so
# results/analyze.jsonl holds the clean deep run for CI to archive. It
# must come back clean, and fast: EXPERIMENTS.md E18 budgets 60 s wall
# for the release binary.
DEEP_START="$(date +%s)"
cargo run --release -p ahbpower-bench --bin repro -- analyze --deep
DEEP_WALL="$(( $(date +%s) - DEEP_START ))"
if [ "$DEEP_WALL" -gt 60 ]; then
    echo "  ERROR: analyze --deep took ${DEEP_WALL}s (budget 60s)" >&2
    exit 1
fi
echo "  deep ok (all 3 seeded mutants caught; clean in ${DEEP_WALL}s <= 60s)"

echo "== experiments (smoke, 100k cycles) =="
cargo run --release -p ahbpower-bench --bin repro -- all --cycles 100000 > /dev/null
echo "  repro ok (artifacts in results/)"

echo "== telemetry (smoke, 100k cycles) =="
cargo run --release -p ahbpower-bench --bin repro -- telemetry --cycles 100000 > /dev/null
echo "  telemetry ok (results/telemetry.{jsonl,csv,prom})"

echo "== parallel sweep (smoke, 2 threads, 20k cycles) =="
cargo run --release -p ahbpower-bench --bin repro -- sweep --cycles 20000 --jobs 2 > /dev/null
echo "  sweep ok (results/sweep.csv)"

echo "== transaction trace (smoke, 100k cycles) =="
# `trace` self-checks the trace-event JSON and that the attributed energy
# equals the ledger total within 1e-9 J (exit 1 otherwise); grep for its
# verdict lines so a silent format regression can't slip through.
cargo run --release -p ahbpower-bench --bin repro -- trace --cycles 100000 --top 5 \
    > results/trace_smoke.log
grep -q "valid json" results/trace_smoke.log
grep -q "conservation ok" results/trace_smoke.log
echo "  trace ok (results/trace.json, results/energy.folded)"

echo "== live service (smoke, ephemeral port) =="
# Start `repro serve` on an OS-assigned port, probe every endpoint with
# the std-TcpStream client (no curl), and shut down via GET /quit. The
# serve process must exit 0 after flushing its final snapshots. The
# paper mix with a tripled arbiter from slice 3 flags deterministically
# (warmup 24 windows < first injected window 30), so the probe can
# demand a flight-recorder bundle with a complete causal chain.
SERVE_LOG="$(mktemp)"
rm -rf results/flightrec
cargo run --release -p ahbpower-bench --bin repro -- serve \
    --mix paper --slice-cycles 10000 --slices 6 --inject arb:3.0@3 > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR="$(grep -o 'http://[0-9.:]*' "$SERVE_LOG" | sed 's|http://||' || true)"
    [ -n "$ADDR" ] && break
    sleep 0.2
done
if [ -z "$ADDR" ]; then
    echo "  ERROR: serve never printed its address" >&2
    kill "$SERVE_PID" 2> /dev/null || true
    rm -f "$SERVE_LOG"
    exit 1
fi
# serve-probe hits every endpoint including the dashboard (/), the
# /events long-poll and the /query retention API, fails unless the
# stream carries >=1 TxnComplete, and — via --flightrec — unless the
# injected fault dumped a JSON-valid post-mortem bundle whose causal
# chain reaches a TxnComplete.
cargo run --release -p ahbpower-bench --bin repro -- serve-probe \
    --addr "$ADDR" --flightrec results/flightrec --quit
wait "$SERVE_PID"
grep -q "served" "$SERVE_LOG"
rm -f "$SERVE_LOG"
test -s results/observatory.jsonl
cargo run --release -p ahbpower-bench --bin repro -- query \
    --series energy --step 10 > /dev/null
echo "  serve ok (/ /healthz /metrics /status /events /query /quit on $ADDR; flight recorder + offline query)"

echo "== sharded serving + load generation (smoke) =="
# A 2-shard plane: serve-probe --shards 2 walks every merged endpoint
# plus the ?shard=K drill-downs and additionally demands that the
# merged /query energy equals the per-shard sum to 1e-9 over HTTP.
SHARD_LOG="$(mktemp)"
cargo run --release -p ahbpower-bench --bin repro -- serve \
    --mix paper --slice-cycles 10000 --slices 3 --shards 2 > "$SHARD_LOG" 2>&1 &
SHARD_PID=$!
SHARD_ADDR=""
for _ in $(seq 1 50); do
    SHARD_ADDR="$(grep -o 'http://[0-9.:]*' "$SHARD_LOG" | sed 's|http://||' || true)"
    [ -n "$SHARD_ADDR" ] && break
    sleep 0.2
done
if [ -z "$SHARD_ADDR" ]; then
    echo "  ERROR: sharded serve never printed its address" >&2
    kill "$SHARD_PID" 2> /dev/null || true
    rm -f "$SHARD_LOG"
    exit 1
fi
cargo run --release -p ahbpower-bench --bin repro -- serve-probe \
    --addr "$SHARD_ADDR" --shards 2 --quit
wait "$SHARD_PID"
grep -q "served" "$SHARD_LOG"
rm -f "$SHARD_LOG"
# `repro loadgen` self-hosts its own 2-shard server, drives every
# endpoint from 4 client threads, and exits 1 below the 1000 req/s
# floor (EXPERIMENTS.md E20) or past a 1% error rate.
cargo run --release -p ahbpower-bench --bin repro -- loadgen \
    --duration-s 3 --min-rps 1000 --out BENCH_serve.json
test -s BENCH_serve.json
# /query input validation: an empty range must fail cleanly, not panic.
if cargo run --release -p ahbpower-bench --bin repro -- query \
    --series energy --from 5 --to 1 > /dev/null 2>&1; then
    echo "  ERROR: query accepted an empty range (--from 5 --to 1)" >&2
    exit 1
fi
echo "  sharded ok (merged plane probed on $SHARD_ADDR; loadgen >= 1000 req/s -> BENCH_serve.json; empty-range query rejected)"

echo "== structured events (smoke, 100k cycles) =="
# `events` replays the paper testbench with a mid-run injected fault and
# self-checks the causal chain (AnomalyFlagged -> EnergyBooked ->
# TxnComplete, same window/slice) plus line-by-line JSON validity; it
# exits 1 on any failure. Grep its verdict so a silent regression in the
# self-check itself can't slip through.
cargo run --release -p ahbpower-bench --bin repro -- events --cycles 100000 \
    > results/events_smoke.log
grep -q "causal check:.*link to EnergyBooked" results/events_smoke.log
echo "  events ok (results/events.jsonl, causal chain verified)"

echo "== power-emulation replay (smoke, 50k cycles) =="
# `record` writes the activity trace and self-checks that an identity
# replay reproduces the live ledger bit for bit; `replay` re-reads it,
# sweeps model variants and enforces the 1e-9 golden tolerance. Both
# exit 1 on any fidelity miss.
cargo run --release -p ahbpower-bench --bin repro -- record --cycles 50000 \
    --out results/replay_smoke.bin > /dev/null
cargo run --release -p ahbpower-bench --bin repro -- replay \
    --file results/replay_smoke.bin --variants 8 --jobs 2 \
    --out results/replay_smoke.jsonl > /dev/null
# Negative direction 1: a perturbed model must be *detected* as drifting
# from the recorded golden total (--expect-mismatch inverts the exit code).
cargo run --release -p ahbpower-bench --bin repro -- replay \
    --file results/replay_smoke.bin --inject arb:1.5 --expect-mismatch \
    > /dev/null
# Negative direction 2: a truncated trace file must fail cleanly (exit 1
# with a decode error, not a panic or a silently-shorter replay).
head -c 1000 results/replay_smoke.bin > results/replay_smoke_truncated.bin
if cargo run --release -p ahbpower-bench --bin repro -- replay \
    --file results/replay_smoke_truncated.bin > /dev/null 2>&1; then
    echo "  ERROR: replay accepted a truncated trace" >&2
    exit 1
fi
rm -f results/replay_smoke.bin results/replay_smoke_truncated.bin \
    results/replay_smoke.jsonl
echo "  replay ok (golden holds, injected drift and truncation both caught)"

echo "== baseline regression gate (200k cycles) =="
# A fresh snapshot must compare clean against itself at zero tolerance,
# the committed results/baseline.json must hold within 2%, and a seeded
# coefficient fault (arbiter x2) must trip the gate.
BASE_TMP="$(mktemp)"
cargo run --release -p ahbpower-bench --bin repro -- baseline record \
    --cycles 200000 --out "$BASE_TMP" > /dev/null
cargo run --release -p ahbpower-bench --bin repro -- baseline compare \
    --file "$BASE_TMP" --tolerance-pct 0 > /dev/null
if [ -f results/baseline.json ]; then
    cargo run --release -p ahbpower-bench --bin repro -- baseline compare \
        --file results/baseline.json --tolerance-pct 2 > /dev/null
    echo "  committed baseline holds within 2%"
fi
if cargo run --release -p ahbpower-bench --bin repro -- baseline compare \
    --file "$BASE_TMP" --tolerance-pct 2 --inject arb:2.0 > /dev/null 2>&1; then
    echo "  ERROR: baseline gate missed an injected arbiter fault" >&2
    rm -f "$BASE_TMP"
    exit 1
fi
rm -f "$BASE_TMP"
echo "  baseline ok (self-compare clean, injected fault trips the gate)"

echo "ALL CHECKS PASSED"
