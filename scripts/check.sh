#!/usr/bin/env bash
# Full local CI: build, lint, docs, tests, examples, experiments smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --all -- --check

echo "== build =="
cargo build --workspace --all-targets

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== tests =="
cargo test --workspace

echo "== examples =="
for e in quickstart instruction_energy design_space macromodel_validation \
         kernel_hosted soc_with_apb trace_driven; do
    cargo run --release --example "$e" > /dev/null
    echo "  $e ok"
done

echo "== static analysis =="
cargo run --release -p ahbpower-bench --bin repro -- analyze
# The analyzer must also *fail* when fed a protocol violation: a 4-beat
# word burst at 0x3fc crosses a 1 KB boundary.
BAD_SCRIPT="$(mktemp)"
trap 'rm -f "$BAD_SCRIPT"' EXIT
printf 'burst w incr4 0x3fc 1 2 3 4\n' > "$BAD_SCRIPT"
if cargo run --release -p ahbpower-bench --bin repro -- analyze --script "$BAD_SCRIPT" > /dev/null; then
    echo "  ERROR: analyze accepted an illegal script" >&2
    exit 1
fi
echo "  analyze ok (clean tree passes, seeded violation fails)"

echo "== experiments (smoke, 100k cycles) =="
cargo run --release -p ahbpower-bench --bin repro -- all --cycles 100000 > /dev/null
echo "  repro ok (artifacts in results/)"

echo "== telemetry (smoke, 100k cycles) =="
cargo run --release -p ahbpower-bench --bin repro -- telemetry --cycles 100000 > /dev/null
echo "  telemetry ok (results/telemetry.{jsonl,csv,prom})"

echo "== parallel sweep (smoke, 2 threads, 20k cycles) =="
cargo run --release -p ahbpower-bench --bin repro -- sweep --cycles 20000 --jobs 2 > /dev/null
echo "  sweep ok (results/sweep.csv)"

echo "== transaction trace (smoke, 100k cycles) =="
# `trace` self-checks the trace-event JSON and that the attributed energy
# equals the ledger total within 1e-9 J (exit 1 otherwise); grep for its
# verdict lines so a silent format regression can't slip through.
cargo run --release -p ahbpower-bench --bin repro -- trace --cycles 100000 --top 5 \
    > results/trace_smoke.log
grep -q "valid json" results/trace_smoke.log
grep -q "conservation ok" results/trace_smoke.log
echo "  trace ok (results/trace.json, results/energy.folded)"

echo "ALL CHECKS PASSED"
