#!/usr/bin/env bash
# Snapshot the performance numbers into the repo root:
#   BENCH_telemetry.json — functional-only vs power session with telemetry
#                          disabled (default) vs enabled;
#   BENCH_sweep.json     — serial vs parallel seed×style sweep (wall time,
#                          speedup, ns/cycle, byte-identity check);
#   BENCH_events.json    — structured event ring: no tap vs disabled ring
#                          (cold-atomic branch) vs enabled ring, plus the
#                          publish rate.
# All over the paper testbench.
#
# usage: scripts/bench_snapshot.sh [cycles] [seed] [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

CYCLES="${1:-1000000}"
SEED="${2:-2003}"
JOBS="${3:-$(nproc 2>/dev/null || echo 2)}"

cargo run --release -p ahbpower-bench --bin repro -- telemetry-overhead \
    --cycles "$CYCLES" --seed "$SEED" --jobs "$JOBS"
cargo run --release -p ahbpower-bench --bin repro -- sweep-bench \
    --cycles "$CYCLES" --seed "$SEED" --jobs "$JOBS"
cargo run --release -p ahbpower-bench --bin repro -- events-overhead \
    --cycles "$CYCLES" --seed "$SEED"
echo "snapshots written to BENCH_telemetry.json, BENCH_sweep.json and BENCH_events.json"
