#!/usr/bin/env bash
# Snapshot the telemetry-overhead numbers into BENCH_telemetry.json at the
# repo root: functional-only vs power session with telemetry disabled
# (default) vs enabled, over the paper testbench.
#
# usage: scripts/bench_snapshot.sh [cycles] [seed]
set -euo pipefail
cd "$(dirname "$0")/.."

CYCLES="${1:-1000000}"
SEED="${2:-2003}"

cargo run --release -p ahbpower-bench --bin repro -- telemetry-overhead \
    --cycles "$CYCLES" --seed "$SEED"
echo "snapshot written to BENCH_telemetry.json"
