#!/usr/bin/env bash
# Snapshot the performance numbers into the repo root:
#   BENCH_telemetry.json — functional-only vs power session with telemetry
#                          disabled (default) vs enabled;
#   BENCH_sweep.json     — serial vs parallel seed×style sweep (wall time,
#                          speedup, ns/cycle, byte-identity check);
#   BENCH_events.json    — structured event ring: no tap vs disabled ring
#                          (cold-atomic branch) vs enabled ring, plus the
#                          publish rate.
#   BENCH_replay.json    — record/replay power emulation: record overhead,
#                          replay throughput, trace size, and the N-variant
#                          sweep speedup vs re-simulation (golden-checked).
#   BENCH_observatory.json — multi-resolution retention: anomaly-only vs
#                          anomaly+observatory ingest, with the 5% overhead
#                          ceiling enforced (the run exits 1 past it).
#   BENCH_serve.json     — sharded serving plane under load: `repro loadgen`
#                          self-hosts a 2-shard server and reports
#                          throughput, per-endpoint p50/p95/p99 latency and
#                          shed/error rates (exit 1 below 1000 req/s).
# All over the paper testbench.
#
# usage: scripts/bench_snapshot.sh [cycles] [seed] [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

CYCLES="${1:-1000000}"
SEED="${2:-2003}"
# Floor jobs at 2 so BENCH_sweep.json's per_job_count ladder always has a
# parallel rung, even on single-core boxes (where it documents the thread
# overhead instead of masquerading as a regression — see EXPERIMENTS.md E13).
CORES="$(nproc 2>/dev/null || echo 2)"
JOBS="${3:-$(( CORES < 2 ? 2 : CORES ))}"

cargo run --release -p ahbpower-bench --bin repro -- telemetry-overhead \
    --cycles "$CYCLES" --seed "$SEED" --jobs "$JOBS"
cargo run --release -p ahbpower-bench --bin repro -- sweep-bench \
    --cycles "$CYCLES" --seed "$SEED" --jobs "$JOBS"
cargo run --release -p ahbpower-bench --bin repro -- events-overhead \
    --cycles "$CYCLES" --seed "$SEED"
cargo run --release -p ahbpower-bench --bin repro -- replay-bench \
    --cycles "$CYCLES" --seed "$SEED" --jobs "$JOBS"
cargo run --release -p ahbpower-bench --bin repro -- observatory-overhead \
    --cycles "$CYCLES" --seed "$SEED"
cargo run --release -p ahbpower-bench --bin repro -- loadgen \
    --duration-s 5 --min-rps 1000 --out BENCH_serve.json
echo "snapshots written to BENCH_telemetry.json, BENCH_sweep.json, BENCH_events.json, BENCH_replay.json, BENCH_observatory.json and BENCH_serve.json"
