//! Property-based invariants of the power-analysis layer.

use ahbpower::{
    hamming, AhbPowerModel, AnalysisConfig, BlockEnergy, GlobalProbe, InlineProbe, PowerProbe,
    PowerSession, PowerTrace, TechParams,
};
use ahbpower_ahb::{pack_wires, BusSnapshot, HBurst, HResp, HSize, HTrans, MasterId};
use proptest::prelude::*;

fn arb_snapshot() -> impl Strategy<Value = BusSnapshot> {
    (
        any::<u32>(),
        0u8..4,
        any::<bool>(),
        any::<u32>(),
        any::<u32>(),
        0u8..3,
        any::<bool>(),
        0u32..8,
    )
        .prop_map(
            |(haddr, trans, hwrite, hwdata, hrdata, master, hready, hbusreq)| {
                let htrans = match trans {
                    0 => HTrans::Idle,
                    1 => HTrans::Busy,
                    2 => HTrans::NonSeq,
                    _ => HTrans::Seq,
                };
                BusSnapshot {
                    cycle: 0,
                    haddr,
                    htrans,
                    hwrite,
                    hsize: HSize::Word,
                    hburst: HBurst::Single,
                    hwdata,
                    hrdata,
                    hready,
                    hresp: HResp::Okay,
                    hmaster: MasterId(master),
                    hmastlock: false,
                    hbusreq,
                    hgrant: pack_wires([master == 0, master == 1, master == 2]),
                    hsel: pack_wires([haddr % 3 == 0, haddr % 3 == 1, haddr % 3 == 2]),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cycle_energy_is_finite_and_nonnegative(
        a in arb_snapshot(),
        b in arb_snapshot(),
    ) {
        let model = AhbPowerModel::new(3, 3, &TechParams::default());
        let e = model.cycle_energy(&a, &b);
        for v in [e.dec, e.m2s, e.s2m, e.arb, e.total()] {
            prop_assert!(v.is_finite());
            prop_assert!(v >= 0.0);
        }
    }

    #[test]
    fn cycle_energy_is_zero_hd_symmetric(
        a in arb_snapshot(),
        b in arb_snapshot(),
    ) {
        // Hamming distances are symmetric, and so is every model term that
        // depends only on them. The handover/select indicators are also
        // symmetric (inequality). Hence E(a->b) == E(b->a).
        let model = AhbPowerModel::new(3, 3, &TechParams::default());
        let ab = model.cycle_energy(&a, &b).total();
        let ba = model.cycle_energy(&b, &a).total();
        prop_assert!((ab - ba).abs() <= 1e-12 * ab.max(1.0));
    }

    #[test]
    fn energy_is_monotone_in_wdata_bits(
        base in arb_snapshot(),
        word in any::<u32>(),
    ) {
        let model = AhbPowerModel::new(3, 3, &TechParams::default());
        let mut few = base;
        few.hwdata = base.hwdata ^ 1; // one bit flipped
        let mut many = base;
        many.hwdata = base.hwdata ^ (word | 1); // at least one bit flipped
        let e_few = model.cycle_energy(&base, &few).m2s;
        let e_many = model.cycle_energy(&base, &many).m2s;
        let hd_few = hamming(u64::from(base.hwdata), u64::from(few.hwdata));
        let hd_many = hamming(u64::from(base.hwdata), u64::from(many.hwdata));
        if hd_many >= hd_few {
            prop_assert!(e_many >= e_few - 1e-18);
        } else {
            prop_assert!(e_few >= e_many - 1e-18);
        }
    }

    #[test]
    fn global_probe_matches_inline_on_any_trace(
        snaps in prop::collection::vec(arb_snapshot(), 2..40),
    ) {
        let model = AhbPowerModel::new(3, 3, &TechParams::default());
        let mut inline = InlineProbe::new(model.clone());
        let mut global = GlobalProbe::new(model);
        for s in &snaps {
            inline.observe(s);
            global.observe(s);
        }
        let a = inline.total_energy();
        let b = global.total_energy();
        prop_assert!((a - b).abs() <= 1e-9 * a.max(1e-18), "{a} vs {b}");
    }

    #[test]
    fn trace_energy_equals_sum_of_inputs(
        energies in prop::collection::vec(0.0f64..1e-9, 1..100),
        window in 1u64..20,
    ) {
        let mut trace = PowerTrace::new(window, 100e6);
        let mut total_in = 0.0;
        for &e in &energies {
            trace.push(BlockEnergy {
                dec: e * 0.1,
                m2s: e * 0.4,
                s2m: e * 0.3,
                arb: e * 0.2,
            });
            total_in += e;
        }
        trace.finish();
        let total_out: f64 = trace
            .points()
            .iter()
            .map(|p| p.total_w)
            .zip(window_durations(&trace, energies.len() as u64, window))
            .map(|(w, dt)| w * dt)
            .sum();
        prop_assert!(
            (total_in - total_out).abs() <= 1e-9 * total_in.max(1e-18),
            "{total_in} vs {total_out}"
        );
    }

    #[test]
    fn hamming_properties(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        prop_assert_eq!(hamming(a, a), 0);
        prop_assert_eq!(hamming(a, b), hamming(b, a));
        // Triangle inequality over the hypercube metric.
        prop_assert!(hamming(a, c) <= hamming(a, b) + hamming(b, c));
    }
}

/// Durations of each emitted window (the last may be partial).
fn window_durations(trace: &PowerTrace, n: u64, window: u64) -> Vec<f64> {
    let full = (n / window) as usize;
    let mut out = vec![window as f64 / 100e6; full];
    let rem = n % window;
    if rem > 0 {
        out.push(rem as f64 / 100e6);
    }
    assert_eq!(out.len(), trace.points().len());
    out
}

#[test]
fn ledger_and_blocks_account_identically_on_real_traffic() {
    let cfg = AnalysisConfig::paper_testbench();
    let mut bus = ahbpower_workloads::PaperTestbench::sized_for(10_000, 9)
        .build()
        .expect("builds");
    let mut session = PowerSession::new(&cfg);
    session.run(&mut bus, 10_000);
    let a = session.ledger().total_energy();
    let b = session.blocks().totals().total();
    assert!(a > 0.0);
    assert!((a - b).abs() < 1e-12 * a);
    assert_eq!(session.ledger().total_count(), 10_000);
    assert_eq!(session.blocks().cycles(), 10_000);
}
