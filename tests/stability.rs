//! Golden-value stability tests: pin down the exact numerical results of a
//! small seeded run so refactors cannot silently change the physics.
//!
//! If a change legitimately alters the energy accounting (new macromodel
//! term, different classification), update the constants here and record
//! the reason in the commit; EXPERIMENTS.md numbers must be regenerated in
//! the same change.

use ahbpower::{report, AnalysisConfig, PowerSession};
use ahbpower_workloads::PaperTestbench;

fn run() -> (PowerSession, ahbpower_ahb::AhbBus) {
    let cfg = AnalysisConfig::paper_testbench();
    let tb = PaperTestbench::sized_for(2_000, 2003);
    let mut bus = tb.build().expect("builds");
    let mut session = PowerSession::new(&cfg);
    session.run(&mut bus, 2_000);
    (session, bus)
}

#[test]
fn golden_total_energy_is_stable() {
    let (session, _) = run();
    let pj = session.total_energy() * 1e12;
    // Exact value pinned from the current model; the band allows only
    // floating-point noise, not semantic drift. Pinned against the
    // vendored deterministic RNG (vendor/rand) — the workload stream, and
    // hence this constant, is stable per seed but differs from upstream
    // rand 0.10.
    let expected = 65_156.5;
    assert!(
        (pj - expected).abs() < 1.0,
        "total energy drifted: {pj:.1} pJ (expected ~{expected:.1} pJ) — if \
         intentional, update this constant and EXPERIMENTS.md"
    );
}

#[test]
fn golden_instruction_mix_is_stable() {
    let (session, _) = run();
    let csv = report::table1_csv(session.ledger());
    let first_data_row = csv.lines().nth(1).expect("at least one instruction");
    let instr = first_data_row.split(',').next().expect("csv field");
    assert_eq!(
        instr, "READ_WRITE",
        "dominant instruction changed: {first_data_row}"
    );
    // The five paper instructions and nothing unexpected beyond the two
    // start-up transients.
    let rows: Vec<&str> = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').next().expect("field"))
        .collect();
    for name in [
        "WRITE_READ",
        "READ_IDLE_HO",
        "IDLE_HO_WRITE",
        "IDLE_HO_IDLE_HO",
    ] {
        assert!(rows.contains(&name), "{name} missing from {rows:?}");
    }
}

#[test]
fn golden_bus_statistics_are_stable() {
    let (_, bus) = run();
    let s = bus.stats();
    assert_eq!(s.cycles, 2_000);
    // Deterministic workload: exact transfer/handover counts.
    assert_eq!(
        (s.transfers_ok, s.errors, s.retries, s.splits),
        (1413, 0, 0, 0),
        "functional behaviour drifted: {s:?}"
    );
    assert!(
        s.handovers > 100,
        "handover traffic expected: {}",
        s.handovers
    );
}

#[test]
fn golden_block_shares_are_stable() {
    let (session, _) = run();
    let shares = session.blocks().shares();
    let get = |name: &str| {
        shares
            .iter()
            .find(|(n, _, _)| *n == name)
            .expect("block present")
            .2
    };
    // Bands, not exact values: shares move a little with workload tweaks
    // but the ordering and rough magnitudes are part of the reproduction.
    let m2s = get("M2S");
    let s2m = get("S2M");
    let dec = get("DEC");
    let arb = get("ARB");
    assert!((0.40..0.60).contains(&m2s), "M2S {m2s}");
    assert!((0.30..0.50).contains(&s2m), "S2M {s2m}");
    assert!((0.03..0.12).contains(&dec), "DEC {dec}");
    assert!((0.01..0.12).contains(&arb), "ARB {arb}");
}
