//! Integration tests for the extension subsystems: APB bridge under real
//! bus traffic, statistical estimation vs simulation, second-IP (SRAM)
//! probing, trace-driven stimulus, and VCD dumping.

use ahbpower::{
    estimate_power, AnalysisConfig, GlobalProbe, InlineProbe, PowerProbe, PowerSession, SramModel,
    SramProbe, TechParams, TrafficStats,
};
use ahbpower_ahb::{
    parse_ops, AddrRange, AddressMap, AhbBusBuilder, ApbBridge, ApbTimer, BusTracer, IdleMaster,
    MasterId, MemorySlave, Op, ProtocolChecker, RegisterFile, ScriptedMaster, SlaveId,
};
use ahbpower_sim::SimTime;
use ahbpower_workloads::PaperTestbench;

fn apb_system(program: Vec<Op>) -> ahbpower_ahb::AhbBus {
    let bridge = ApbBridge::new(
        AddressMap::new(vec![
            AddrRange::new(0x000, 0x100, SlaveId(0)),
            AddrRange::new(0x100, 0x100, SlaveId(1)),
        ])
        .expect("map builds"),
        vec![Box::new(RegisterFile::new(16)), Box::new(ApbTimer::new())],
    )
    .with_window(0x1000);
    AhbBusBuilder::new(
        AddressMap::new(vec![
            AddrRange::new(0x0000, 0x1000, SlaveId(0)),
            AddrRange::new(0x1000, 0x1000, SlaveId(1)),
        ])
        .expect("map builds"),
    )
    .default_master(MasterId(1))
    .master(Box::new(ScriptedMaster::new(program)))
    .master(Box::new(IdleMaster::new()))
    .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
    .slave(Box::new(bridge))
    .build()
    .expect("bus builds")
}

#[test]
fn apb_accesses_are_protocol_clean_and_slower_than_ram() {
    let mut bus = apb_system(vec![
        Op::write(0x0010, 1), // RAM: zero-wait
        Op::write(0x1008, 2), // APB: one wait state (SETUP cycle)
        Op::read(0x1008),
        Op::read(0x0010),
    ]);
    let mut checker = ProtocolChecker::new();
    let mut cycles = 0;
    while cycles < 200 && !bus.all_masters_done() {
        checker.check(bus.step());
        cycles += 1;
    }
    assert!(bus.all_masters_done());
    assert!(
        checker.violations().is_empty(),
        "{:?}",
        checker.violations()
    );
    // Two APB accesses -> two wait cycles total.
    assert_eq!(bus.stats().wait_cycles, 2);
    let m = bus.master_as::<ScriptedMaster>(0).expect("scripted");
    let reads: Vec<(u32, u32)> = m.reads().collect();
    assert_eq!(reads, vec![(0x1008, 2), (0x0010, 1)]);
    let bridge = bus.slave_as::<ApbBridge>(1).expect("bridge");
    assert_eq!(bridge.stats().writes, 1);
    assert_eq!(bridge.stats().reads, 1);
}

#[test]
fn apb_timer_advances_with_bus_cycles() {
    let mut bus = apb_system(vec![Op::Idle(20), Op::read(0x1100)]);
    bus.run_until_done(200);
    let m = bus.master_as::<ScriptedMaster>(0).expect("scripted");
    let (_, count) = m.reads().next().expect("timer read completed");
    assert!(count >= 20, "timer ticked every bus cycle, got {count}");
}

#[test]
fn statistical_estimate_tracks_simulation_within_2x() {
    let cfg = AnalysisConfig::paper_testbench();
    let mut bus = PaperTestbench::sized_for(30_000, 7)
        .build()
        .expect("builds");
    let model = ahbpower::AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());
    let mut inline = InlineProbe::new(model.clone());
    for _ in 0..30_000 {
        inline.observe(bus.step());
    }
    let measured_w = inline.total_energy() * cfg.f_clk_hz / 30_000.0;
    let stats = TrafficStats::uniform_random(
        bus.stats().utilization(),
        0.5,
        14,
        bus.stats().handovers as f64 / bus.stats().cycles as f64,
    );
    let estimated_w = estimate_power(&model, &stats, cfg.f_clk_hz);
    let ratio = estimated_w / measured_w;
    assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn measured_stats_round_trip_through_estimator() {
    let cfg = AnalysisConfig::paper_testbench();
    let model = ahbpower::AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());
    let mut bus = PaperTestbench::sized_for(5_000, 3).build().expect("builds");
    let mut probe = GlobalProbe::new(model.clone());
    for _ in 0..5_000 {
        probe.observe(bus.step());
    }
    let stats = probe.traffic_stats();
    let predicted = ahbpower::estimate_cycle_energy(&model, &stats).total() * 4_999.0;
    let measured = probe.total_energy();
    assert!(
        (predicted - measured).abs() < 1e-6 * measured,
        "{predicted} vs {measured}"
    );
}

#[test]
fn sram_probe_and_bus_probe_coexist_on_one_stream() {
    let cfg = AnalysisConfig::paper_testbench();
    let mut bus = PaperTestbench::sized_for(8_000, 11)
        .build()
        .expect("builds");
    let mut session = PowerSession::new(&cfg);
    let tech = TechParams::default();
    let mut srams: Vec<SramProbe> = (0..3)
        .map(|i| SramProbe::new(SlaveId(i), SramModel::new(1024, 32, &tech)))
        .collect();
    for _ in 0..8_000 {
        let snap = bus.step();
        session.observe(snap);
        for p in &mut srams {
            p.observe(snap);
        }
    }
    // Every slave saw traffic; IP-level and bus-level ledgers both filled.
    for (i, p) in srams.iter().enumerate() {
        let rows = p.ledger().rows();
        assert!(
            rows.iter()
                .any(|(n, _, _)| n.contains("READ") || n.contains("WRITE")),
            "slave {i} saw no accesses: {rows:?}"
        );
    }
    assert!(session.total_energy() > 0.0);
    // The per-master attribution matches the total.
    let sum: f64 = session.per_master_energy().iter().sum();
    assert!((sum - session.total_energy()).abs() < 1e-12 * session.total_energy());
}

#[test]
fn trace_script_runs_with_instrumentation_and_vcd() {
    let ops = parse_ops("write 0x10 0xff\nread 0x10\nidle 2\nburst w incr4 0x40 1 2 3 4\n")
        .expect("parses");
    let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
        .master(Box::new(ScriptedMaster::new(ops)))
        .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
        .build()
        .expect("builds");
    let cfg = AnalysisConfig {
        n_masters: 1,
        n_slaves: 1,
        ..AnalysisConfig::paper_testbench()
    };
    let mut session = PowerSession::new(&cfg);
    let mut tracer = BusTracer::new(1, 1, SimTime::from_ns(10));
    let mut cycles = 0;
    while cycles < 100 && !bus.all_masters_done() {
        let snap = bus.step();
        session.observe(snap);
        tracer.observe(snap);
        cycles += 1;
    }
    assert!(bus.all_masters_done());
    assert_eq!(bus.stats().transfers_ok, 6);
    assert!(session.total_energy() > 0.0);
    let vcd = tracer.render();
    assert!(vcd.contains("$enddefinitions"));
    assert!(vcd.lines().filter(|l| l.starts_with('#')).count() > 3);
}
