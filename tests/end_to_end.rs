//! Cross-crate integration: the full reproduction pipeline, end to end.

use ahbpower::{report, ActivityMode, AnalysisConfig, Instruction, PowerSession};
use ahbpower_ahb::ProtocolChecker;
use ahbpower_sim::SimTime;
use ahbpower_workloads::PaperTestbench;

const CYCLES: u64 = 60_000;

fn run_session(seed: u64) -> (PowerSession, ahbpower_ahb::AhbBus) {
    let cfg = AnalysisConfig::paper_testbench();
    let mut bus = PaperTestbench::sized_for(CYCLES, seed)
        .build()
        .expect("testbench builds");
    let mut session = PowerSession::new(&cfg);
    session.run(&mut bus, CYCLES);
    (session, bus)
}

#[test]
fn paper_experiment_reproduces_table1_shape() {
    let (session, bus) = run_session(2003);
    let rows = session.ledger().rows();
    let find = |name: &str| rows.iter().find(|r| r.instruction.name() == name);
    // The paper's five instructions all execute.
    for name in [
        "WRITE_READ",
        "READ_WRITE",
        "READ_IDLE_HO",
        "IDLE_HO_WRITE",
        "IDLE_HO_IDLE_HO",
    ] {
        assert!(find(name).is_some(), "{name} missing from {rows:#?}");
    }
    // Data-transfer instructions without handover dominate the energy
    // ("possible optimization efforts should better concentrate on the AHB
    // data-path rather than on the arbitration logic").
    let data_share = find("WRITE_READ").unwrap().share + find("READ_WRITE").unwrap().share;
    assert!(
        data_share > 0.6,
        "data transfers should dominate, got {:.1}%",
        data_share * 100.0
    );
    // Handover-related instructions are visible but minor.
    let ho_share: f64 = rows
        .iter()
        .filter(|r| {
            r.instruction.from == ActivityMode::IdleHo || r.instruction.to == ActivityMode::IdleHo
        })
        .map(|r| r.share)
        .sum();
    assert!(
        ho_share > 0.005 && ho_share < 0.4,
        "handover share {ho_share}"
    );
    // Shares sum to one.
    let total_share: f64 = rows.iter().map(|r| r.share).sum();
    assert!((total_share - 1.0).abs() < 1e-9);
    // The bus did real work.
    assert!(bus.stats().transfers_ok > CYCLES / 10);
}

#[test]
fn fig6_block_ordering_matches_paper() {
    let (session, _) = run_session(2003);
    let shares = session.blocks().shares();
    let get = |name: &str| {
        shares
            .iter()
            .find(|(n, _, _)| *n == name)
            .expect("block present")
            .2
    };
    // Paper Fig. 6: the M2S data/control mux is the biggest consumer, the
    // arbiter the smallest; decoder is small.
    assert!(get("M2S") > get("S2M"), "M2S >= S2M");
    assert!(get("S2M") > get("DEC"), "S2M > DEC");
    assert!(get("DEC") > get("ARB"), "DEC > ARB");
    assert!(get("M2S") > 0.3, "M2S is the hot-spot");
    assert!(get("ARB") < 0.15, "arbitration energy is minor");
}

#[test]
fn power_traces_have_activity_and_idle_dips() {
    let (session, _) = run_session(2003);
    let pts = session.trace().points_before(4e-6);
    assert!(pts.len() >= 15, "4 us at 200 ns windows");
    let peak = pts.iter().map(|p| p.total_w).fold(0.0f64, f64::max);
    let min = pts.iter().map(|p| p.total_w).fold(f64::MAX, f64::min);
    assert!(peak > 0.0);
    assert!(min < peak, "the trace is not flat (idle/burst structure)");
    // Arbiter power is a small fraction of the total in every window.
    for p in pts {
        assert!(p.arb_w <= p.total_w * 0.5 + 1e-12);
        let sum = p.dec_w + p.m2s_w + p.s2m_w + p.arb_w;
        assert!((sum - p.total_w).abs() < 1e-9 * p.total_w.max(1e-12));
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let (a, _) = run_session(77);
    let (b, _) = run_session(77);
    let (c, _) = run_session(78);
    assert_eq!(
        report::table1_csv(a.ledger()),
        report::table1_csv(b.ledger())
    );
    assert!((a.total_energy() - b.total_energy()).abs() < 1e-30);
    assert!(
        (a.total_energy() - c.total_energy()).abs() > 0.0,
        "different seed should shift totals"
    );
}

#[test]
fn protocol_is_clean_under_instrumentation() {
    let cfg = AnalysisConfig::paper_testbench();
    let mut bus = PaperTestbench::sized_for(20_000, 5)
        .build()
        .expect("testbench builds");
    let mut session = PowerSession::new(&cfg);
    let mut checker = ProtocolChecker::new();
    for _ in 0..20_000 {
        let snap = bus.step();
        checker.check(snap);
        session.observe(snap);
    }
    assert!(
        checker.violations().is_empty(),
        "violations: {:?}",
        &checker.violations()[..checker.violations().len().min(3)]
    );
}

#[test]
fn kernel_hosted_run_matches_direct_run() {
    let cfg = AnalysisConfig::paper_testbench();
    let cycles = 3_000u64;
    let bus = PaperTestbench::sized_for(cycles, 11)
        .build()
        .expect("builds");
    let run = ahbpower::run_on_kernel(
        bus,
        Some(PowerSession::new(&cfg)),
        cycles,
        SimTime::from_ps(cfg.period_ps()),
    )
    .expect("kernel run");
    let kernel_energy = run.session.as_ref().unwrap().borrow().total_energy();

    let mut direct_bus = PaperTestbench::sized_for(cycles, 11)
        .build()
        .expect("builds");
    let mut direct = PowerSession::new(&cfg);
    direct.run(&mut direct_bus, cycles);

    assert!(kernel_energy > 0.0);
    assert!(
        (kernel_energy - direct.total_energy()).abs() < 1e-12 * kernel_energy,
        "{kernel_energy} vs {}",
        direct.total_energy()
    );
    assert_eq!(run.kernel.now(), SimTime::from_ps(cfg.period_ps()) * cycles);
}

#[test]
fn fsm_probe_table_round_trips_through_all_instructions() {
    // Calibrate on one run, replay on the identical run: totals match.
    let cfg = AnalysisConfig::paper_testbench();
    let model = ahbpower::AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());
    let mut bus = PaperTestbench::sized_for(5_000, 3).build().expect("builds");
    let trace: Vec<_> = (0..5_000).map(|_| *bus.step()).collect();
    let mut inline = ahbpower::InlineProbe::new(model);
    for s in &trace {
        ahbpower::PowerProbe::observe(&mut inline, s);
    }
    let mut fsm = ahbpower::FsmProbe::from_calibration(inline.fsm().ledger());
    for s in &trace {
        ahbpower::PowerProbe::observe(&mut fsm, s);
    }
    let a = ahbpower::PowerProbe::total_energy(&inline);
    let b = ahbpower::PowerProbe::total_energy(&fsm);
    assert!((a - b).abs() < 1e-9 * a);
    // And the instruction indices cover a consistent space.
    for instr in Instruction::all() {
        assert_eq!(Instruction::from_index(instr.index()), instr);
    }
}
