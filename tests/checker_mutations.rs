//! Mutation coverage for the protocol checker: record a clean snapshot
//! stream, inject one targeted corruption at a time, and assert the checker
//! flags exactly the intended rule. This guards against the checker rotting
//! into a rubber stamp.

use ahbpower_ahb::{
    AddressMap, AhbBusBuilder, BusSnapshot, HBurst, HResp, HSize, HTrans, MasterId, MemorySlave,
    Op, ProtocolChecker, Rule, ScriptedMaster,
};

/// A clean stream containing singles, a burst, wait states and idles.
fn clean_stream() -> Vec<BusSnapshot> {
    let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
        .master(Box::new(ScriptedMaster::new(vec![
            Op::write(0x10, 0xAA),
            Op::Burst {
                write: true,
                burst: HBurst::Incr4,
                addr: 0x100,
                data: vec![1, 2, 3, 4],
                size: HSize::Word,
                busy_between: 0,
            },
            Op::Idle(2),
            Op::read(0x1010), // slave 1 has a wait state
        ])))
        .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
        .slave(Box::new(MemorySlave::new(0x1000, 2, 0)))
        .build()
        .expect("bus builds");
    let mut out = Vec::new();
    for _ in 0..40 {
        out.push(*bus.step());
        if bus.all_masters_done() {
            break;
        }
    }
    out
}

fn violations_for(stream: &[BusSnapshot]) -> Vec<Rule> {
    let mut ck = ProtocolChecker::new();
    for s in stream {
        ck.check(s);
    }
    ck.violations().iter().map(|v| v.rule).collect()
}

fn first_index(stream: &[BusSnapshot], pred: impl Fn(&BusSnapshot) -> bool) -> usize {
    stream
        .iter()
        .position(pred)
        .expect("stream contains the wanted cycle")
}

#[test]
fn clean_stream_passes() {
    let stream = clean_stream();
    assert!(stream.len() > 10);
    assert_eq!(violations_for(&stream), vec![]);
}

#[test]
fn mutated_seq_address_is_caught() {
    let mut stream = clean_stream();
    let i = first_index(&stream, |s| s.htrans == HTrans::Seq);
    stream[i].haddr ^= 0x40;
    assert!(violations_for(&stream).contains(&Rule::SeqContinuity));
}

#[test]
fn mutated_wait_state_address_is_caught() {
    let mut stream = clean_stream();
    // A wait-state cycle (hready low): mutate the *following* cycle's
    // address-phase signals.
    let i = first_index(&stream, |s| !s.hready && s.hresp == HResp::Okay);
    stream[i + 1].haddr ^= 0x4;
    stream[i + 1].htrans = HTrans::NonSeq;
    let v = violations_for(&stream);
    assert!(
        v.contains(&Rule::AddressStableDuringWait) || v.contains(&Rule::SeqContinuity),
        "{v:?}"
    );
}

#[test]
fn mutated_hmaster_during_wait_is_caught() {
    let mut stream = clean_stream();
    let i = first_index(&stream, |s| !s.hready && s.hresp == HResp::Okay);
    stream[i + 1].hmaster = MasterId(9);
    assert!(violations_for(&stream).contains(&Rule::MasterStableDuringWait));
}

#[test]
fn injected_single_cycle_error_is_caught() {
    let mut stream = clean_stream();
    let i = first_index(&stream, |s| s.hready && s.hresp == HResp::Okay);
    stream[i].hresp = HResp::Error; // hready stays high: illegal 1-cycle error
    assert!(violations_for(&stream).contains(&Rule::TwoCycleResponse));
}

#[test]
fn injected_double_grant_is_caught() {
    let mut stream = clean_stream();
    stream[3].hgrant = 0b11;
    assert!(violations_for(&stream).contains(&Rule::GrantOneHot));
}

#[test]
fn injected_multi_hsel_is_caught() {
    let mut stream = clean_stream();
    stream[2].hsel = 0b11;
    assert!(violations_for(&stream).contains(&Rule::SelAtMostOneHot));
}

#[test]
fn injected_misalignment_is_caught() {
    let mut stream = clean_stream();
    let i = first_index(&stream, |s| s.htrans == HTrans::NonSeq);
    stream[i].haddr |= 0x1; // word transfer at odd address
    let v = violations_for(&stream);
    assert!(v.contains(&Rule::Alignment), "{v:?}");
}

#[test]
fn injected_busy_outside_burst_is_caught() {
    let mut stream = clean_stream();
    // Pick an idle cycle *following* an accepted idle, so the checker's
    // burst context is already cleared (BUSY right after a burst's last
    // beat would still be legal).
    let i = (1..stream.len())
        .find(|&k| {
            stream[k - 1].htrans == HTrans::Idle
                && stream[k - 1].hready
                && stream[k].htrans == HTrans::Idle
                && stream[k].hready
        })
        .expect("two consecutive idle cycles");
    stream[i].htrans = HTrans::Busy;
    let v = violations_for(&stream);
    assert!(v.contains(&Rule::BusyOnlyInBurst), "{v:?}");
}

#[test]
fn injected_burst_overrun_is_caught() {
    let mut stream = clean_stream();
    // Find the last SEQ beat of the INCR4 burst and duplicate it as a 5th
    // beat (continuing the address pattern so only the overrun fires).
    let last_seq = stream
        .iter()
        .rposition(|s| s.htrans == HTrans::Seq)
        .expect("burst in stream");
    let mut extra = stream[last_seq];
    extra.haddr += 4;
    stream.insert(last_seq + 1, extra);
    let v = violations_for(&stream);
    assert!(v.contains(&Rule::BurstOverrun), "{v:?}");
}

#[test]
fn each_mutation_is_localized() {
    // Sanity: a clean stream with one grant mutation yields exactly one
    // violation (no cascade).
    let mut stream = clean_stream();
    stream[5].hgrant = 0b00;
    let v = violations_for(&stream);
    assert_eq!(v, vec![Rule::GrantOneHot]);
}
