//! Property-based protocol conformance: random workloads, wait states,
//! error/split slaves, both arbitration policies — the checker must never
//! fire, and single-master memory traffic must round-trip.

use ahbpower_ahb::{
    AddrRange, AddressMap, AhbBusBuilder, AhbToAhbBridge, ApbBridge, ApbTimer, Arbitration,
    ErrorSlave, HBurst, HSize, IdleMaster, MasterId, MemorySlave, Op, ProtocolChecker,
    RegisterFile, ScriptedMaster, SlaveId, SplitSlave,
};
use proptest::prelude::*;

/// A strategy for random-but-legal op scripts inside a 3-slave, 0x3000-byte
/// address space.
fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let single = prop_oneof![
        (0u32..0xBFC, any::<u32>()).prop_map(|(a, v)| Op::write(a & !3, v)),
        (0u32..0xBFC).prop_map(|a| Op::read(a & !3)),
        (1u32..6).prop_map(Op::Idle),
        // Half-word and byte traffic.
        (0u32..0xBFC, any::<u32>()).prop_map(|(a, v)| Op::Write {
            addr: a & !1,
            value: v & 0xFFFF,
            size: HSize::Half,
        }),
        (0u32..0xBFE).prop_map(|a| Op::Read {
            addr: a,
            size: HSize::Byte,
        }),
        // Bursts, with optional BUSY insertion (kept inside one 1 KB block).
        (0u32..0x2C0, 0u32..2, prop::collection::vec(any::<u32>(), 4)).prop_map(
            |(a, busy, data)| Op::Burst {
                write: true,
                burst: HBurst::Incr4,
                addr: (a & !3) % 0xB00,
                data,
                size: HSize::Word,
                busy_between: busy,
            }
        ),
        (0u32..0x2C0).prop_map(|a| Op::Burst {
            write: false,
            burst: HBurst::Wrap8,
            addr: (a & !3) % 0xB00,
            data: vec![0; 8],
            size: HSize::Word,
            busy_between: 0,
        }),
    ];
    prop::collection::vec(single, 1..24)
}

/// Shared body of `checker_never_fires_on_two_master_random_traffic`, so
/// regression seeds promoted out of `*.proptest-regressions` exercise the
/// exact same system deterministically.
fn run_two_master_traffic(
    ops0: Vec<Op>,
    ops1: Vec<Op>,
    round_robin: bool,
    waits: u32,
) -> Result<(), String> {
    let policy = if round_robin {
        Arbitration::RoundRobin
    } else {
        Arbitration::FixedPriority
    };
    let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(3, 0x1000))
        .arbitration(policy)
        .default_master(MasterId(2))
        .master(Box::new(ScriptedMaster::new(ops0)))
        .master(Box::new(ScriptedMaster::new(ops1)))
        .master(Box::new(IdleMaster::new()))
        .slave(Box::new(MemorySlave::new(0x1000, waits, 0)))
        .slave(Box::new(MemorySlave::new(0x1000, 0, waits)))
        .slave(Box::new(MemorySlave::new(0x1000, waits, waits)))
        .build()
        .expect("bus builds");
    let mut checker = ProtocolChecker::new();
    for _ in 0..6_000 {
        checker.check(bus.step());
        if bus.all_masters_done() {
            break;
        }
    }
    if !bus.all_masters_done() {
        return Err("masters starved".to_string());
    }
    if !checker.violations().is_empty() {
        return Err(format!(
            "violations: {:?}",
            &checker.violations()[..checker.violations().len().min(3)]
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn checker_never_fires_on_two_master_random_traffic(
        ops0 in arb_ops(),
        ops1 in arb_ops(),
        round_robin in any::<bool>(),
        waits in 0u32..3,
    ) {
        prop_assert!(
            run_two_master_traffic(ops0, ops1, round_robin, waits).is_ok()
        );
    }

    #[test]
    fn single_master_memory_round_trips(ops in arb_ops(), waits in 0u32..3) {
        // Re-derive expected memory contents from the script.
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(3, 0x1000))
            .master(Box::new(ScriptedMaster::new(ops.clone())))
            .slave(Box::new(MemorySlave::new(0x1000, waits, 0)))
            .slave(Box::new(MemorySlave::new(0x1000, waits, 0)))
            .slave(Box::new(MemorySlave::new(0x1000, waits, 0)))
            .build()
            .expect("bus builds");
        let n = bus.run_until_done(60_000);
        prop_assert!(n < 60_000, "must terminate");
        // Model memory as a flat 12 KB array and replay the script.
        let mut model = vec![0u8; 0x3000];
        let mut write = |addr: u32, value: u32, size: HSize| {
            for k in 0..size.bytes() {
                model[(addr + k) as usize % 0x3000] =
                    (value >> (8 * k)) as u8;
            }
        };
        for op in &ops {
            match op {
                Op::Write { addr, value, size } => write(*addr, *value, *size),
                Op::Burst { write: true, burst, addr, data, size, .. } => {
                    let addrs = ahbpower_ahb::burst_addresses(
                        *addr, *size, *burst, data.len());
                    for (a, v) in addrs.iter().zip(data) {
                        write(*a, *v, *size);
                    }
                }
                _ => {}
            }
        }
        // Compare slave contents word by word.
        for slave in 0..3usize {
            let mem = bus.slave_as::<MemorySlave>(slave).expect("memory slave");
            for w in 0..(0x1000 / 4) {
                let addr = (slave * 0x1000 + w * 4) as u32;
                let expect = u32::from_le_bytes([
                    model[addr as usize],
                    model[addr as usize + 1],
                    model[addr as usize + 2],
                    model[addr as usize + 3],
                ]);
                let got = mem.peek_word(addr);
                prop_assert_eq!(got, expect, "mismatch at {:#x}", addr);
            }
        }
        // Reads returned the modeled values at the time they executed; spot
        // check: a master never reports protocol errors on mapped traffic.
        let m = bus.master_as::<ScriptedMaster>(0).expect("scripted");
        prop_assert_eq!(m.errors(), 0);
    }

    #[test]
    fn hierarchical_system_with_bridges_stays_clean(
        ops in arb_ops(),
        ratio in 1u32..4,
    ) {
        // Slave 0: RAM. Slave 1: AHB-AHB bridge to a RAM segment.
        // Slave 2: AHB-APB bridge with a register file and a timer.
        let (port, handle) = AhbToAhbBridge::port_master();
        let downstream = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
            .master(port)
            .slave(Box::new(MemorySlave::new(0x1000, 1, 0)))
            .build()
            .expect("downstream builds");
        let ahb_bridge = AhbToAhbBridge::new(downstream, handle)
            .with_window(0x1000)
            .with_clock_ratio(ratio);
        let apb_bridge = ApbBridge::new(
            AddressMap::new(vec![
                AddrRange::new(0x000, 0x100, SlaveId(0)),
                AddrRange::new(0x100, 0x100, SlaveId(1)),
            ])
            .expect("apb map builds"),
            vec![Box::new(RegisterFile::new(16)), Box::new(ApbTimer::new())],
        )
        .with_window(0x1000);
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(3, 0x1000))
            .master(Box::new(ScriptedMaster::new(ops)))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::write(0x1020, 0x77), // across the AHB-AHB bridge
                Op::read(0x1020),
                Op::Idle(2),
                Op::write(0x2004, 0x55), // across the APB bridge
                Op::read(0x2004),
            ])))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .slave(Box::new(ahb_bridge))
            .slave(Box::new(apb_bridge))
            .build()
            .expect("bus builds");
        let mut checker = ProtocolChecker::new();
        let mut cycles = 0u64;
        while cycles < 80_000 && !bus.all_masters_done() {
            checker.check(bus.step());
            cycles += 1;
        }
        prop_assert!(bus.all_masters_done(), "hierarchy wedged after {cycles} cycles");
        prop_assert!(
            checker.violations().is_empty(),
            "violations: {:?}",
            &checker.violations()[..checker.violations().len().min(3)]
        );
        // Master 1's deterministic round-trips held regardless of master 0.
        let m1 = bus.master_as::<ScriptedMaster>(1).expect("scripted");
        let reads: Vec<(u32, u32)> = m1.reads().collect();
        prop_assert_eq!(reads, vec![(0x1020, 0x77), (0x2004, 0x55)]);
    }

    #[test]
    fn split_and_error_slaves_never_wedge_the_bus(
        ops in arb_ops(),
        delay in 1u32..6,
    ) {
        // Slave 0 memory, slave 1 splits, slave 2 errors.
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(3, 0x1000))
            .master(Box::new(ScriptedMaster::new(ops)))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::Idle(3),
                Op::write(0x1010, 0xAA),
                Op::read(0x2010),
            ])))
            .slave(Box::new(MemorySlave::new(0x1000, 1, 0)))
            .slave(Box::new(SplitSlave::new(0x1000, 2, delay)))
            .slave(Box::new(ErrorSlave::new()))
            .build()
            .expect("bus builds");
        let mut checker = ProtocolChecker::new();
        let mut cycles = 0u64;
        while cycles < 60_000 && !bus.all_masters_done() {
            checker.check(bus.step());
            cycles += 1;
        }
        prop_assert!(bus.all_masters_done(), "bus wedged after {cycles} cycles");
        prop_assert!(
            checker.violations().is_empty(),
            "violations: {:?}",
            &checker.violations()[..checker.violations().len().min(3)]
        );
    }
}

/// Promoted from `protocol_conformance.proptest-regressions` (seed
/// `e377d53c…`) so the case survives a proptest-cache wipe: round-robin
/// arbitration with one wait state, where master 1 interleaves an INCR4
/// burst with `busy_between = 1` between long idle runs — the bus hands
/// over repeatedly around the BUSY beats, which once tripped the checker.
#[test]
fn regression_round_robin_busy_burst_handover_e377d53c() {
    let ops0 = vec![
        Op::write(0, 0),
        Op::write(0, 0),
        Op::write(516, 1250605863),
        Op::read(1756),
        Op::Burst {
            write: true,
            burst: HBurst::Incr4,
            addr: 132,
            data: vec![2147995955, 1048845209, 939945332, 712423257],
            size: HSize::Word,
            busy_between: 0,
        },
        Op::write(3028, 3037526180),
        Op::Write {
            addr: 488,
            value: 3674,
            size: HSize::Half,
        },
        Op::Write {
            addr: 2990,
            value: 23192,
            size: HSize::Half,
        },
        Op::read(2792),
        Op::read(2052),
        Op::Read {
            addr: 1199,
            size: HSize::Byte,
        },
        Op::write(580, 838352373),
        Op::Read {
            addr: 2348,
            size: HSize::Byte,
        },
        Op::write(1292, 3150842743),
        Op::Burst {
            write: false,
            burst: HBurst::Wrap8,
            addr: 180,
            data: vec![0; 8],
            size: HSize::Word,
            busy_between: 0,
        },
    ];
    let ops1 = vec![
        Op::Idle(3),
        Op::write(1984, 3891317351),
        Op::Write {
            addr: 2700,
            value: 25965,
            size: HSize::Half,
        },
        Op::Idle(2),
        Op::Idle(4),
        Op::Idle(4),
        Op::Burst {
            write: true,
            burst: HBurst::Incr4,
            addr: 280,
            data: vec![3732614442, 1238746466, 2915965794, 1577455187],
            size: HSize::Word,
            busy_between: 1,
        },
        Op::Idle(2),
        Op::read(1684),
        Op::Write {
            addr: 2318,
            value: 33597,
            size: HSize::Half,
        },
        Op::read(152),
        Op::Idle(2),
        Op::read(1568),
        Op::Read {
            addr: 1420,
            size: HSize::Byte,
        },
        Op::Idle(3),
        Op::read(2924),
        Op::Read {
            addr: 1277,
            size: HSize::Byte,
        },
        Op::Idle(1),
        Op::Idle(1),
        Op::Burst {
            write: false,
            burst: HBurst::Wrap8,
            addr: 24,
            data: vec![0; 8],
            size: HSize::Word,
            busy_between: 0,
        },
        Op::Read {
            addr: 2747,
            size: HSize::Byte,
        },
        Op::Idle(5),
    ];
    if let Err(e) = run_two_master_traffic(ops0, ops1, true, 1) {
        panic!("{e}");
    }
}
