//! Offline stub of the `serde` facade.
//!
//! This container has no access to crates.io, so the workspace vendors a
//! minimal API-compatible subset: the `Serialize`/`Deserialize` traits and
//! their derive macros (which expand to nothing). The repo serializes its
//! own artifacts by hand (see `ahbpower::telemetry::export`), so only the
//! trait/derive *names* need to resolve.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
