//! Offline stub of the `criterion` API subset this workspace uses.
//!
//! The container cannot reach crates.io, so the workspace vendors a small
//! replacement: `bench_function` runs a warm-up pass and then
//! `sample_size` timed samples, printing `min / mean / max` per iteration
//! in a criterion-like format. There are no plots, no statistics beyond
//! the three-point summary, and no saved baselines.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` resolves.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, 10, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time (accepted for API compatibility;
    /// the stub always takes exactly `sample_size` samples).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks one function.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn run_bench(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(samples.max(1)),
        target_samples: samples.max(1),
    };
    f(&mut b);
    let times = &b.samples;
    if times.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_dur(min),
        fmt_dur(mean),
        fmt_dur(max)
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Hands the measured closure to the driver.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Measures `f`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warm-up
        self.samples.clear();
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Declares a benchmark group function (criterion-compatible shape).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut runs = 0u32;
        g.sample_size(3).bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert_eq!(runs, 4, "1 warm-up + 3 samples");
    }
}
