//! Offline stub of the `rand 0.10` API subset this workspace uses.
//!
//! The container cannot reach crates.io, so the workspace vendors a small,
//! deterministic replacement: [`rngs::StdRng`] is a SplitMix64-seeded
//! xoshiro256++ generator exposing `seed_from_u64`, `random`,
//! `random_range` and `random_bool`. Streams are deterministic per seed
//! (which is all the workload generators rely on) but do **not** match the
//! real `rand` crate's output bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types.
pub mod rngs {
    /// The standard deterministic generator (xoshiro256++ core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Types that [`RngExt::random`] can produce.
pub trait StandardSample {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample(rng: &mut StdRng) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to u64 for sampling arithmetic.
    fn to_u64(self) -> u64;
    /// Narrows back from u64.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// Ranges that [`RngExt::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut StdRng) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample from an empty range");
        T::from_u64(lo + rng.next_u64() % (hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut StdRng) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        let v = if span == 0 {
            rng.next_u64() // full u64 domain
        } else {
            lo + rng.next_u64() % span
        };
        T::from_u64(v)
    }
}

/// The `rand 0.10` convenience methods the workspace uses.
pub trait RngExt {
    /// A uniformly random value of `T`.
    fn random<T: StandardSample>(&mut self) -> T;
    /// A uniformly random value inside `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl RngExt for StdRng {
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u32> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.random()).collect();
        let vc: Vec<u32> = (0..8).map(|_| c.random()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: u8 = rng.random_range(3..=5);
            assert!((3..=5).contains(&y));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
