//! Offline stub of the `proptest` API subset this workspace uses.
//!
//! The container cannot reach crates.io, so the workspace vendors a small
//! replacement: strategies generate deterministic pseudo-random values and
//! every `proptest!` test runs `ProptestConfig::cases` cases. There is **no
//! shrinking** — a failing case panics with the values baked into the
//! assertion message instead. The strategy combinators mirrored here are
//! exactly the ones the repo's property tests use: `any`, ranges, `Just`,
//! tuples, `prop_map`, `prop::collection::vec`, `prop_oneof!` and boxing.

use std::rc::Rc;

/// Deterministic test RNG (xoshiro256++, seeded per test + case).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw from `[lo, hi)` (u64 arithmetic).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling domain");
        self.next_u64() % n
    }
}

/// Why a test case did not pass: a genuine failure or an input rejection
/// (`prop_assume!`). Rejected cases are skipped, not failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The generated input was rejected by `prop_assume!`.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// True for rejections (skipped cases).
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// Run-time configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Value-generation interface (no shrinking in this stub).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| inner.new_value(rng)))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A type-erased strategy (the result of [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, spread over a wide magnitude range.
        let mag = rng.next_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Integer types usable as range strategies.
pub trait RangeValue: Copy + PartialOrd {
    /// Widens to u64.
    fn to_u64(self) -> u64;
    /// Narrows back.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_range_value!(u8, u16, u32, u64, usize);

impl<T: RangeValue> Strategy for std::ops::Range<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "empty range strategy");
        T::from_u64(lo + rng.below(hi - lo))
    }
}

impl<T: RangeValue> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "empty range strategy");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        let v = if span == 0 {
            rng.next_u64()
        } else {
            lo + rng.below(span)
        };
        T::from_u64(v)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length lies in `size` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirror of `proptest::prelude::prop` (module-style access).
    pub mod prop {
        pub use crate::collection;
    }
}

/// FNV-1a over a test name, for per-test deterministic seeding.
pub fn seed_for(name: &str, case: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `ProptestConfig::cases` deterministic
/// cases. No shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut prop_rng =
                    $crate::TestRng::seed_from_u64($crate::seed_for(stringify!($name), case));
                $(let $p = $crate::Strategy::new_value(&($s), &mut prop_rng);)*
                // A closure returning Result so the body may use `?` with
                // TestCaseError and prop_assume! can skip via early return.
                #[allow(clippy::redundant_closure_call)]
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    { $body };
                    Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err(e) if e.is_reject() => {}
                    Err(e) => panic!("{e} (case {case})"),
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between strategy arms of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a property test (panics — no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, y in 1u64..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn maps_and_tuples_compose((a, b) in (0u8..4, any::<bool>()), e in arb_even()) {
            prop_assert!(a < 4);
            let _ = b;
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn oneof_and_vec(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2), 5u8..7], 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2 || (5..7).contains(&x)));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
