//! Layer-1 decoder checks: address-map overlaps and coverage gaps.

use ahbpower_ahb::{AddrRange, AddressMap};

use crate::diag::Diagnostic;

/// Checks a raw window list *before* it is turned into an [`AddressMap`]
/// (whose constructor rejects overlaps outright, which is exactly why a
/// static analyzer must look first and report all of them).
///
/// - `map/empty`: no windows at all — every access would fall through to
///   the default slave (error);
/// - `map/overlap`: two windows share addresses — the decoder would
///   select two slaves at once (error);
/// - `map/gap`: an unmapped hole between mapped windows — a scripted
///   address can silently land on the default slave (warning).
pub fn check_ranges(ranges: &[AddrRange], label: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if ranges.is_empty() {
        diags.push(Diagnostic::error(
            "map/empty",
            label.to_string(),
            "address map has no windows; all accesses hit the default slave",
        ));
        return diags;
    }
    let mut sorted: Vec<AddrRange> = ranges.to_vec();
    sorted.sort_by_key(|r| r.start);
    for (i, a) in sorted.iter().enumerate() {
        for b in &sorted[i + 1..] {
            if !a.overlaps(b) {
                break; // sorted by start: no later window can reach back
            }
            diags.push(Diagnostic::error(
                "map/overlap",
                label.to_string(),
                format!("windows {a} and {b} overlap"),
            ));
        }
    }
    for pair in sorted.windows(2) {
        let hole_start = pair[0].end().saturating_add(1);
        if hole_start < pair[1].start && hole_start > pair[0].end() {
            diags.push(Diagnostic::warning(
                "map/gap",
                label.to_string(),
                format!(
                    "unmapped hole [{:#010x}..={:#010x}] between {} and {}",
                    hole_start,
                    pair[1].start - 1,
                    pair[0],
                    pair[1]
                ),
            ));
        }
    }
    diags
}

/// Checks an already-built map (whose invariant excludes overlaps): only
/// gap findings are possible.
pub fn check_map(map: &AddressMap, label: &str) -> Vec<Diagnostic> {
    check_ranges(map.ranges(), label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahbpower_ahb::SlaveId;

    #[test]
    fn evenly_spaced_map_is_clean() {
        let map = AddressMap::evenly_spaced(3, 0x1000);
        assert!(check_map(&map, "m").is_empty());
    }

    #[test]
    fn overlap_is_flagged_per_pair() {
        let ranges = vec![
            AddrRange::new(0x0000, 0x1000, SlaveId(0)),
            AddrRange::new(0x0800, 0x1000, SlaveId(1)),
            AddrRange::new(0x0C00, 0x0100, SlaveId(2)),
        ];
        let diags = check_ranges(&ranges, "m");
        let overlaps = diags.iter().filter(|d| d.rule == "map/overlap").count();
        assert_eq!(overlaps, 3, "{diags:?}"); // 0-1, 0-2, 1-2
    }

    #[test]
    fn interior_gap_is_a_warning() {
        let ranges = vec![
            AddrRange::new(0x0000, 0x1000, SlaveId(0)),
            AddrRange::new(0x2000, 0x1000, SlaveId(1)),
        ];
        let diags = check_ranges(&ranges, "m");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "map/gap");
        assert_eq!(diags[0].severity, crate::Severity::Warning);
        assert!(diags[0].message.contains("0x00001000"));
    }

    #[test]
    fn empty_map_is_an_error() {
        let diags = check_ranges(&[], "m");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "map/empty");
    }
}
