//! # ahbpower-analyzer — static consistency analysis for the AHB power
//! methodology
//!
//! The paper's instruction-based methodology only yields trustworthy
//! energy numbers when the behavioural decomposition is *closed*: every
//! permissible activity-mode transition has exactly one instruction with
//! a well-formed macromodel, the decoder's address map selects at most
//! one slave per address, and the workloads driving the testbench respect
//! the protocol. This crate proves those properties *before* the kernel
//! ever ticks, in two layers:
//!
//! - **Layer 1 — model-level** ([`model`], [`map`], [`script`]):
//!   instruction-set transition-graph closure/determinism/reachability,
//!   energy-macromodel domain validation, decoder address-map
//!   overlap/gap detection, and static protocol lint of master op
//!   scripts (1 KB burst boundaries, BUSY in SINGLE, handover rules);
//! - **Layer 2 — source-level** ([`source_lint`]): a token-based lint of
//!   the workspace's own Rust sources enforcing repo invariants (no
//!   `unwrap()`/`panic!` in library crates outside `#[cfg(test)]`,
//!   wall-clock instrumentation confined to the telemetry modules).
//!
//! Diagnostics are structured ([`Diagnostic`]: rule id, severity,
//! subject/line, message), render human-readable ([`Report::render_text`])
//! or as JSONL ([`Report::render_jsonl`]), and aggregate into the
//! telemetry [`MetricsRegistry`](ahbpower::telemetry::MetricsRegistry)
//! ([`Report::to_metrics`]) for export alongside run metrics.
//!
//! ```
//! use ahbpower_analyzer::analyze_models_and_workloads;
//!
//! let report = analyze_models_and_workloads();
//! assert!(report.is_clean(), "{}", report.render_text());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod map;
pub mod model;
pub mod script;
pub mod source_lint;
pub mod verify;

use std::path::Path;

use ahbpower_workloads::{PaperTestbench, SocScenario};

pub use diag::{Diagnostic, Report, Severity};
pub use model::{check_macromodels, check_model_domain, InstructionSetSpec};

/// Largest master/slave counts [`analyze_models_and_workloads`] sweeps
/// when validating macromodel domains.
pub const MAX_SWEPT_PORTS: usize = 8;

/// Runs every Layer-1 check over the shipped models and workloads: the
/// classifier-derived instruction-set spec, the paper-form macromodels
/// for all supported bus configurations, and the address maps + generated
/// scripts of [`PaperTestbench`] and [`SocScenario`].
pub fn analyze_models_and_workloads() -> Report {
    let mut report = Report::new();
    report.extend(InstructionSetSpec::from_classifier().check());
    report.extend(check_model_domain(MAX_SWEPT_PORTS, MAX_SWEPT_PORTS));

    let tb = PaperTestbench::default();
    let tb_map = tb.address_map();
    report.extend(map::check_map(&tb_map, PaperTestbench::LABEL));
    match tb.scripts() {
        Ok(scripts) => {
            for (i, ops) in scripts.iter().enumerate() {
                let label = format!("{}/master{i}", PaperTestbench::LABEL);
                report.extend(script::check_script(ops, Some(&tb_map), &label));
            }
        }
        Err(e) => report.extend(vec![Diagnostic::error(
            "script/generate",
            PaperTestbench::LABEL,
            e.to_string(),
        )]),
    }

    let soc = SocScenario::default();
    let soc_map = soc.address_map();
    report.extend(map::check_map(&soc_map, "soc_scenario"));
    match soc.scripts() {
        Ok(scripts) => {
            for (i, ops) in scripts.iter().enumerate() {
                let label = format!("soc_scenario/master{i}");
                report.extend(script::check_script(ops, Some(&soc_map), &label));
            }
        }
        Err(e) => report.extend(vec![Diagnostic::error(
            "script/generate",
            "soc_scenario",
            e.to_string(),
        )]),
    }
    report
}

/// Runs the Layer-2 source lint over the workspace at `root`, plus
/// everything in [`analyze_models_and_workloads`]. This is what
/// `repro analyze` executes.
pub fn analyze_all(root: &Path) -> Report {
    let mut report = analyze_models_and_workloads();
    report.extend(source_lint::lint_workspace(root));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_models_and_workloads_are_clean() {
        let report = analyze_models_and_workloads();
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(report.warning_count(), 0, "{}", report.render_text());
    }
}
