//! Layer-1 workload checks: static lint of master op scripts for protocol
//! violations the dynamic [`ProtocolChecker`](ahbpower_ahb::ProtocolChecker)
//! would only catch mid-run.

use ahbpower_ahb::{
    crosses_1kb_boundary, incr_crosses_1kb_boundary, is_aligned, parse_ops, AddressMap, HBurst, Op,
};

use crate::diag::Diagnostic;

/// Statically lints one master's op script.
///
/// - `script/burst-1kb`: a fixed-length or scripted-INCR burst crosses a
///   1 KB address boundary, which the AHB specification forbids (error);
/// - `script/busy-in-single`: BUSY cycles requested inside a SINGLE
///   transfer — BUSY is only defined within bursts (error);
/// - `script/burst-arity`: a fixed-length burst scripted with the wrong
///   number of beats, or an INCR burst with none (error);
/// - `script/misaligned`: a transfer address not aligned to its size
///   (error);
/// - `script/idle-in-lock`: IDLE inside a locked sequence — handover may
///   only happen in IDLE, but a locked master must not release the bus
///   mid-sequence (error);
/// - `script/nested-lock`: a locked sequence inside a locked sequence
///   (warning);
/// - `script/unmapped-address`: an address that decodes to no slave and
///   would silently hit the default slave (warning, needs `map`).
pub fn check_script(ops: &[Op], map: Option<&AddressMap>, label: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        check_op(op, i, 0, map, label, &mut diags);
    }
    diags
}

fn check_op(
    op: &Op,
    index: usize,
    lock_depth: usize,
    map: Option<&AddressMap>,
    label: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let subject = label.to_string();
    match op {
        Op::Idle(_) => {
            if lock_depth > 0 {
                diags.push(Diagnostic::error(
                    "script/idle-in-lock",
                    subject,
                    format!(
                        "op {index}: IDLE inside a locked sequence — a locked master \
                         must not release the bus mid-sequence (handover only in IDLE)"
                    ),
                ));
            }
        }
        Op::Write { addr, size, .. } | Op::Read { addr, size } => {
            if !is_aligned(*addr, *size) {
                diags.push(Diagnostic::error(
                    "script/misaligned",
                    subject.clone(),
                    format!(
                        "op {index}: address {addr:#x} is not aligned to a {}-byte transfer",
                        size.bytes()
                    ),
                ));
            }
            check_mapped(*addr, index, map, &subject, diags);
        }
        Op::Burst {
            burst,
            addr,
            data,
            size,
            busy_between,
            ..
        } => {
            if !is_aligned(*addr, *size) {
                diags.push(Diagnostic::error(
                    "script/misaligned",
                    subject.clone(),
                    format!(
                        "op {index}: burst start {addr:#x} is not aligned to a {}-byte beat",
                        size.bytes()
                    ),
                ));
            }
            if *burst == HBurst::Single {
                if data.len() != 1 {
                    diags.push(Diagnostic::error(
                        "script/burst-arity",
                        subject.clone(),
                        format!(
                            "op {index}: SINGLE transfer carries exactly one beat, \
                             scripted with {}",
                            data.len()
                        ),
                    ));
                }
                if *busy_between > 0 {
                    diags.push(Diagnostic::error(
                        "script/busy-in-single",
                        subject.clone(),
                        format!("op {index}: BUSY cycles are undefined inside a SINGLE transfer"),
                    ));
                }
            }
            match burst.beats() {
                Some(beats) => {
                    if data.len() != beats {
                        diags.push(Diagnostic::error(
                            "script/burst-arity",
                            subject.clone(),
                            format!(
                                "op {index}: {burst:?} burst needs exactly {beats} beats, \
                                 scripted with {}",
                                data.len()
                            ),
                        ));
                    }
                    if crosses_1kb_boundary(*addr, *size, *burst) {
                        diags.push(Diagnostic::error(
                            "script/burst-1kb",
                            subject.clone(),
                            format!(
                                "op {index}: {burst:?} burst at {addr:#x} crosses a 1 KB \
                                 address boundary"
                            ),
                        ));
                    }
                }
                None if *burst == HBurst::Single => {}
                None => {
                    // INCR: the architected length is open, but the script
                    // pins it — so the boundary rule is statically checkable.
                    if data.is_empty() {
                        diags.push(Diagnostic::error(
                            "script/burst-arity",
                            subject.clone(),
                            format!("op {index}: INCR burst scripted with zero beats"),
                        ));
                    } else if incr_crosses_1kb_boundary(*addr, *size, data.len()) {
                        diags.push(Diagnostic::error(
                            "script/burst-1kb",
                            subject.clone(),
                            format!(
                                "op {index}: INCR burst of {} beats at {addr:#x} crosses \
                                 a 1 KB address boundary",
                                data.len()
                            ),
                        ));
                    }
                }
            }
            check_mapped(*addr, index, map, &subject, diags);
        }
        Op::Locked(inner) => {
            if lock_depth > 0 {
                diags.push(Diagnostic::warning(
                    "script/nested-lock",
                    subject,
                    format!("op {index}: locked sequence nested inside a locked sequence"),
                ));
            }
            for nested in inner {
                check_op(nested, index, lock_depth + 1, map, label, diags);
            }
        }
    }
}

fn check_mapped(
    addr: u32,
    index: usize,
    map: Option<&AddressMap>,
    subject: &str,
    diags: &mut Vec<Diagnostic>,
) {
    if let Some(map) = map {
        if map.decode(addr).is_none() {
            diags.push(Diagnostic::warning(
                "script/unmapped-address",
                subject.to_string(),
                format!(
                    "op {index}: address {addr:#x} decodes to no slave (default-slave \
                     territory)"
                ),
            ));
        }
    }
}

/// Parses and lints a script in the
/// [text format](ahbpower_ahb::parse_ops): a parse failure is reported as
/// a `script/parse` error rather than an `Err`, so the analyzer always
/// produces a report.
pub fn check_script_text(text: &str, map: Option<&AddressMap>, label: &str) -> Vec<Diagnostic> {
    match parse_ops(text) {
        Ok(ops) => check_script(&ops, map, label),
        Err(e) => vec![
            Diagnostic::error("script/parse", label.to_string(), e.message.clone()).at_line(e.line),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahbpower_ahb::HSize;

    fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_script_produces_no_findings() {
        let ops = vec![
            Op::write(0x100, 1),
            Op::read(0x100),
            Op::Idle(3),
            Op::Burst {
                write: true,
                burst: HBurst::Incr4,
                addr: 0x200,
                data: vec![1, 2, 3, 4],
                size: HSize::Word,
                busy_between: 1,
            },
            Op::Locked(vec![Op::write(0x300, 5), Op::read(0x300)]),
        ];
        let map = AddressMap::evenly_spaced(3, 0x1000);
        assert!(check_script(&ops, Some(&map), "m").is_empty());
    }

    #[test]
    fn fixed_burst_crossing_1kb_is_flagged() {
        let ops = vec![Op::Burst {
            write: false,
            burst: HBurst::Incr4,
            addr: 0x3F8,
            data: vec![0; 4],
            size: HSize::Word,
            busy_between: 0,
        }];
        assert_eq!(rules(&check_script(&ops, None, "m")), ["script/burst-1kb"]);
    }

    #[test]
    fn incr_burst_crossing_1kb_is_flagged() {
        let ops = vec![Op::Burst {
            write: true,
            burst: HBurst::Incr,
            addr: 0x3F8,
            data: vec![0; 3],
            size: HSize::Word,
            busy_between: 0,
        }];
        assert_eq!(rules(&check_script(&ops, None, "m")), ["script/burst-1kb"]);
    }

    #[test]
    fn busy_in_single_is_flagged() {
        let ops = vec![Op::Burst {
            write: true,
            burst: HBurst::Single,
            addr: 0x100,
            data: vec![7],
            size: HSize::Word,
            busy_between: 2,
        }];
        assert_eq!(
            rules(&check_script(&ops, None, "m")),
            ["script/busy-in-single"]
        );
    }

    #[test]
    fn wrong_beat_count_is_flagged() {
        let ops = vec![Op::Burst {
            write: true,
            burst: HBurst::Incr4,
            addr: 0x100,
            data: vec![1, 2, 3],
            size: HSize::Word,
            busy_between: 0,
        }];
        assert_eq!(
            rules(&check_script(&ops, None, "m")),
            ["script/burst-arity"]
        );
    }

    #[test]
    fn empty_incr_burst_is_flagged() {
        let ops = vec![Op::Burst {
            write: true,
            burst: HBurst::Incr,
            addr: 0x100,
            data: vec![],
            size: HSize::Word,
            busy_between: 0,
        }];
        assert_eq!(
            rules(&check_script(&ops, None, "m")),
            ["script/burst-arity"]
        );
    }

    #[test]
    fn misaligned_access_is_flagged() {
        let ops = vec![Op::Write {
            addr: 0x102,
            value: 1,
            size: HSize::Word,
        }];
        assert_eq!(rules(&check_script(&ops, None, "m")), ["script/misaligned"]);
    }

    #[test]
    fn idle_inside_lock_is_flagged() {
        let ops = vec![Op::Locked(vec![
            Op::write(0x100, 1),
            Op::Idle(2),
            Op::read(0x100),
        ])];
        assert_eq!(
            rules(&check_script(&ops, None, "m")),
            ["script/idle-in-lock"]
        );
    }

    #[test]
    fn nested_lock_is_a_warning() {
        let ops = vec![Op::Locked(vec![Op::Locked(vec![Op::write(0x100, 1)])])];
        let diags = check_script(&ops, None, "m");
        assert_eq!(rules(&diags), ["script/nested-lock"]);
        assert_eq!(diags[0].severity, crate::Severity::Warning);
    }

    #[test]
    fn unmapped_address_needs_a_map() {
        let ops = vec![Op::read(0x9000_0000)];
        assert!(check_script(&ops, None, "m").is_empty());
        let map = AddressMap::evenly_spaced(3, 0x1000);
        assert_eq!(
            rules(&check_script(&ops, Some(&map), "m")),
            ["script/unmapped-address"]
        );
    }

    #[test]
    fn text_scripts_parse_and_lint() {
        let good = "write 0x100 1\nread 0x100\n";
        assert!(check_script_text(good, None, "f").is_empty());

        let crossing = "burst w incr4 0x3f8 1 2 3 4\n";
        assert_eq!(
            rules(&check_script_text(crossing, None, "f")),
            ["script/burst-1kb"]
        );

        let bad = "frobnicate 1 2 3\n";
        let diags = check_script_text(bad, None, "f");
        assert_eq!(rules(&diags), ["script/parse"]);
        assert_eq!(diags[0].line, Some(1));
    }
}
