//! Deep concurrency verification (`repro analyze --deep`).
//!
//! Three passes over the workspace's concurrency surface, each proving a
//! different layer:
//!
//! 1. [`ring`] — a deterministic-interleaving model checker (built on
//!    [`sched`]) exhaustively explores publisher/consumer interleavings
//!    of the event ring's seqlock protocol under a bounded-preemption
//!    cap, proving no torn reads, no lost events beyond the declared
//!    `dropped` count, and monotone cursors;
//! 2. the atomic-ordering lint (in [`crate::source_lint`], rules
//!    `atomics/*`) — token-level classification of every
//!    `Ordering::` site, with invariant-comment obligations and
//!    fence-pairing checks; the deep pass contributes the workspace
//!    ordering census and a seeded self-check;
//! 3. [`arbiter`] — an exhaustive walk of the real AHB arbiter's
//!    decision space (2..=8 masters), starvation-bound probes, scripted
//!    bus runs under the protocol checker, and burst-boundary
//!    cross-checks.
//!
//! A clean deep run additionally *verifies the verifiers*: each seeded
//! mutant (torn-read ring, missing writing stamp, unmarked relaxed
//! ordering, double grant) is run against its pass and must be caught —
//! a tool that stops catching its own seeded faults fails the run with
//! a `verify/selfcheck` error. The `--mutate` CLI directions invert
//! this: they run *only* the seeded fault and expect findings, giving
//! CI an end-to-end proof that a real regression would flip the exit
//! code.

pub mod arbiter;
pub mod ring;
pub mod sched;

use std::path::Path;
use std::time::{Duration, Instant};

use ahbpower::telemetry::RingMutation;

use crate::diag::{Diagnostic, Report};
use crate::source_lint::{self, OrderingCensus};

pub use arbiter::{verify_arbiter, ArbiterMutation, ArbiterVerifyStats};
pub use ring::{verify_ring, RingVerifyStats};

/// Which seeded fault a deep run injects (`--mutate`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeepMutation {
    /// No fault: verify the real code and self-check the tooling.
    #[default]
    None,
    /// Ring writer publishes the final stamp before the payload lands.
    RingTorn,
    /// Source with unmarked/misordered atomics fed to the lint.
    OrderingRelaxed,
    /// Grant decoder asserts two HGRANT lines at once.
    ArbiterDoubleGrant,
}

impl DeepMutation {
    /// Parses the CLI spelling (`ring-torn`, `ordering-relaxed`,
    /// `arbiter-double-grant`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ring-torn" => Some(DeepMutation::RingTorn),
            "ordering-relaxed" => Some(DeepMutation::OrderingRelaxed),
            "arbiter-double-grant" => Some(DeepMutation::ArbiterDoubleGrant),
            _ => None,
        }
    }
}

/// Tuning knobs for the deep pass.
#[derive(Debug, Clone, Copy)]
pub struct DeepConfig {
    /// Preemption bound for the clean ring scenarios. The seeded
    /// no-writing-stamp self-check always runs at bound 3 — that race
    /// inherently needs three context switches to observe.
    pub preemption_bound: usize,
    /// Per-scenario cap on explored interleavings (safety net; every
    /// shipped scenario explores to completion far below it).
    pub max_executions: u64,
    /// Largest master count for the arbiter decide-space walk.
    pub max_masters: usize,
    /// Seeded fault to inject, if any.
    pub mutation: DeepMutation,
}

impl Default for DeepConfig {
    fn default() -> Self {
        DeepConfig {
            preemption_bound: 2,
            max_executions: 500_000,
            max_masters: 8,
            mutation: DeepMutation::None,
        }
    }
}

/// Coverage counters from one deep run, exported as JSONL gauges.
#[derive(Debug, Clone, Default)]
pub struct DeepStats {
    /// Ring model-checker coverage.
    pub ring: RingVerifyStats,
    /// Arbiter walk coverage.
    pub arbiter: ArbiterVerifyStats,
    /// Workspace atomic-ordering census.
    pub census: OrderingCensus,
    /// Wall-clock spent in the deep pass.
    pub wall: Duration,
}

/// Seeded source for the ordering-lint directions: an unmarked relaxed
/// load, an unmarked SeqCst store (in an audited file), and an unpaired
/// release fence — one violation per `atomics/*` rule.
const SEEDED_ORDERING_SRC: &str = "\
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
fn publish(stop: &AtomicBool, stamp: &AtomicU64) -> u64 {
    stop.store(true, Ordering::SeqCst);
    fence(Ordering::Release);
    stamp.load(Ordering::Relaxed)
}
";

/// Virtual path the seeded source is linted under: must be in the
/// concurrency-audited set so all three rules are in force.
const SEEDED_ORDERING_PATH: &str = "crates/core/src/telemetry/events.rs";

/// The three `atomics/*` rules the seeded source must trip.
const SEEDED_ORDERING_RULES: [&str; 3] =
    ["atomics/relaxed", "atomics/audited", "atomics/fence-pair"];

/// Runs the deep verification pass. With [`DeepMutation::None`] this
/// verifies the real code (and self-checks the tooling on every seeded
/// fault); with a specific mutation it runs only that seeded fault and
/// reports its findings — the caller treats findings as the *expected*
/// outcome and a clean report as the regression.
pub fn verify_deep(root: &Path, cfg: DeepConfig) -> (Report, DeepStats) {
    let started = Instant::now();
    let mut report = Report::new();
    let mut stats = DeepStats::default();

    match cfg.mutation {
        DeepMutation::None => {
            let (diags, ring_stats) =
                verify_ring(cfg.preemption_bound, cfg.max_executions, RingMutation::None);
            report.extend(diags);
            stats.ring = ring_stats;

            let (diags, arb_stats) = verify_arbiter(cfg.max_masters, ArbiterMutation::None);
            report.extend(diags);
            stats.arbiter = arb_stats;

            stats.census = source_lint::classify_orderings(root);
            report.extend(self_check(cfg));
        }
        DeepMutation::RingTorn => {
            let (diags, ring_stats) = verify_ring(
                cfg.preemption_bound.max(1),
                cfg.max_executions,
                RingMutation::PublishBeforePayload,
            );
            report.extend(diags);
            stats.ring = ring_stats;
        }
        DeepMutation::OrderingRelaxed => {
            report.extend(
                source_lint::lint_source(SEEDED_ORDERING_SRC, SEEDED_ORDERING_PATH)
                    .into_iter()
                    .map(|d| {
                        // Re-subject so nobody mistakes the seeded text
                        // for the (clean) real file.
                        let line = d.line;
                        let d2 =
                            Diagnostic::error(d.rule, format!("seeded:{}", d.subject), d.message);
                        match line {
                            Some(l) => d2.at_line(l),
                            None => d2,
                        }
                    })
                    .collect(),
            );
        }
        DeepMutation::ArbiterDoubleGrant => {
            let (diags, arb_stats) =
                verify_arbiter(cfg.max_masters.min(4), ArbiterMutation::DoubleGrant);
            report.extend(diags);
            stats.arbiter = arb_stats;
        }
    }

    stats.wall = started.elapsed();
    (report, stats)
}

/// Verifies the verifiers: every seeded fault must still be caught by
/// its pass. Returns one `verify/selfcheck` error per silent checker.
fn self_check(cfg: DeepConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Torn-read mutant: a single preemption exposes it.
    let (found, _) = verify_ring(1, cfg.max_executions, RingMutation::PublishBeforePayload);
    if found.is_empty() {
        diags.push(Diagnostic::error(
            "verify/selfcheck",
            "ring",
            "model checker missed the seeded publish-before-payload mutant",
        ));
    }
    // Missing writing stamp: the reader must get preempted mid-copy and
    // the writer must lap it — three context switches, so bound 3.
    let (found, _) = verify_ring(3, cfg.max_executions, RingMutation::NoWritingStamp);
    if found.is_empty() {
        diags.push(Diagnostic::error(
            "verify/selfcheck",
            "ring",
            "model checker missed the seeded no-writing-stamp mutant at bound 3",
        ));
    }

    let seeded = source_lint::lint_source(SEEDED_ORDERING_SRC, SEEDED_ORDERING_PATH);
    for rule in SEEDED_ORDERING_RULES {
        if !seeded.iter().any(|d| d.rule == rule) {
            diags.push(Diagnostic::error(
                "verify/selfcheck",
                "ordering-lint",
                format!("lint missed the seeded `{rule}` violation"),
            ));
        }
    }

    let (found, _) = verify_arbiter(2, ArbiterMutation::DoubleGrant);
    if found.is_empty() {
        diags.push(Diagnostic::error(
            "verify/selfcheck",
            "arbiter",
            "state-space walk missed the seeded double-grant mutant",
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> std::path::PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    #[test]
    fn clean_deep_run_is_clean() {
        let cfg = DeepConfig {
            // Bound 1 and 5 masters keep the dev-profile test quick; the
            // shipped CLI uses the stronger defaults.
            preemption_bound: 1,
            max_masters: 5,
            ..DeepConfig::default()
        };
        let (report, stats) = verify_deep(&repo_root(), cfg);
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(stats.ring.scenarios, 5);
        assert!(stats.arbiter.decide_states > 0);
        assert!(stats.census.total() > 0);
        assert!(stats.wall > Duration::ZERO);
    }

    #[test]
    fn every_mutation_direction_produces_findings() {
        for (mutation, expect_rule) in [
            (DeepMutation::RingTorn, "verify/ring"),
            (DeepMutation::OrderingRelaxed, "atomics/relaxed"),
            (DeepMutation::ArbiterDoubleGrant, "verify/arbiter"),
        ] {
            let cfg = DeepConfig {
                preemption_bound: 1,
                mutation,
                ..DeepConfig::default()
            };
            let (report, _) = verify_deep(&repo_root(), cfg);
            assert!(
                report.diagnostics().iter().any(|d| d.rule == expect_rule),
                "{mutation:?} produced no `{expect_rule}`: {}",
                report.render_text()
            );
            assert!(report.error_count() > 0, "{mutation:?} must exit nonzero");
        }
    }

    #[test]
    fn mutation_spellings_parse() {
        assert_eq!(
            DeepMutation::parse("ring-torn"),
            Some(DeepMutation::RingTorn)
        );
        assert_eq!(
            DeepMutation::parse("ordering-relaxed"),
            Some(DeepMutation::OrderingRelaxed)
        );
        assert_eq!(
            DeepMutation::parse("arbiter-double-grant"),
            Some(DeepMutation::ArbiterDoubleGrant)
        );
        assert_eq!(DeepMutation::parse("nonsense"), None);
    }
}
