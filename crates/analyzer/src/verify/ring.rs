//! Model-checked verification of the event ring's seqlock protocol:
//! small publisher/consumer scenarios run over the scheduler's model
//! atomics ([`super::sched`]) with every bounded-preemption
//! interleaving explored, proving three invariants on the *real*
//! [`GenericEventBus`] code:
//!
//! 1. **No torn reads** — every event a reader returns is byte-for-byte
//!    one that some publisher actually published at that sequence.
//! 2. **No lost events beyond the declared count** — for every batch,
//!    `next - since == events.len() + dropped`, and a final drain
//!    accounts for every claimed sequence number exactly once.
//! 3. **Monotone cursors** — `next` never moves backwards, batch
//!    windows are disjoint, and in-batch sequence numbers are strictly
//!    increasing inside `[since, next)`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ahbpower::telemetry::{Event, EventBatch, EventKind, GenericEventBus, RingMutation};

use super::sched::{explore, Exploration, ModelAtomics, RunResult, Sched};
use crate::diag::Diagnostic;

/// A model bus: the production ring code over scheduled model cells.
type ModelBus = GenericEventBus<ModelAtomics>;

/// One publisher/consumer scenario for the interleaving explorer.
#[derive(Debug, Clone)]
pub struct RingScenario {
    /// Scenario name (used in diagnostics and stats).
    pub name: &'static str,
    /// Ring capacity (tiny, to make wraparound reachable).
    pub capacity: usize,
    /// Concurrent publisher threads.
    pub publishers: usize,
    /// Events published per publisher.
    pub events_each: usize,
    /// Publish via one `publish_batch` call instead of singles.
    pub use_batch: bool,
    /// Concurrent consumer polls (the final drain happens after join).
    pub polls: usize,
    /// `max` passed to each concurrent poll.
    pub poll_max: usize,
    /// Branch to every enabled thread at every decision (sound up to
    /// the preemption bound) instead of conflict-filtering.
    pub exhaustive: bool,
    /// Seeded write-protocol fault (None for the clean direction).
    pub mutation: RingMutation,
}

/// The clean scenarios `--deep` must prove hold under every bounded
/// interleaving.
pub fn clean_scenarios() -> Vec<RingScenario> {
    vec![
        RingScenario {
            name: "pub1_cons1_cap4",
            capacity: 4,
            publishers: 1,
            events_each: 3,
            use_batch: false,
            polls: 2,
            poll_max: 8,
            exhaustive: true,
            mutation: RingMutation::None,
        },
        RingScenario {
            name: "wraparound_cap2",
            capacity: 2,
            publishers: 1,
            events_each: 4,
            use_batch: false,
            polls: 2,
            poll_max: 8,
            exhaustive: true,
            mutation: RingMutation::None,
        },
        RingScenario {
            name: "two_publishers_cap4",
            capacity: 4,
            publishers: 2,
            events_each: 2,
            use_batch: false,
            polls: 2,
            poll_max: 8,
            exhaustive: true,
            mutation: RingMutation::None,
        },
        RingScenario {
            name: "batch_publish_cap4",
            capacity: 4,
            publishers: 1,
            events_each: 3,
            use_batch: true,
            polls: 2,
            poll_max: 8,
            exhaustive: true,
            mutation: RingMutation::None,
        },
        // Three producers racing a consumer: exhaustive branching is
        // intractable here, so this one leans on the DPOR-style
        // conflict filter (branch only to threads whose pending op
        // conflicts with the one about to run).
        RingScenario {
            name: "three_publishers_filtered",
            capacity: 4,
            publishers: 3,
            events_each: 2,
            use_batch: false,
            polls: 2,
            poll_max: 16,
            exhaustive: false,
            mutation: RingMutation::None,
        },
    ]
}

/// The seeded torn-read direction: the `PublishBeforePayload` mutant
/// must be caught (stamp published before the payload lands, so a
/// preempted writer exposes stale payload words as consistent).
pub fn torn_scenario() -> RingScenario {
    RingScenario {
        name: "mutant_publish_before_payload",
        mutation: RingMutation::PublishBeforePayload,
        ..clean_scenarios().remove(0)
    }
}

/// The seeded missing-writing-stamp direction: without the pre-payload
/// stamp, a reader lapped mid-overwrite validates an old stamp around
/// new payload words. The racing shape (reader validates, writer laps,
/// reader copies and re-validates) inherently needs three context
/// switches between live threads, so this direction is explored at
/// preemption bound 3 over a deliberately small scenario.
pub fn no_stamp_scenario() -> RingScenario {
    RingScenario {
        name: "mutant_no_writing_stamp",
        capacity: 2,
        publishers: 1,
        events_each: 3,
        use_batch: false,
        polls: 1,
        poll_max: 4,
        exhaustive: true,
        mutation: RingMutation::NoWritingStamp,
    }
}

/// The event publisher `p` publishes as its `i`-th event: every field
/// derives from a nonzero unique id, so a torn read (zeroed or mixed
/// words) can never collide with a legitimate payload.
fn expected_event(p: usize, i: usize) -> Event {
    let uid = (p * 1000 + i + 1) as u64;
    Event {
        seq: 0,
        kind: EventKind::TxnComplete,
        slice: p as u64,
        txn: uid,
        window: uid,
        cycle: uid,
        tag: p as u32,
        a: uid as f64,
        b: 1.0,
    }
}

/// Runs one execution of `scenario` under a forced schedule prefix,
/// checking the ring invariants after the workers join. This is the
/// replay primitive: feeding a counterexample's schedule back in
/// reproduces its violation deterministically.
pub fn run_ring_once(scenario: &RingScenario, forced: &[usize], bound: usize) -> RunResult {
    let n_threads = scenario.publishers + 1;
    let sched = Sched::new(n_threads, forced, bound, scenario.exhaustive);
    sched.enter_main();
    let bus: Arc<ModelBus> = Arc::new(ModelBus::for_verification(
        scenario.capacity,
        scenario.mutation,
    ));
    bus.set_enabled(true);
    let log: Arc<Mutex<Vec<Event>>> = Arc::new(Mutex::new(Vec::new()));
    let batches: Arc<Mutex<Vec<(u64, EventBatch)>>> = Arc::new(Mutex::new(Vec::new()));

    let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for p in 0..scenario.publishers {
        let bus = Arc::clone(&bus);
        let log = Arc::clone(&log);
        let events_each = scenario.events_each;
        let use_batch = scenario.use_batch;
        bodies.push(Box::new(move || {
            if use_batch {
                let evs: Vec<Event> = (0..events_each).map(|i| expected_event(p, i)).collect();
                if let Some(start) = bus.publish_batch(&evs) {
                    let mut g = log.lock().expect("publish log");
                    for (i, e) in evs.iter().enumerate() {
                        g.push(Event {
                            seq: start + i as u64,
                            ..*e
                        });
                    }
                }
            } else {
                for i in 0..events_each {
                    let e = expected_event(p, i);
                    if let Some(seq) = bus.publish(e) {
                        log.lock().expect("publish log").push(Event { seq, ..e });
                    }
                }
            }
        }));
    }
    {
        let bus = Arc::clone(&bus);
        let batches = Arc::clone(&batches);
        let polls = scenario.polls;
        let poll_max = scenario.poll_max;
        bodies.push(Box::new(move || {
            let mut cursor = 0u64;
            for _ in 0..polls {
                let b = bus.read_since(cursor, poll_max);
                let next = b.next;
                batches.lock().expect("batch log").push((cursor, b));
                cursor = next;
            }
        }));
    }

    let spawn_err = sched.run_workers(bodies).err();

    // Final drain on the main thread (direct, unscheduled ops): with
    // all writers joined every claimed slot carries its final stamp, so
    // the cursor must reach the head in bounded steps.
    let mut drained = batches.lock().expect("batch log").clone();
    let mut cursor = drained.last().map_or(0, |(_, b)| b.next);
    let mut drain_rounds = 0;
    loop {
        let b = bus.read_since(cursor, 64);
        let next = b.next;
        let done = b.events.is_empty() && b.dropped == 0 && next >= b.published;
        drained.push((cursor, b));
        cursor = next;
        drain_rounds += 1;
        if done || drain_rounds > 1000 {
            break;
        }
    }
    let head = bus.published();
    Sched::exit_main();
    let (trace, steps, aborted) = sched.take_trace();

    let mut violation = if drain_rounds > 1000 {
        Some("final drain did not converge to the head".to_string())
    } else {
        check_invariants(&log.lock().expect("publish log"), &drained, head)
    };
    if let Some(e) = spawn_err {
        violation = Some(e);
    }
    RunResult {
        trace,
        steps,
        violation,
        aborted,
    }
}

/// Checks the three ring invariants over everything the consumer (and
/// the final drain) observed. Returns the first violation.
fn check_invariants(
    published: &[Event],
    batches: &[(u64, EventBatch)],
    head: u64,
) -> Option<String> {
    let mut by_seq: HashMap<u64, Event> = HashMap::new();
    for e in published {
        if by_seq.insert(e.seq, *e).is_some() {
            return Some(format!("sequence {} claimed twice by publishers", e.seq));
        }
    }
    let mut expected_since = 0u64;
    let mut last_published = 0u64;
    for (since, b) in batches {
        let since = *since;
        if since != expected_since {
            return Some(format!(
                "cursor chain broken: batch started at {since}, expected {expected_since}"
            ));
        }
        if b.next < since {
            return Some(format!("cursor moved backwards: {} < {since}", b.next));
        }
        if b.published < last_published {
            return Some(format!(
                "published count regressed: {} < {last_published}",
                b.published
            ));
        }
        if b.next > b.published {
            return Some(format!(
                "cursor {} beyond published head {}",
                b.next, b.published
            ));
        }
        let declared = (b.events.len() as u64) + b.dropped;
        if b.next - since != declared {
            return Some(format!(
                "lost events: window [{since}, {}) covers {} sequences but batch \
                 declares {} ({} events + {} dropped)",
                b.next,
                b.next - since,
                declared,
                b.events.len(),
                b.dropped
            ));
        }
        let mut prev: Option<u64> = None;
        for e in &b.events {
            if e.seq < since || e.seq >= b.next {
                return Some(format!(
                    "event seq {} outside its batch window [{since}, {})",
                    e.seq, b.next
                ));
            }
            if prev.is_some_and(|p| e.seq <= p) {
                return Some(format!("non-monotone in-batch sequence at {}", e.seq));
            }
            prev = Some(e.seq);
            match by_seq.get(&e.seq) {
                Some(exp) if e == exp => {}
                Some(exp) => {
                    return Some(format!(
                        "torn read at seq {}: got {e:?}, published {exp:?}",
                        e.seq
                    ));
                }
                None => {
                    return Some(format!("reader returned unclaimed sequence {}", e.seq));
                }
            }
        }
        expected_since = b.next;
        last_published = b.published;
    }
    if expected_since != head {
        return Some(format!(
            "final cursor {expected_since} never reached the head {head}"
        ));
    }
    None
}

/// Explores every bounded-preemption schedule of `scenario`.
pub fn explore_ring(scenario: &RingScenario, bound: usize, max_executions: u64) -> Exploration {
    explore(max_executions, |forced| {
        run_ring_once(scenario, forced, bound)
    })
}

/// Aggregate statistics from the ring pass (for E18 and the JSONL
/// findings).
#[derive(Debug, Clone, Default)]
pub struct RingVerifyStats {
    /// Scenarios explored.
    pub scenarios: usize,
    /// Total executions (complete schedules) across all scenarios.
    pub executions: u64,
    /// Longest execution, in scheduled atomic steps.
    pub max_steps: usize,
}

/// Runs the ring model-checking pass: the clean scenarios when
/// `mutation` is `None`, or the corresponding seeded-mutant scenario
/// otherwise (which must produce a counterexample).
pub fn verify_ring(
    bound: usize,
    max_executions: u64,
    mutation: RingMutation,
) -> (Vec<Diagnostic>, RingVerifyStats) {
    let scenarios = match mutation {
        RingMutation::None => clean_scenarios(),
        RingMutation::PublishBeforePayload => vec![torn_scenario()],
        RingMutation::NoWritingStamp => vec![no_stamp_scenario()],
    };
    let mut diags = Vec::new();
    let mut stats = RingVerifyStats {
        scenarios: scenarios.len(),
        ..RingVerifyStats::default()
    };
    for s in &scenarios {
        let ex = explore_ring(s, bound, max_executions);
        stats.executions += ex.executions;
        stats.max_steps = stats.max_steps.max(ex.max_steps);
        if let Some(cx) = ex.counterexample {
            let schedule: Vec<String> = cx.schedule.iter().map(|t| t.to_string()).collect();
            diags.push(Diagnostic::error(
                "verify/ring",
                s.name,
                format!(
                    "{} after {} executions; schedule [{}]",
                    cx.message,
                    ex.executions,
                    schedule.join(",")
                ),
            ));
        } else if ex.capped {
            diags.push(Diagnostic::warning(
                "verify/ring",
                s.name,
                format!(
                    "schedule space not exhausted: stopped at the {}-execution cap",
                    ex.executions
                ),
            ));
        }
    }
    (diags, stats)
}
