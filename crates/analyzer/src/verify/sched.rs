//! Deterministic-interleaving scheduler ("mini-loom"): runs real OS
//! threads one at a time, treating every shim atomic operation as a
//! yield point, and enumerates schedules by depth-first search over
//! forced decision prefixes with a bounded-preemption cap.
//!
//! # Model
//!
//! The model is sequentially consistent: each atomic operation executes
//! atomically under one global lock, in the order the scheduler grants
//! turns. Memory-ordering arguments are ignored (fences are no-ops), so
//! this checker proves *protocol* properties — what can happen under
//! any interleaving of whole operations — while the companion
//! atomic-ordering lint covers the weak-memory annotations the model
//! abstracts away.
//!
//! # Exploration
//!
//! Every decision point records the set of enabled alternatives. A
//! switch away from a still-enabled thread costs one preemption;
//! schedules are explored exhaustively up to the preemption bound
//! (CHESS-style iterative context bounding). In `exhaustive` mode all
//! enabled threads are branch candidates at every decision; otherwise
//! only threads whose pending operation *conflicts* with the chosen one
//! (same cell, at least one write) are branched to — a DPOR-style
//! under-approximation that keeps multi-producer scenarios tractable.

use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use ahbpower::telemetry::{AtomicBoolCell, AtomicU64Cell, Atomics};

/// How long one blocked worker waits per condvar round before counting
/// a stall; enough consecutive stalls abort the execution as a
/// scheduler deadlock (a checker bug, surfaced as a diagnostic rather
/// than a hang).
const STALL_WAIT: Duration = Duration::from_millis(200);
const MAX_STALLS: u32 = 25;

/// Hard per-execution step cap: no modeled scenario is within orders of
/// magnitude of this; hitting it means a runaway loop.
const MAX_STEPS: usize = 200_000;

/// The kind of one pending shim operation (for conflict detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Load,
    Store,
    Rmw,
}

#[derive(Debug, Clone, Copy)]
struct PendingOp {
    cell: usize,
    kind: OpKind,
}

impl PendingOp {
    fn conflicts(&self, other: &PendingOp) -> bool {
        self.cell == other.cell && (self.kind != OpKind::Load || other.kind != OpKind::Load)
    }
}

/// One scheduling decision: which thread ran, and which enabled
/// alternatives were admissible under the preemption budget.
#[derive(Debug, Clone)]
pub struct Choice {
    /// The thread granted this step.
    pub chosen: usize,
    /// Other threads that could have been granted instead (within the
    /// preemption budget, after conflict filtering).
    pub alts: Vec<usize>,
}

struct Inner {
    /// Model memory: one word per shim cell, allocated at cell creation.
    cells: Vec<u64>,
    /// Per-thread pending operation, registered at each yield point.
    pending: Vec<Option<PendingOp>>,
    arrived: Vec<bool>,
    finished: Vec<bool>,
    /// The thread currently granted one operation, if any.
    turn: Option<usize>,
    last_ran: Option<usize>,
    preemptions: usize,
    steps: usize,
    decisions: usize,
    trace: Vec<Choice>,
    aborted: Option<String>,
}

/// The deterministic scheduler for one execution. Worker threads route
/// every shim atomic operation through `Sched::op`; the main thread's
/// operations (setup and post-join draining) apply directly.
pub struct Sched {
    inner: Mutex<Inner>,
    cv: Condvar,
    n_threads: usize,
    forced: Vec<usize>,
    preemption_bound: usize,
    exhaustive: bool,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Sched>, Option<usize>)>> = const { RefCell::new(None) };
}

fn current_ctx() -> Option<(Arc<Sched>, Option<usize>)> {
    CTX.with(|c| c.borrow().clone())
}

impl Sched {
    /// Creates a scheduler for `n_threads` workers replaying `forced`
    /// decisions before falling back to run-to-completion with the
    /// given preemption budget.
    pub fn new(
        n_threads: usize,
        forced: &[usize],
        preemption_bound: usize,
        exhaustive: bool,
    ) -> Arc<Sched> {
        Arc::new(Sched {
            inner: Mutex::new(Inner {
                cells: Vec::new(),
                pending: vec![None; n_threads],
                arrived: vec![false; n_threads],
                finished: vec![false; n_threads],
                turn: None,
                last_ran: None,
                preemptions: 0,
                steps: 0,
                decisions: 0,
                trace: Vec::new(),
                aborted: None,
            }),
            cv: Condvar::new(),
            n_threads,
            forced: forced.to_vec(),
            preemption_bound,
            exhaustive,
        })
    }

    /// Marks the calling (main) thread as the scheduler's unscheduled
    /// context: shim cells created here register with this scheduler and
    /// operations apply directly, outside the schedule.
    pub fn enter_main(self: &Arc<Self>) {
        CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(self), None)));
    }

    /// Clears the calling thread's scheduler context.
    pub fn exit_main() {
        CTX.with(|c| *c.borrow_mut() = None);
    }

    /// Spawns the worker bodies, one scheduled thread each, and joins
    /// them. Returns `Err` with a description if a worker panicked.
    pub fn run_workers(
        self: &Arc<Self>,
        bodies: Vec<Box<dyn FnOnce() + Send>>,
    ) -> Result<(), String> {
        let mut handles = Vec::new();
        for (tid, body) in bodies.into_iter().enumerate() {
            let sched = Arc::clone(self);
            let handle = thread::Builder::new()
                .name(format!("verify-worker-{tid}"))
                .stack_size(128 * 1024)
                .spawn(move || {
                    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), Some(tid))));
                    body();
                    CTX.with(|c| *c.borrow_mut() = None);
                    sched.thread_done(tid);
                })
                .map_err(|e| format!("spawn failed: {e}"))?;
            handles.push(handle);
        }
        let mut err = None;
        for (tid, h) in handles.into_iter().enumerate() {
            if h.join().is_err() {
                // Unblock any workers still waiting on the panicked one.
                self.abort(format!("worker {tid} panicked"));
                err = Some(format!("worker {tid} panicked"));
            }
        }
        match err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// The recorded decision trace (call after the workers joined).
    pub fn take_trace(&self) -> (Vec<Choice>, usize, Option<String>) {
        let g = self.inner.lock().expect("scheduler lock");
        (g.trace.clone(), g.steps, g.aborted.clone())
    }

    fn abort(&self, why: String) {
        let mut g = self.inner.lock().expect("scheduler lock");
        if g.aborted.is_none() {
            g.aborted = Some(why);
        }
        self.cv.notify_all();
    }

    fn thread_done(&self, tid: usize) {
        let mut g = self.inner.lock().expect("scheduler lock");
        g.finished[tid] = true;
        g.arrived[tid] = true;
        g.pending[tid] = None;
        self.maybe_decide(&mut g);
        self.cv.notify_all();
    }

    fn alloc_cell(&self, v: u64) -> usize {
        let mut g = self.inner.lock().expect("scheduler lock");
        g.cells.push(v);
        g.cells.len() - 1
    }

    fn apply(g: &mut Inner, cell: usize, kind: OpKind, arg: u64) -> u64 {
        match kind {
            OpKind::Load => g.cells[cell],
            OpKind::Store => {
                g.cells[cell] = arg;
                arg
            }
            OpKind::Rmw => {
                let old = g.cells[cell];
                g.cells[cell] = old.wrapping_add(arg);
                old
            }
        }
    }

    /// If every live worker has arrived and registered a pending
    /// operation (and no turn is outstanding), pick the next thread.
    fn maybe_decide(&self, g: &mut Inner) {
        if g.aborted.is_some() || g.turn.is_some() {
            return;
        }
        if !g.arrived.iter().all(|&a| a) {
            return;
        }
        let enabled: Vec<usize> = (0..self.n_threads)
            .filter(|&t| g.pending[t].is_some())
            .collect();
        if enabled.is_empty() {
            return;
        }
        if (0..self.n_threads).any(|t| !g.finished[t] && g.pending[t].is_none()) {
            return;
        }
        let d = g.decisions;
        g.decisions += 1;
        let live_last = g.last_ran.filter(|&l| g.pending[l].is_some());
        let chosen = if let Some(&f) = self.forced.get(d) {
            if g.pending.get(f).map(Option::is_some) != Some(true) {
                g.aborted = Some(format!("forced schedule diverged at step {d}"));
                self.cv.notify_all();
                return;
            }
            f
        } else {
            // Default: keep running the last thread; otherwise the
            // lowest-numbered enabled one.
            live_last.unwrap_or(enabled[0])
        };
        let pre = g.preemptions;
        let cost = |t: usize| usize::from(live_last.is_some_and(|l| l != t));
        g.preemptions = pre + cost(chosen);
        let chosen_op = g.pending[chosen];
        let alts: Vec<usize> = enabled
            .iter()
            .copied()
            .filter(|&t| t != chosen && pre + cost(t) <= self.preemption_bound)
            .filter(|&t| {
                self.exhaustive
                    || match (g.pending[t], chosen_op) {
                        (Some(a), Some(b)) => a.conflicts(&b),
                        _ => true,
                    }
            })
            .collect();
        g.trace.push(Choice { chosen, alts });
        g.turn = Some(chosen);
        g.last_ran = Some(chosen);
        self.cv.notify_all();
    }

    /// One shim operation from a scheduled worker (or, with `tid`
    /// `None`, a direct unscheduled apply from the main thread).
    fn op(&self, tid: Option<usize>, cell: usize, kind: OpKind, arg: u64) -> u64 {
        let mut g = self.inner.lock().expect("scheduler lock");
        let Some(tid) = tid else {
            return Self::apply(&mut g, cell, kind, arg);
        };
        if g.aborted.is_some() {
            return Self::apply(&mut g, cell, kind, arg);
        }
        g.arrived[tid] = true;
        g.pending[tid] = Some(PendingOp { cell, kind });
        self.maybe_decide(&mut g);
        let mut stalls = 0u32;
        loop {
            if g.aborted.is_some() {
                return Self::apply(&mut g, cell, kind, arg);
            }
            if g.turn == Some(tid) {
                g.turn = None;
                g.pending[tid] = None;
                g.steps += 1;
                if g.steps > MAX_STEPS {
                    g.aborted = Some("step limit exceeded (runaway execution)".to_string());
                    self.cv.notify_all();
                }
                return Self::apply(&mut g, cell, kind, arg);
            }
            let (g2, timeout) = self
                .cv
                .wait_timeout(g, STALL_WAIT)
                .expect("scheduler condvar");
            g = g2;
            if timeout.timed_out() {
                stalls += 1;
                if stalls > MAX_STALLS {
                    g.aborted = Some(format!("worker {tid} stalled: scheduler deadlock"));
                    self.cv.notify_all();
                }
            }
        }
    }
}

/// The model [`Atomics`] family: cells route every operation through
/// the thread-local scheduler context.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelAtomics;

/// A scheduled 64-bit model cell.
pub struct ModelU64 {
    sched: Arc<Sched>,
    cell: usize,
}

/// A scheduled boolean model cell (stored as 0/1 in a word cell).
pub struct ModelBool(ModelU64);

fn new_cell(v: u64) -> ModelU64 {
    let (sched, _) = current_ctx()
        .expect("model atomics cells must be created inside a scheduler context (enter_main)");
    let cell = sched.alloc_cell(v);
    ModelU64 { sched, cell }
}

impl ModelU64 {
    fn run(&self, kind: OpKind, arg: u64) -> u64 {
        // Ops from the owning scheduler's threads are scheduled; a
        // foreign or missing context applies directly (main-thread
        // setup and draining).
        let tid = match current_ctx() {
            Some((sched, tid)) if Arc::ptr_eq(&sched, &self.sched) => tid,
            _ => None,
        };
        self.sched.op(tid, self.cell, kind, arg)
    }
}

impl AtomicU64Cell for ModelU64 {
    fn new(v: u64) -> Self {
        new_cell(v)
    }

    fn load(&self, _order: Ordering) -> u64 {
        self.run(OpKind::Load, 0)
    }

    fn store(&self, v: u64, _order: Ordering) {
        self.run(OpKind::Store, v);
    }

    fn fetch_add(&self, v: u64, _order: Ordering) -> u64 {
        self.run(OpKind::Rmw, v)
    }
}

impl AtomicBoolCell for ModelBool {
    fn new(v: bool) -> Self {
        ModelBool(new_cell(u64::from(v)))
    }

    fn load(&self, _order: Ordering) -> bool {
        self.0.run(OpKind::Load, 0) != 0
    }

    fn store(&self, v: bool, _order: Ordering) {
        self.0.run(OpKind::Store, u64::from(v));
    }
}

impl Atomics for ModelAtomics {
    type U64 = ModelU64;
    type Bool = ModelBool;

    /// No-op: the model is sequentially consistent, so fences cannot
    /// change which states are reachable; the ordering lint, not the
    /// model checker, audits the fence annotations themselves.
    fn fence(_order: Ordering) {}
}

/// One execution's outcome, as consumed by [`explore`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The decision trace (chosen thread + admissible alternatives).
    pub trace: Vec<Choice>,
    /// Total scheduled steps.
    pub steps: usize,
    /// Scenario-level invariant violation, if the harness found one.
    pub violation: Option<String>,
    /// Scheduler-level abort (deadlock, runaway, diverged replay).
    pub aborted: Option<String>,
}

/// A schedule that falsifies an invariant, plus the message.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The thread ids granted at each decision, in order; replaying
    /// this schedule reproduces the violation deterministically.
    pub schedule: Vec<usize>,
    /// What went wrong.
    pub message: String,
}

/// The outcome of exploring one scenario's schedule space.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Executions (complete schedules) run.
    pub executions: u64,
    /// Longest execution, in scheduled steps.
    pub max_steps: usize,
    /// The first counterexample found, if any.
    pub counterexample: Option<Counterexample>,
    /// True if the execution cap stopped the search before the bounded
    /// schedule space was exhausted.
    pub capped: bool,
}

struct Frame {
    chosen: usize,
    alts: Vec<usize>,
}

/// Depth-first search over forced schedule prefixes: `run` executes the
/// scenario once under a forced prefix and reports the decision trace;
/// the explorer enumerates every admissible alternative at every depth
/// (deepest-first) until the space is exhausted, a counterexample is
/// found, or `max_executions` is hit.
pub fn explore<F>(max_executions: u64, mut run: F) -> Exploration
where
    F: FnMut(&[usize]) -> RunResult,
{
    let mut stack: Vec<Frame> = Vec::new();
    let mut executions = 0u64;
    let mut max_steps = 0usize;
    loop {
        let prefix: Vec<usize> = stack.iter().map(|f| f.chosen).collect();
        let res = run(&prefix);
        executions += 1;
        max_steps = max_steps.max(res.steps);
        if let Some(why) = res.aborted {
            return Exploration {
                executions,
                max_steps,
                counterexample: Some(Counterexample {
                    schedule: res.trace.iter().map(|c| c.chosen).collect(),
                    message: format!("scheduler abort: {why}"),
                }),
                capped: false,
            };
        }
        if let Some(message) = res.violation {
            return Exploration {
                executions,
                max_steps,
                counterexample: Some(Counterexample {
                    schedule: res.trace.iter().map(|c| c.chosen).collect(),
                    message,
                }),
                capped: false,
            };
        }
        for c in res.trace.iter().skip(stack.len()) {
            stack.push(Frame {
                chosen: c.chosen,
                alts: c.alts.clone(),
            });
        }
        loop {
            match stack.last_mut() {
                None => {
                    return Exploration {
                        executions,
                        max_steps,
                        counterexample: None,
                        capped: false,
                    }
                }
                Some(f) => {
                    if let Some(next) = f.alts.pop() {
                        f.chosen = next;
                        break;
                    }
                    stack.pop();
                }
            }
        }
        if executions >= max_executions {
            return Exploration {
                executions,
                max_steps,
                counterexample: None,
                capped: true,
            };
        }
    }
}
