//! Exhaustive AHB arbiter/decoder verification.
//!
//! Three layers, all over the *real* `ahbpower-ahb` structs rather than
//! a re-model:
//!
//! 1. **Decide-space walk** — for every master count in `2..=max`, both
//!    arbitration policies, every owner, lock state, round-robin cursor,
//!    SPLIT mask and request word, force the arbiter into that exact
//!    state (via [`Arbiter::set_split_mask`]/[`Arbiter::set_rr_next`])
//!    and check the single-step contract of [`Arbiter::decide`]: the
//!    grant word is one-hot, a locked unmasked owner always keeps the
//!    bus, a winner is always drawn from `requests & !split_mask` when
//!    that set is non-empty (lowest index for fixed priority, first hit
//!    scanning from the cursor for round-robin), the default master is
//!    granted when it is empty, and the cursor advances exactly when a
//!    round-robin grant was made. The grant word travels through
//!    `GrantSource` so a seeded [`ArbiterMutation::DoubleGrant`] can
//!    prove the one-hot check actually fires.
//! 2. **Starvation bound** — under round-robin, any continuously
//!    requesting master is granted within `n` decisions from *any*
//!    reachable cursor against *any* constant competing request
//!    pattern; under fixed priority the highest-priority unmasked
//!    requester is granted immediately (lower ones may legally starve —
//!    that is the policy's documented contract, not a bug).
//! 3. **Bus-level runs** — scripted multi-master traffic (bursts
//!    straddling interesting addresses, locked sequences, idle gaps) on
//!    the real [`ahbpower_ahb::AhbBus`], every cycle fed to the crate's
//!    [`ProtocolChecker`] plus walk-specific invariants: an HMASTER
//!    edge must have been granted on the previous cycle, the handover
//!    statistic must agree with observed edges, accepted incrementing
//!    burst beats never leave the 1 KB block of their NONSEQ beat, and
//!    HSEL matches the address decoder. The static boundary predicates
//!    (`crosses_1kb_boundary`, `incr_crosses_1kb_boundary`) are also
//!    cross-checked against brute-force beat enumeration.

use ahbpower_ahb::{
    burst_addresses, crosses_1kb_boundary, incr_crosses_1kb_boundary, parse_ops, AddressMap,
    AhbBusBuilder, Arbiter, Arbitration, HBurst, HSize, HTrans, MasterId, MemorySlave,
    ProtocolChecker, ScriptedMaster,
};

use crate::diag::Diagnostic;

/// Rule id carried by every diagnostic this pass emits.
pub const RULE: &str = "verify/arbiter";

/// Seeded fault for the negative direction of the walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArbiterMutation {
    /// Faithful grant wiring.
    #[default]
    None,
    /// The grant word asserts a second HGRANT line alongside the
    /// winner's — the classic "two masters own the bus" fabric bug the
    /// one-hot invariant exists to catch.
    DoubleGrant,
}

/// Turns a `decide()` winner into the packed HGRANT word, mirroring the
/// fabric's `1 << winner` wiring. The mutation hook lives here (in the
/// analyzer, not the shipped crate) so the seeded-fault direction never
/// risks leaking into production code paths.
#[derive(Debug, Clone, Copy)]
struct GrantSource {
    mutation: ArbiterMutation,
}

impl GrantSource {
    fn grant_word(&self, winner: MasterId, n_masters: usize) -> u32 {
        let word = 1u32 << winner.index();
        match self.mutation {
            ArbiterMutation::None => word,
            ArbiterMutation::DoubleGrant => word | 1 << ((winner.index() + 1) % n_masters),
        }
    }
}

/// Counters describing how much state the pass covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArbiterVerifyStats {
    /// Arbiter states exhaustively enumerated through `decide()`.
    pub decide_states: u64,
    /// Decisions made while probing the starvation bound.
    pub starvation_probes: u64,
    /// Bus cycles simulated across the scripted scenarios.
    pub bus_cycles: u64,
    /// Burst boundary predicates cross-checked against enumeration.
    pub burst_checks: u64,
}

/// Runs all three layers; `max_masters` bounds the decide-space walk
/// (the deep pass uses 8, matching the paper's largest configuration).
pub fn verify_arbiter(
    max_masters: usize,
    mutation: ArbiterMutation,
) -> (Vec<Diagnostic>, ArbiterVerifyStats) {
    let mut diags = Vec::new();
    let mut stats = ArbiterVerifyStats::default();
    walk_decide_space(max_masters, mutation, &mut diags, &mut stats);
    probe_starvation_bound(&mut diags, &mut stats);
    run_bus_scenarios(&mut diags, &mut stats);
    cross_check_boundary_predicates(&mut diags, &mut stats);
    (diags, stats)
}

/// Caps the number of diagnostics recorded per layer: an exhaustive walk
/// over a genuinely broken arbiter would otherwise emit millions of
/// identical findings.
const MAX_FINDINGS: usize = 16;

fn push(diags: &mut Vec<Diagnostic>, subject: &str, message: String) {
    if diags.len() < MAX_FINDINGS {
        diags.push(Diagnostic::error(RULE, subject, message));
    }
}

fn width_mask(n: usize) -> u32 {
    (1u32 << n) - 1
}

fn walk_decide_space(
    max_masters: usize,
    mutation: ArbiterMutation,
    diags: &mut Vec<Diagnostic>,
    stats: &mut ArbiterVerifyStats,
) {
    let grant_source = GrantSource { mutation };
    for n in 2..=max_masters.min(8) {
        for policy in [Arbitration::FixedPriority, Arbitration::RoundRobin] {
            // The cursor only matters for round-robin; pinning it to 0
            // under fixed priority halves the walk without losing
            // coverage.
            let cursors = match policy {
                Arbitration::FixedPriority => 1,
                Arbitration::RoundRobin => n,
            };
            let mut arb = Arbiter::new(n, policy, MasterId(0));
            for owner in 0..n {
                for lock in [false, true] {
                    for rr_next in 0..cursors {
                        for split in 0..=width_mask(n) {
                            for requests in 0..=width_mask(n) {
                                stats.decide_states += 1;
                                check_one_decision(
                                    &mut arb,
                                    &grant_source,
                                    n,
                                    policy,
                                    MasterId(owner as u8),
                                    lock,
                                    rr_next,
                                    split,
                                    requests,
                                    diags,
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_one_decision(
    arb: &mut Arbiter,
    grant_source: &GrantSource,
    n: usize,
    policy: Arbitration,
    owner: MasterId,
    lock: bool,
    rr_next: usize,
    split: u32,
    requests: u32,
    diags: &mut Vec<Diagnostic>,
) {
    let state = || {
        format!(
            "n={n} policy={policy} owner={} lock={lock} rr_next={rr_next} \
             split={split:#b} req={requests:#b}",
            owner.index()
        )
    };
    arb.set_split_mask(split);
    arb.set_rr_next(if rr_next < arb.n_masters() {
        rr_next
    } else {
        0
    });
    let owner_masked = arb.is_masked(owner);
    let winner = arb.decide(requests, owner, lock);
    let grantable = requests & !split;

    if winner.index() >= n {
        push(
            diags,
            "decide",
            format!("{}: winner {} out of range", state(), winner.index()),
        );
        return;
    }
    let grant = grant_source.grant_word(winner, n);
    if grant.count_ones() != 1 {
        push(
            diags,
            "decide",
            format!("{}: HGRANT {grant:#b} is not one-hot", state()),
        );
    }

    if lock && !owner_masked {
        // A locked, unmasked owner must keep the bus and must not
        // disturb the round-robin cursor.
        if winner != owner {
            push(
                diags,
                "decide",
                format!(
                    "{}: locked owner lost the bus to {}",
                    state(),
                    winner.index()
                ),
            );
        }
        if arb.rr_next() != rr_next {
            push(
                diags,
                "decide",
                format!(
                    "{}: lock grant moved rr cursor to {}",
                    state(),
                    arb.rr_next()
                ),
            );
        }
        return;
    }

    if grantable != 0 {
        if (grantable >> winner.index()) & 1 != 1 {
            push(
                diags,
                "decide",
                format!("{}: winner {} not grantable", state(), winner.index()),
            );
            return;
        }
        let expect = match policy {
            Arbitration::FixedPriority => grantable.trailing_zeros() as usize,
            Arbitration::RoundRobin => {
                // First grantable index scanning rr_next, rr_next+1, … mod n.
                let mut found = rr_next;
                for k in 0..n {
                    let i = (rr_next + k) % n;
                    if (grantable >> i) & 1 == 1 {
                        found = i;
                        break;
                    }
                }
                found
            }
        };
        if winner.index() != expect {
            push(
                diags,
                "decide",
                format!(
                    "{}: granted {} but priority says {expect}",
                    state(),
                    winner.index()
                ),
            );
        }
        let want_cursor = match policy {
            Arbitration::FixedPriority => rr_next,
            Arbitration::RoundRobin => (winner.index() + 1) % n,
        };
        if arb.rr_next() != want_cursor {
            push(
                diags,
                "decide",
                format!(
                    "{}: cursor {} != expected {want_cursor}",
                    state(),
                    arb.rr_next()
                ),
            );
        }
    } else {
        // Nobody grantable: the default master drives IDLE and the
        // cursor must not move.
        if winner != arb.default_master() {
            push(
                diags,
                "decide",
                format!("{}: idle grant went to {}", state(), winner.index()),
            );
        }
        if arb.rr_next() != rr_next {
            push(
                diags,
                "decide",
                format!("{}: idle decision moved rr cursor", state()),
            );
        }
    }
}

fn probe_starvation_bound(diags: &mut Vec<Diagnostic>, stats: &mut ArbiterVerifyStats) {
    // Round-robin: from any cursor, against any constant competing
    // pattern, a requesting master waits at most n decisions.
    for n in 2..=4usize {
        for victim in 0..n {
            for others in 0..=width_mask(n) {
                let requests = others | 1 << victim;
                for start in 0..n {
                    let mut arb = Arbiter::new(n, Arbitration::RoundRobin, MasterId(0));
                    arb.set_rr_next(start);
                    let mut owner = MasterId(0);
                    let mut served_at = None;
                    for round in 0..n {
                        stats.starvation_probes += 1;
                        owner = arb.decide(requests, owner, false);
                        if owner.index() == victim {
                            served_at = Some(round + 1);
                            break;
                        }
                    }
                    if served_at.is_none() {
                        push(
                            diags,
                            "starvation",
                            format!(
                                "round-robin starved master {victim} past {n} decisions \
                                 (n={n} req={requests:#b} start={start})"
                            ),
                        );
                    }
                }
            }
        }
    }
    // Fixed priority: the highest-priority unmasked requester wins the
    // very next decision.
    for n in 2..=4usize {
        for requests in 1..=width_mask(n) {
            for split in 0..=width_mask(n) {
                let grantable = requests & !split;
                if grantable == 0 {
                    continue;
                }
                let mut arb = Arbiter::new(n, Arbitration::FixedPriority, MasterId(0));
                arb.set_split_mask(split);
                stats.starvation_probes += 1;
                let winner = arb.decide(requests, MasterId((n - 1) as u8), false);
                if winner.index() != grantable.trailing_zeros() as usize {
                    push(
                        diags,
                        "starvation",
                        format!(
                            "fixed-priority delayed top requester \
                             (n={n} req={requests:#b} split={split:#b} got {})",
                            winner.index()
                        ),
                    );
                }
            }
        }
    }
}

/// One scripted bus scenario: masters' op scripts in the text format,
/// run on a real fabric until done.
struct BusScenario {
    name: &'static str,
    policy: Arbitration,
    scripts: &'static [&'static str],
}

fn bus_scenarios() -> Vec<BusScenario> {
    vec![
        BusScenario {
            name: "fp2_bursts_near_1kb",
            policy: Arbitration::FixedPriority,
            scripts: &[
                // INCR4 ending exactly at the 1 KB boundary (legal),
                // then singles in the next block.
                "burst w incr4 0x3f0 11 22 33 44\nread 0x400\nwrite 0x404 aa\n",
                // INCR8 safely inside a block, wrap burst, idle gaps.
                "idle 2\nburst w incr8 0x2c0 1 2 3 4 5 6 7 8\nburst r wrap8 0x240\n",
            ],
        },
        BusScenario {
            name: "rr3_contention_and_lock",
            policy: Arbitration::RoundRobin,
            scripts: &[
                "write 0x100 1\nlock\nwrite 0x104 2\nread 0x104\nendlock\nread 0x100\n",
                "burst w incr4 0x200 a b c d\nread 0x208\n",
                "read 0x300\nwrite 0x300 ff\nburst r wrap4 0x310\n",
            ],
        },
        BusScenario {
            name: "rr4_mixed_sizes",
            policy: Arbitration::RoundRobin,
            scripts: &[
                "write 0x10 1 b\nwrite 0x12 2 h\nread 0x10 b\n",
                "burst w incr8 0x7c0 1 2 3 4 5 6 7 8\n",
                "idle 3\nread 0x500\nwrite 0x504 5\n",
                "lock\nwrite 0x600 6\nread 0x600\nendlock\n",
            ],
        },
    ]
}

fn run_bus_scenarios(diags: &mut Vec<Diagnostic>, stats: &mut ArbiterVerifyStats) {
    for sc in bus_scenarios() {
        run_one_bus_scenario(&sc, diags, stats);
    }
}

fn run_one_bus_scenario(
    sc: &BusScenario,
    diags: &mut Vec<Diagnostic>,
    stats: &mut ArbiterVerifyStats,
) {
    let map = AddressMap::evenly_spaced(2, 0x800);
    let mut builder = AhbBusBuilder::new(map.clone()).arbitration(sc.policy);
    for text in sc.scripts {
        let ops = match parse_ops(text) {
            Ok(ops) => ops,
            Err(e) => {
                push(diags, sc.name, format!("script failed to parse: {e}"));
                return;
            }
        };
        builder = builder.master(Box::new(ScriptedMaster::new(ops)));
    }
    builder = builder
        .slave(Box::new(MemorySlave::new(0x800, 0, 0)))
        .slave(Box::new(MemorySlave::new(0x800, 1, 0)));
    let mut bus = match builder.build() {
        Ok(bus) => bus,
        Err(e) => {
            push(diags, sc.name, format!("bus build failed: {e}"));
            return;
        }
    };

    let mut checker = ProtocolChecker::new();
    let mut prev: Option<ahbpower_ahb::BusSnapshot> = None;
    let mut hmaster_edges: u64 = 0;
    let mut burst_start: Option<(u32, HBurst)> = None;
    const MAX_CYCLES: u64 = 4_096;
    for _ in 0..MAX_CYCLES {
        let snap = *bus.step();
        stats.bus_cycles += 1;
        checker.check(&snap);

        if let Some(p) = prev {
            if snap.hmaster != p.hmaster {
                hmaster_edges += 1;
                // The incoming owner must have held the grant on the
                // previous cycle — owners change only through HGRANT.
                if (p.hgrant >> snap.hmaster.index()) & 1 != 1 {
                    push(
                        diags,
                        sc.name,
                        format!(
                            "cycle {}: HMASTER became {} without a prior grant \
                             (HGRANT was {:#b})",
                            snap.cycle,
                            snap.hmaster.index(),
                            p.hgrant
                        ),
                    );
                }
            }
        }

        // 1 KB rule, observed dynamically: every accepted SEQ beat of a
        // non-wrapping burst stays in its NONSEQ beat's 1 KB block.
        if snap.hready {
            match snap.htrans {
                HTrans::NonSeq => burst_start = Some((snap.haddr, snap.hburst)),
                HTrans::Seq => {
                    if let Some((start, burst)) = burst_start {
                        if !burst.is_wrapping() && (snap.haddr >> 10) != (start >> 10) {
                            push(
                                diags,
                                sc.name,
                                format!(
                                    "cycle {}: {} beat at {:#x} left the 1 KB block of {:#x}",
                                    snap.cycle, burst, snap.haddr, start
                                ),
                            );
                        }
                    }
                }
                HTrans::Idle => burst_start = None,
                HTrans::Busy => {}
            }
        }

        // Decoder cross-check: the fabric's HSEL must match a fresh
        // decode of the address-phase address.
        if snap.htrans.is_transfer() {
            let want = match map.decode(snap.haddr) {
                Some(slave) => 1u32 << slave.index(),
                None => 0,
            };
            if snap.hsel != want {
                push(
                    diags,
                    sc.name,
                    format!(
                        "cycle {}: HSEL {:#b} disagrees with decode({:#x}) = {want:#b}",
                        snap.cycle, snap.hsel, snap.haddr
                    ),
                );
            }
        }

        prev = Some(snap);
        if bus.all_masters_done() && snap.htrans == HTrans::Idle {
            break;
        }
    }

    if !bus.all_masters_done() {
        push(
            diags,
            sc.name,
            format!("masters not done after {MAX_CYCLES} cycles"),
        );
    }
    for v in checker.violations() {
        push(diags, sc.name, format!("protocol: {v}"));
    }
    // Handover accounting: the fabric counts a handover when the next
    // owner differs from the current address-phase owner; the observed
    // HMASTER edge count can trail by at most the one decision still in
    // flight when the run stopped.
    let handovers = bus.stats().handovers;
    if handovers < hmaster_edges || handovers > hmaster_edges + 1 {
        push(
            diags,
            sc.name,
            format!("{handovers} recorded handovers vs {hmaster_edges} observed HMASTER edges"),
        );
    }
}

fn cross_check_boundary_predicates(diags: &mut Vec<Diagnostic>, stats: &mut ArbiterVerifyStats) {
    let sizes = [HSize::Byte, HSize::Half, HSize::Word];
    let bursts = [
        HBurst::Single,
        HBurst::Incr4,
        HBurst::Incr8,
        HBurst::Incr16,
        HBurst::Wrap4,
        HBurst::Wrap8,
        HBurst::Wrap16,
    ];
    let blocks_differ = |addrs: &[u32]| {
        let first = addrs[0] >> 10;
        addrs.iter().any(|a| (a >> 10) != first)
    };
    for size in sizes {
        for burst in bursts {
            let mut start = 0u32;
            while start < 0x1000 {
                stats.burst_checks += 1;
                let enumerated = blocks_differ(&burst_addresses(start, size, burst, 4));
                let predicted = crosses_1kb_boundary(start, size, burst);
                // The predicate only claims fixed-length incrementing
                // bursts; wrapping windows (≤ 64 B) and SINGLE cannot
                // cross, and enumeration must agree.
                if predicted != enumerated && burst.beats().is_some() && !burst.is_wrapping() {
                    push(
                        diags,
                        "burst-boundary",
                        format!("crosses_1kb_boundary({start:#x}, {size}, {burst}) = {predicted}, enumeration says {enumerated}"),
                    );
                }
                if burst.is_wrapping() && enumerated {
                    push(
                        diags,
                        "burst-boundary",
                        format!("wrapping {burst} at {start:#x} crossed a 1 KB boundary"),
                    );
                }
                start += size.bytes();
            }
        }
        for beats in 1..=20usize {
            let mut start = 0u32;
            while start < 0x800 {
                stats.burst_checks += 1;
                let enumerated = blocks_differ(&burst_addresses(start, size, HBurst::Incr, beats));
                let predicted = incr_crosses_1kb_boundary(start, size, beats);
                if predicted != enumerated {
                    push(
                        diags,
                        "burst-boundary",
                        format!(
                            "incr_crosses_1kb_boundary({start:#x}, {size}, {beats}) = \
                             {predicted}, enumeration says {enumerated}"
                        ),
                    );
                }
                start += size.bytes() * 7; // coprime stride samples misaligned starts too
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_walk_is_clean() {
        let (diags, stats) = verify_arbiter(5, ArbiterMutation::None);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(stats.decide_states > 50_000, "{stats:?}");
        assert!(stats.bus_cycles > 0);
        assert!(stats.burst_checks > 0);
    }

    #[test]
    fn double_grant_mutant_is_caught() {
        let (diags, _) = verify_arbiter(2, ArbiterMutation::DoubleGrant);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.rule == RULE));
        assert!(
            diags.iter().any(|d| d.message.contains("one-hot")),
            "{diags:?}"
        );
    }

    #[test]
    fn findings_are_capped() {
        let (diags, _) = verify_arbiter(8, ArbiterMutation::DoubleGrant);
        assert!(diags.len() <= MAX_FINDINGS);
    }
}
