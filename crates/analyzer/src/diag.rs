//! Structured diagnostics: rule id, severity, optional location, message.

use std::fmt;
use std::fmt::Write as _;

use ahbpower::telemetry::MetricsRegistry;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not necessarily wrong; does not fail the analysis.
    Warning,
    /// A model/protocol/source invariant is violated; fails the analysis.
    Error,
}

impl Severity {
    /// Lower-case label, as emitted in JSONL and Prometheus-style labels.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding of one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `map/overlap` or `lint/unwrap`.
    pub rule: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// What is being analyzed: a source path, a scenario name, a model
    /// label. Empty if the finding is global.
    pub subject: String,
    /// 1-based line number inside `subject`, when it is a text file.
    pub line: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic.
    pub fn error(
        rule: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            subject: subject.into(),
            line: None,
            message: message.into(),
        }
    }

    /// Creates a warning-severity diagnostic.
    pub fn warning(
        rule: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Warning,
            subject: subject.into(),
            line: None,
            message: message.into(),
        }
    }

    /// Attaches a 1-based line number.
    pub fn at_line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}]", self.severity, self.rule)?;
        if !self.subject.is_empty() {
            write!(f, " {}", self.subject)?;
            if let Some(line) = self.line {
                write!(f, ":{line}")?;
            }
        }
        write!(f, ": {}", self.message)
    }
}

/// The result of an analysis run: every diagnostic from every rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Wraps a list of diagnostics.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> Self {
        Report { diagnostics }
    }

    /// Appends another report's findings.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Appends a batch of diagnostics.
    pub fn extend(&mut self, diagnostics: Vec<Diagnostic>) {
        self.diagnostics.extend(diagnostics);
    }

    /// All findings, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// True if no error-severity finding was recorded (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Human-readable rendering: one line per finding plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "analysis: {} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        );
        out
    }

    /// Registers per-rule finding counters
    /// (`analyzer_diagnostics_total{rule,severity}`) into a telemetry
    /// registry, so reports export through the existing JSONL/CSV/
    /// Prometheus exporters alongside other run metrics.
    pub fn to_metrics(&self, reg: &mut MetricsRegistry) {
        for d in &self.diagnostics {
            let id = reg.counter(
                "analyzer_diagnostics_total",
                "Static-analysis findings by rule and severity",
                &[("rule", d.rule), ("severity", d.severity.label())],
            );
            reg.add(id, 1.0);
        }
    }

    /// Renders each finding as one JSON object per line, matching the
    /// telemetry exporters' JSONL event-stream style.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = write!(
                out,
                "{{\"event\":\"diagnostic\",\"rule\":\"{}\",\"severity\":\"{}\"",
                json_escape(d.rule),
                d.severity.label()
            );
            if !d.subject.is_empty() {
                let _ = write!(out, ",\"subject\":\"{}\"", json_escape(&d.subject));
            }
            if let Some(line) = d.line {
                let _ = write!(out, ",\"line\":{line}");
            }
            let _ = writeln!(out, ",\"message\":\"{}\"}}", json_escape(&d.message));
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_rule_location_and_message() {
        let d = Diagnostic::error("map/overlap", "paper_testbench", "windows collide").at_line(3);
        let s = d.to_string();
        assert!(s.contains("error"));
        assert!(s.contains("map/overlap"));
        assert!(s.contains("paper_testbench:3"));
        assert!(s.contains("windows collide"));
    }

    #[test]
    fn report_counts_and_cleanliness() {
        let mut r = Report::new();
        assert!(r.is_clean());
        r.extend(vec![
            Diagnostic::warning("map/gap", "m", "hole"),
            Diagnostic::error("map/overlap", "m", "collide"),
        ]);
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.error_count(), 1);
        assert!(!r.is_clean());
        let text = r.render_text();
        assert!(text.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn jsonl_escapes_and_shapes_events() {
        let mut r = Report::new();
        r.extend(vec![
            Diagnostic::error("lint/unwrap", "a\"b.rs", "x").at_line(7)
        ]);
        let line = r.render_jsonl();
        assert!(line.starts_with("{\"event\":\"diagnostic\""));
        assert!(line.contains("\\\"b.rs"));
        assert!(line.contains("\"line\":7"));
    }

    #[test]
    fn metrics_aggregate_per_rule_and_severity() {
        let mut r = Report::new();
        r.extend(vec![
            Diagnostic::error("lint/unwrap", "a.rs", "x"),
            Diagnostic::error("lint/unwrap", "b.rs", "y"),
            Diagnostic::warning("map/gap", "m", "hole"),
        ]);
        let mut reg = MetricsRegistry::new();
        r.to_metrics(&mut reg);
        let jsonl = ahbpower::telemetry::to_jsonl(&reg, &Default::default());
        assert!(jsonl.contains("analyzer_diagnostics_total"));
        assert!(jsonl.contains("\"rule\":\"lint/unwrap\""));
        assert!(jsonl.contains("2"));
    }
}
