//! Layer-2 source lint: a lightweight token-level pass over the
//! workspace's own Rust sources enforcing repo invariants.
//!
//! The linter is deliberately not a parser: it strips comments and string
//! literals (preserving line numbers), masks `#[cfg(test)]` regions by
//! brace matching, and then pattern-matches the remaining tokens. That is
//! enough for the invariants below and keeps the crate dependency-free.
//!
//! ## Rules
//!
//! - `lint/unwrap` — no `.unwrap()` in library code: recoverable
//!   conditions must surface as `Result` (`GenError`-style), not abort a
//!   simulation mid-run;
//! - `lint/panic` — no `panic!`/`todo!`/`unimplemented!` in library code;
//! - `lint/print` — no `println!`-family output in library code: results
//!   flow through return values or the telemetry exporters, binaries own
//!   the terminal;
//! - `lint/instr-gate` — wall-clock instrumentation (`Instant::now`,
//!   `SystemTime::now`) only inside the designated instrumentation
//!   modules, mirroring the paper's POWERTEST discipline: the measurement
//!   switch must not be able to alter functional behaviour.

use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::Diagnostic;

/// Modules allowed to read wall-clock time: the opt-in telemetry /
/// profiling layer. Paths are workspace-relative with `/` separators.
const INSTRUMENTATION_MODULES: &[&str] = &[
    "crates/core/src/telemetry/",
    // The structured event ring (covered by the prefix above, named so
    // the grant is explicit): it stamps a creation Instant to derive
    // events/sec. Simulation results must never depend on it.
    "crates/core/src/telemetry/events.rs",
    "crates/core/src/session.rs",
    "crates/sim/src/profile.rs",
    "crates/sim/src/kernel.rs",
    "crates/bench/src/serve.rs",
];

/// Lints every library source under `root` (`crates/*/src/**/*.rs`,
/// excluding `src/bin/`). Returns findings sorted by path then line so
/// output is deterministic across filesystems.
pub fn lint_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut crate_dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for c in crate_dirs {
            collect_rs_files(&c.join("src"), &mut files);
        }
    }
    files.sort();
    let mut diags = Vec::new();
    for path in files {
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        diags.extend(lint_source(&src, &rel));
    }
    diags
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            // src/bin targets own the terminal and the process exit; the
            // library invariants do not apply there.
            if p.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Lints one file's source text. `rel_path` decides the instrumentation
/// allowlist and is stamped into the diagnostics.
pub fn lint_source(src: &str, rel_path: &str) -> Vec<Diagnostic> {
    let code = strip_comments_and_strings(src);
    let masked = mask_test_regions(&code);
    let instrumented = INSTRUMENTATION_MODULES
        .iter()
        .any(|m| rel_path.starts_with(m) || rel_path == m.trim_end_matches('/'));
    let mut diags = Vec::new();
    for (i, line) in masked.lines().enumerate() {
        let lineno = i + 1;
        if line.contains(".unwrap()") {
            diags.push(
                Diagnostic::error(
                    "lint/unwrap",
                    rel_path.to_string(),
                    "`.unwrap()` in library code; return a Result (GenError-style) instead",
                )
                .at_line(lineno),
            );
        }
        for mac in ["panic!(", "todo!(", "unimplemented!("] {
            if contains_macro(line, mac) {
                diags.push(
                    Diagnostic::error(
                        "lint/panic",
                        rel_path.to_string(),
                        format!(
                            "`{}` in library code; return an error instead",
                            &mac[..mac.len() - 1]
                        ),
                    )
                    .at_line(lineno),
                );
            }
        }
        for mac in ["println!(", "print!(", "eprintln!(", "eprint!(", "dbg!("] {
            if contains_macro(line, mac) {
                diags.push(
                    Diagnostic::error(
                        "lint/print",
                        rel_path.to_string(),
                        format!(
                            "`{}` in library code; emit through telemetry exporters or \
                             return data to the caller",
                            &mac[..mac.len() - 1]
                        ),
                    )
                    .at_line(lineno),
                );
            }
        }
        if !instrumented && (line.contains("Instant::now") || line.contains("SystemTime::now")) {
            diags.push(
                Diagnostic::error(
                    "lint/instr-gate",
                    rel_path.to_string(),
                    "wall-clock timing outside the instrumentation modules; keep \
                     measurement code where disabling it cannot change behaviour",
                )
                .at_line(lineno),
            );
        }
    }
    diags
}

/// True if `line` invokes `mac` as a macro (not as a suffix of a longer
/// identifier, e.g. `my_print!(`).
fn contains_macro(line: &str, mac: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(mac) {
        let at = start + pos;
        let prev = line[..at].chars().next_back();
        if !prev.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return true;
        }
        start = at + mac.len();
    }
    false
}

/// Replaces comments and string/char literal contents with spaces,
/// preserving every newline so line numbers survive.
fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                out.push(b' ');
                out.push(b' ');
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' if is_raw_string_start(b, i) => {
                out.push(b' ');
                i += 1;
                let mut hashes = 0;
                while i < b.len() && b[i] == b'#' {
                    hashes += 1;
                    out.push(b' ');
                    i += 1;
                }
                out.push(b' ');
                i += 1; // opening quote
                loop {
                    if i >= b.len() {
                        break;
                    }
                    if b[i] == b'"' && closes_raw(b, i, hashes) {
                        out.extend(std::iter::repeat_n(b' ', hashes + 1));
                        i += hashes + 1;
                        break;
                    }
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' {
                        out.push(b' ');
                        i += 1;
                        if i >= b.len() {
                            break;
                        }
                    }
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
                if i < b.len() {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'\'' if is_char_literal(b, i) => {
                out.push(b' ');
                i += 1;
                while i < b.len() && b[i] != b'\'' {
                    if b[i] == b'\\' {
                        out.push(b' ');
                        i += 1;
                        if i >= b.len() {
                            break;
                        }
                    }
                    out.push(b' ');
                    i += 1;
                }
                if i < b.len() {
                    out.push(b' ');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// `r"`, `r#"` etc. — but not a plain identifier ending in `r`.
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i + 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

fn closes_raw(b: &[u8], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| i + k < b.len() && b[i + k] == b'#')
}

/// Distinguishes a char literal from a lifetime: `'a'`/`'\n'` vs `'a`.
fn is_char_literal(b: &[u8], i: usize) -> bool {
    if i + 1 >= b.len() {
        return false;
    }
    if b[i + 1] == b'\\' {
        return true;
    }
    i + 2 < b.len() && b[i + 2] == b'\''
}

/// Blanks out every `#[cfg(test)]`-attributed item (matched to its
/// closing brace), so test-only code is exempt from the rules.
fn mask_test_regions(code: &str) -> String {
    let b = code.as_bytes();
    let mut masked: Vec<u8> = b.to_vec();
    let mut search = 0;
    while let Some(pos) = find_subslice(b, b"#[cfg(test)]", search) {
        // Find the opening brace of the attributed item.
        let Some(open) = b[pos..].iter().position(|&c| c == b'{').map(|o| pos + o) else {
            break;
        };
        let mut depth = 0usize;
        let mut end = b.len();
        for (j, &c) in b.iter().enumerate().skip(open) {
            if c == b'{' {
                depth += 1;
            } else if c == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = j + 1;
                    break;
                }
            }
        }
        for m in masked.iter_mut().take(end).skip(pos) {
            if *m != b'\n' {
                *m = b' ';
            }
        }
        search = end;
    }
    String::from_utf8_lossy(&masked).into_owned()
}

fn find_subslice(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| from + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn unwrap_in_lib_code_is_flagged_with_line() {
        let src = "fn f() {\n    let x = g().unwrap();\n}\n";
        let diags = lint_source(src, "crates/x/src/lib.rs");
        assert_eq!(rules(&diags), ["lint/unwrap"]);
        assert_eq!(diags[0].line, Some(2));
    }

    #[test]
    fn unwrap_variants_are_not_flagged() {
        let src = "fn f() { g().unwrap_or_default(); h().unwrap_or_else(|| 1); }\n";
        assert!(lint_source(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn panic_family_is_flagged() {
        let src = "fn f() { panic!(\"boom\"); }\nfn g() { todo!() }\n";
        let diags = lint_source(src, "crates/x/src/lib.rs");
        assert_eq!(rules(&diags), ["lint/panic", "lint/panic"]);
    }

    #[test]
    fn assert_macros_are_allowed() {
        let src = "fn f(x: u32) { assert!(x > 0); debug_assert_eq!(x, x); }\n";
        assert!(lint_source(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); panic!(); }\n}\n";
        assert!(lint_source(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn comments_and_strings_are_exempt() {
        let src = concat!(
            "//! println!(\"doc\"); .unwrap()\n",
            "fn f() -> &'static str {\n",
            "    // panic!(\"comment\")\n",
            "    \"panic!(in-a-string).unwrap()\"\n",
            "}\n",
            "fn g() -> &'static str { r#\"println!(\"raw\")\"# }\n",
        );
        assert!(lint_source(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn print_macros_are_flagged_but_custom_names_are_not() {
        let src = "fn f() { println!(\"x\"); my_println!(\"y\"); }\n";
        let diags = lint_source(src, "crates/x/src/lib.rs");
        assert_eq!(rules(&diags), ["lint/print"]);
    }

    #[test]
    fn wall_clock_outside_instrumentation_is_flagged() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        let diags = lint_source(src, "crates/core/src/power_fsm.rs");
        assert_eq!(rules(&diags), ["lint/instr-gate"]);
        assert!(lint_source(src, "crates/core/src/telemetry/span.rs").is_empty());
        assert!(lint_source(src, "crates/sim/src/profile.rs").is_empty());
    }

    #[test]
    fn event_bus_may_read_the_clock_but_the_gate_still_fires_elsewhere() {
        // The same seeded violation, moved around the workspace: allowed
        // in the event ring (it derives events/sec from a creation
        // Instant), still flagged anywhere outside the allowlist — the
        // grant is a path, not a rule exemption.
        let src = "fn rate() -> f64 { std::time::Instant::now().elapsed().as_secs_f64() }\n";
        assert!(
            lint_source(src, "crates/core/src/telemetry/events.rs").is_empty(),
            "the event ring is designated instrumentation"
        );
        for path in [
            "crates/bench/src/dashboard.rs",
            "crates/ahb/src/lifecycle.rs",
            "crates/core/src/model.rs",
        ] {
            assert_eq!(
                rules(&lint_source(src, path)),
                ["lint/instr-gate"],
                "clock read at {path} must still be flagged"
            );
        }
    }

    #[test]
    fn char_literals_and_lifetimes_survive_stripping() {
        let src =
            "fn f<'a>(x: &'a str) -> char { let c = 'x'; let n = '\\n'; let _ = (x, n); c }\n";
        assert!(lint_source(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // The linter's home workspace must satisfy its own invariants.
        // When the test runs from the crate dir, the workspace root is
        // two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = lint_workspace(&root);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
