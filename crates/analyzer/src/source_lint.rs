//! Layer-2 source lint: a lightweight token-level pass over the
//! workspace's own Rust sources enforcing repo invariants.
//!
//! The linter is deliberately not a parser: it strips comments and string
//! literals (preserving line numbers), masks `#[cfg(test)]` regions by
//! brace matching, and then pattern-matches the remaining tokens. That is
//! enough for the invariants below and keeps the crate dependency-free.
//!
//! ## Rules
//!
//! - `lint/unwrap` — no `.unwrap()` in library code: recoverable
//!   conditions must surface as `Result` (`GenError`-style), not abort a
//!   simulation mid-run;
//! - `lint/panic` — no `panic!`/`todo!`/`unimplemented!` in library code;
//! - `lint/print` — no `println!`-family output in library code: results
//!   flow through return values or the telemetry exporters, binaries own
//!   the terminal;
//! - `lint/instr-gate` — wall-clock instrumentation (`Instant::now`,
//!   `SystemTime::now`) only inside the designated instrumentation
//!   modules, mirroring the paper's POWERTEST discipline: the measurement
//!   switch must not be able to alter functional behaviour;
//! - `atomics/relaxed` — every `Ordering::Relaxed` on a shared atomic in
//!   library code must carry a `relaxed:` invariant comment on the same
//!   raw line or the line above, stating why the weakest ordering is
//!   sound at that site (the model checker in [`crate::verify`] proves
//!   the event ring's claims; the comment makes every other site's
//!   justification reviewable);
//! - `atomics/audited` — in the designated concurrency-audited files,
//!   *every* atomic ordering site (not just `Relaxed`) must carry a
//!   `relaxed:` or `ordering:` invariant comment;
//! - `atomics/fence-pair` — a `fence(Ordering::Release)` must be
//!   followed, within the same function, by a release-or-stronger store
//!   or RMW (the fence is meaningless without the store it orders), and
//!   a `fence(Ordering::Acquire)` must be preceded by an
//!   acquire-or-stronger load or RMW — the seqlock entry/exit shape the
//!   event ring relies on.

use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::Diagnostic;

/// Modules allowed to read wall-clock time: the opt-in telemetry /
/// profiling layer. Paths are workspace-relative with `/` separators.
const INSTRUMENTATION_MODULES: &[&str] = &[
    "crates/core/src/telemetry/",
    // The structured event ring (covered by the prefix above, named so
    // the grant is explicit): it stamps a creation Instant to derive
    // events/sec. Simulation results must never depend on it.
    "crates/core/src/telemetry/events.rs",
    // The multi-resolution retention store (also covered by the prefix,
    // named so the grant is explicit): pure bookkeeping fed by the
    // telemetry layer. Simulation results must never depend on it.
    "crates/core/src/telemetry/observatory.rs",
    "crates/core/src/session.rs",
    "crates/sim/src/profile.rs",
    "crates/sim/src/kernel.rs",
    "crates/bench/src/serve.rs",
    // The load generator exists to measure request wall-clock; it never
    // touches the simulation path.
    "crates/bench/src/loadgen.rs",
    // The deep verification pass times its own wall-clock budget; the
    // model checker's stall watchdog also reads the monotonic clock.
    "crates/analyzer/src/verify/",
];

/// Files whose cross-thread atomics have been audited end to end: every
/// ordering site in them must carry an invariant comment the audit can
/// be checked against (`atomics/audited`).
const CONCURRENCY_AUDITED: &[&str] = &[
    "crates/core/src/telemetry/events.rs",
    "crates/bench/src/sweep.rs",
    "crates/bench/src/serve.rs",
];

/// The five memory-ordering variants of `std::sync::atomic::Ordering`.
/// Matching `Ordering::<variant>` (rather than bare `Ordering::`) keeps
/// `cmp::Ordering::{Less, Equal, Greater}` out of scope.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Lints every library source under `root` (`crates/*/src/**/*.rs`,
/// excluding `src/bin/`). Returns findings sorted by path then line so
/// output is deterministic across filesystems.
pub fn lint_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (rel, src) in workspace_lib_sources(root) {
        diags.extend(lint_source(&src, &rel));
    }
    diags
}

/// Reads every library source under `root`, in deterministic order,
/// as `(workspace-relative path, contents)` pairs.
fn workspace_lib_sources(root: &Path) -> Vec<(String, String)> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut crate_dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for c in crate_dirs {
            collect_rs_files(&c.join("src"), &mut files);
        }
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, src));
    }
    out
}

/// Per-variant counts of atomic ordering sites across the workspace's
/// library code (test regions excluded), reported by the deep pass so
/// the audit surface is visible in the findings stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrderingCensus {
    /// `Ordering::Relaxed` mentions.
    pub relaxed: u64,
    /// `Ordering::Acquire` mentions.
    pub acquire: u64,
    /// `Ordering::Release` mentions.
    pub release: u64,
    /// `Ordering::AcqRel` mentions.
    pub acq_rel: u64,
    /// `Ordering::SeqCst` mentions.
    pub seq_cst: u64,
    /// Lines invoking an atomic fence with an explicit ordering.
    pub fences: u64,
    /// Library files containing at least one atomic ordering site.
    pub files_with_atomics: u64,
}

impl OrderingCensus {
    /// Total ordering mentions across all variants.
    pub fn total(&self) -> u64 {
        self.relaxed + self.acquire + self.release + self.acq_rel + self.seq_cst
    }
}

/// Counts every atomic ordering site in the workspace's library code.
pub fn classify_orderings(root: &Path) -> OrderingCensus {
    let mut census = OrderingCensus::default();
    for (_, src) in workspace_lib_sources(root) {
        let masked = mask_test_regions(&strip_comments_and_strings(&src));
        let mut any = false;
        for line in masked.lines() {
            for (variant, slot) in [
                ("Relaxed", &mut census.relaxed),
                ("Acquire", &mut census.acquire),
                ("Release", &mut census.release),
                ("AcqRel", &mut census.acq_rel),
                ("SeqCst", &mut census.seq_cst),
            ] {
                if contains_ordering(line, variant) {
                    *slot += 1;
                    any = true;
                    if line.contains("fence(") {
                        census.fences += 1;
                    }
                }
            }
        }
        if any {
            census.files_with_atomics += 1;
        }
    }
    census
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            // src/bin targets own the terminal and the process exit; the
            // library invariants do not apply there.
            if p.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Lints one file's source text. `rel_path` decides the instrumentation
/// allowlist and is stamped into the diagnostics.
pub fn lint_source(src: &str, rel_path: &str) -> Vec<Diagnostic> {
    let code = strip_comments_and_strings(src);
    let masked = mask_test_regions(&code);
    let instrumented = INSTRUMENTATION_MODULES
        .iter()
        .any(|m| rel_path.starts_with(m) || rel_path == m.trim_end_matches('/'));
    let audited = CONCURRENCY_AUDITED.contains(&rel_path);
    // Invariant-comment markers live in comments, which stripping blanks
    // out — marker checks read the raw text.
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut diags = Vec::new();
    for (i, line) in masked.lines().enumerate() {
        let lineno = i + 1;
        if line.contains(".unwrap()") {
            diags.push(
                Diagnostic::error(
                    "lint/unwrap",
                    rel_path.to_string(),
                    "`.unwrap()` in library code; return a Result (GenError-style) instead",
                )
                .at_line(lineno),
            );
        }
        for mac in ["panic!(", "todo!(", "unimplemented!("] {
            if contains_macro(line, mac) {
                diags.push(
                    Diagnostic::error(
                        "lint/panic",
                        rel_path.to_string(),
                        format!(
                            "`{}` in library code; return an error instead",
                            &mac[..mac.len() - 1]
                        ),
                    )
                    .at_line(lineno),
                );
            }
        }
        for mac in ["println!(", "print!(", "eprintln!(", "eprint!(", "dbg!("] {
            if contains_macro(line, mac) {
                diags.push(
                    Diagnostic::error(
                        "lint/print",
                        rel_path.to_string(),
                        format!(
                            "`{}` in library code; emit through telemetry exporters or \
                             return data to the caller",
                            &mac[..mac.len() - 1]
                        ),
                    )
                    .at_line(lineno),
                );
            }
        }
        if !instrumented && (line.contains("Instant::now") || line.contains("SystemTime::now")) {
            diags.push(
                Diagnostic::error(
                    "lint/instr-gate",
                    rel_path.to_string(),
                    "wall-clock timing outside the instrumentation modules; keep \
                     measurement code where disabling it cannot change behaviour",
                )
                .at_line(lineno),
            );
        }
        if line.contains("Ordering::Relaxed") && !has_marker(&raw_lines, lineno, &["relaxed:"]) {
            diags.push(
                Diagnostic::error(
                    "atomics/relaxed",
                    rel_path.to_string(),
                    "`Ordering::Relaxed` without a `relaxed:` invariant comment on this \
                     line or the line above; state why the weakest ordering is sound \
                     here, or strengthen it",
                )
                .at_line(lineno),
            );
        }
        if audited
            && ATOMIC_ORDERINGS[1..]
                .iter()
                .any(|v| contains_ordering(line, v))
            && !has_marker(&raw_lines, lineno, &["relaxed:", "ordering:"])
        {
            diags.push(
                Diagnostic::error(
                    "atomics/audited",
                    rel_path.to_string(),
                    "atomic ordering site in a concurrency-audited file without a \
                     `relaxed:`/`ordering:` invariant comment on this line or the \
                     line above",
                )
                .at_line(lineno),
            );
        }
    }
    diags.extend(check_fence_pairing(&masked, rel_path));
    diags
}

/// True if any of the raw source lines `lineno` or `lineno - 1`
/// (1-based) mentions one of the marker needles. Markers live in
/// comments, so this looks at the *unstripped* text.
fn has_marker(raw_lines: &[&str], lineno: usize, needles: &[&str]) -> bool {
    let mut candidates = vec![lineno];
    if lineno > 1 {
        candidates.push(lineno - 1);
    }
    candidates.into_iter().any(|n| {
        raw_lines
            .get(n - 1)
            .is_some_and(|l| needles.iter().any(|m| l.contains(m)))
    })
}

/// True if `line` mentions `Ordering::<variant>` for the given variant.
fn contains_ordering(line: &str, variant: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find("Ordering::") {
        let at = start + pos + "Ordering::".len();
        if line[at..].starts_with(variant) {
            // Reject a longer identifier (e.g. `RelaxedFoo`).
            let after = line[at + variant.len()..].chars().next();
            if !after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                return true;
            }
        }
        start = at;
    }
    false
}

/// Classification of one atomic-operation line for the fence-pair rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AtomKind {
    Load,
    Store,
    Rmw,
    Fence,
}

#[derive(Debug, Clone, Copy)]
struct AtomSite {
    line: usize,
    kind: AtomKind,
    /// Ordering is acquire-or-stronger (Acquire, AcqRel, SeqCst).
    acquire: bool,
    /// Ordering is release-or-stronger (Release, AcqRel, SeqCst).
    release: bool,
}

/// `atomics/fence-pair`: inside each function, a release fence must be
/// followed by a release store/RMW and an acquire fence preceded by an
/// acquire load/RMW. Operates line-by-line on the masked text, which is
/// exact enough for this workspace's one-op-per-line atomics style.
fn check_fence_pairing(masked: &str, rel_path: &str) -> Vec<Diagnostic> {
    let mut sites = Vec::new();
    for (i, line) in masked.lines().enumerate() {
        let orderings: Vec<&str> = ATOMIC_ORDERINGS
            .iter()
            .copied()
            .filter(|v| contains_ordering(line, v))
            .collect();
        if orderings.is_empty() {
            continue;
        }
        let kind = if line.contains("fence(") {
            AtomKind::Fence
        } else if line.contains(".fetch_") || line.contains(".swap(") || line.contains(".compare_")
        {
            AtomKind::Rmw
        } else if line.contains(".store(") {
            AtomKind::Store
        } else if line.contains(".load(") {
            AtomKind::Load
        } else {
            continue; // e.g. an ordering passed through as a parameter
        };
        let acquire = orderings
            .iter()
            .any(|v| ["Acquire", "AcqRel", "SeqCst"].contains(v));
        let release = orderings
            .iter()
            .any(|v| ["Release", "AcqRel", "SeqCst"].contains(v));
        sites.push(AtomSite {
            line: i + 1,
            kind,
            acquire,
            release,
        });
    }
    let regions = fn_regions(masked);
    let mut diags = Vec::new();
    for fence in sites.iter().filter(|s| s.kind == AtomKind::Fence) {
        // Innermost enclosing function: the largest start line at or
        // before the fence whose region still covers it.
        let Some(&(start, end)) = regions
            .iter()
            .filter(|&&(s, e)| s <= fence.line && fence.line <= e)
            .max_by_key(|&&(s, _)| s)
        else {
            continue;
        };
        let within = |s: &&AtomSite| start <= s.line && s.line <= end;
        if fence.release {
            let paired = sites.iter().filter(within).any(|s| {
                s.line > fence.line
                    && matches!(s.kind, AtomKind::Store | AtomKind::Rmw)
                    && s.release
            });
            if !paired {
                diags.push(
                    Diagnostic::error(
                        "atomics/fence-pair",
                        rel_path.to_string(),
                        "release fence with no subsequent release store/RMW in the same \
                         function; nothing publishes what the fence ordered",
                    )
                    .at_line(fence.line),
                );
            }
        }
        if fence.acquire {
            let paired = sites.iter().filter(within).any(|s| {
                s.line < fence.line && matches!(s.kind, AtomKind::Load | AtomKind::Rmw) && s.acquire
            });
            if !paired {
                diags.push(
                    Diagnostic::error(
                        "atomics/fence-pair",
                        rel_path.to_string(),
                        "acquire fence with no preceding acquire load/RMW in the same \
                         function; the fence has nothing to synchronize with",
                    )
                    .at_line(fence.line),
                );
            }
        }
    }
    diags
}

/// Brace-matched `(start_line, end_line)` (1-based, inclusive) of every
/// function body in the masked text. Declarations without bodies are
/// skipped; nested functions yield nested regions.
fn fn_regions(masked: &str) -> Vec<(usize, usize)> {
    let b = masked.as_bytes();
    let mut regions = Vec::new();
    let mut search = 0;
    while let Some(pos) = find_subslice(b, b"fn ", search) {
        search = pos + 3;
        // Require a token boundary before `fn`.
        if pos > 0 && (b[pos - 1].is_ascii_alphanumeric() || b[pos - 1] == b'_') {
            continue;
        }
        // Find the body's opening brace; a `;` first means a bodyless
        // declaration (trait method, extern).
        let mut j = pos + 3;
        let mut open = None;
        while j < b.len() {
            match b[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let Some(open) = open else { continue };
        let mut depth = 0usize;
        let mut end = b.len().saturating_sub(1);
        for (k, &c) in b.iter().enumerate().skip(open) {
            if c == b'{' {
                depth += 1;
            } else if c == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = k;
                    break;
                }
            }
        }
        let line_of = |idx: usize| masked[..idx].bytes().filter(|&c| c == b'\n').count() + 1;
        regions.push((line_of(pos), line_of(end)));
    }
    regions
}

/// True if `line` invokes `mac` as a macro (not as a suffix of a longer
/// identifier, e.g. `my_print!(`).
fn contains_macro(line: &str, mac: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(mac) {
        let at = start + pos;
        let prev = line[..at].chars().next_back();
        if !prev.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return true;
        }
        start = at + mac.len();
    }
    false
}

/// Replaces comments and string/char literal contents with spaces,
/// preserving every newline so line numbers survive.
fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                out.push(b' ');
                out.push(b' ');
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' if is_raw_string_start(b, i) => {
                out.push(b' ');
                i += 1;
                let mut hashes = 0;
                while i < b.len() && b[i] == b'#' {
                    hashes += 1;
                    out.push(b' ');
                    i += 1;
                }
                out.push(b' ');
                i += 1; // opening quote
                loop {
                    if i >= b.len() {
                        break;
                    }
                    if b[i] == b'"' && closes_raw(b, i, hashes) {
                        out.extend(std::iter::repeat_n(b' ', hashes + 1));
                        i += hashes + 1;
                        break;
                    }
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' {
                        out.push(b' ');
                        i += 1;
                        if i >= b.len() {
                            break;
                        }
                    }
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
                if i < b.len() {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'\'' if is_char_literal(b, i) => {
                out.push(b' ');
                i += 1;
                while i < b.len() && b[i] != b'\'' {
                    if b[i] == b'\\' {
                        out.push(b' ');
                        i += 1;
                        if i >= b.len() {
                            break;
                        }
                    }
                    out.push(b' ');
                    i += 1;
                }
                if i < b.len() {
                    out.push(b' ');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// `r"`, `r#"` etc. — but not a plain identifier ending in `r`.
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i + 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

fn closes_raw(b: &[u8], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| i + k < b.len() && b[i + k] == b'#')
}

/// Distinguishes a char literal from a lifetime: `'a'`/`'\n'` vs `'a`.
fn is_char_literal(b: &[u8], i: usize) -> bool {
    if i + 1 >= b.len() {
        return false;
    }
    if b[i + 1] == b'\\' {
        return true;
    }
    i + 2 < b.len() && b[i + 2] == b'\''
}

/// Blanks out every `#[cfg(test)]`-attributed item (matched to its
/// closing brace), so test-only code is exempt from the rules.
fn mask_test_regions(code: &str) -> String {
    let b = code.as_bytes();
    let mut masked: Vec<u8> = b.to_vec();
    let mut search = 0;
    while let Some(pos) = find_subslice(b, b"#[cfg(test)]", search) {
        // Find the opening brace of the attributed item.
        let Some(open) = b[pos..].iter().position(|&c| c == b'{').map(|o| pos + o) else {
            break;
        };
        let mut depth = 0usize;
        let mut end = b.len();
        for (j, &c) in b.iter().enumerate().skip(open) {
            if c == b'{' {
                depth += 1;
            } else if c == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = j + 1;
                    break;
                }
            }
        }
        for m in masked.iter_mut().take(end).skip(pos) {
            if *m != b'\n' {
                *m = b' ';
            }
        }
        search = end;
    }
    String::from_utf8_lossy(&masked).into_owned()
}

fn find_subslice(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| from + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn unwrap_in_lib_code_is_flagged_with_line() {
        let src = "fn f() {\n    let x = g().unwrap();\n}\n";
        let diags = lint_source(src, "crates/x/src/lib.rs");
        assert_eq!(rules(&diags), ["lint/unwrap"]);
        assert_eq!(diags[0].line, Some(2));
    }

    #[test]
    fn unwrap_variants_are_not_flagged() {
        let src = "fn f() { g().unwrap_or_default(); h().unwrap_or_else(|| 1); }\n";
        assert!(lint_source(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn panic_family_is_flagged() {
        let src = "fn f() { panic!(\"boom\"); }\nfn g() { todo!() }\n";
        let diags = lint_source(src, "crates/x/src/lib.rs");
        assert_eq!(rules(&diags), ["lint/panic", "lint/panic"]);
    }

    #[test]
    fn assert_macros_are_allowed() {
        let src = "fn f(x: u32) { assert!(x > 0); debug_assert_eq!(x, x); }\n";
        assert!(lint_source(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); panic!(); }\n}\n";
        assert!(lint_source(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn comments_and_strings_are_exempt() {
        let src = concat!(
            "//! println!(\"doc\"); .unwrap()\n",
            "fn f() -> &'static str {\n",
            "    // panic!(\"comment\")\n",
            "    \"panic!(in-a-string).unwrap()\"\n",
            "}\n",
            "fn g() -> &'static str { r#\"println!(\"raw\")\"# }\n",
        );
        assert!(lint_source(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn print_macros_are_flagged_but_custom_names_are_not() {
        let src = "fn f() { println!(\"x\"); my_println!(\"y\"); }\n";
        let diags = lint_source(src, "crates/x/src/lib.rs");
        assert_eq!(rules(&diags), ["lint/print"]);
    }

    #[test]
    fn wall_clock_outside_instrumentation_is_flagged() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        let diags = lint_source(src, "crates/core/src/power_fsm.rs");
        assert_eq!(rules(&diags), ["lint/instr-gate"]);
        assert!(lint_source(src, "crates/core/src/telemetry/span.rs").is_empty());
        assert!(lint_source(src, "crates/sim/src/profile.rs").is_empty());
    }

    #[test]
    fn event_bus_may_read_the_clock_but_the_gate_still_fires_elsewhere() {
        // The same seeded violation, moved around the workspace: allowed
        // in the event ring (it derives events/sec from a creation
        // Instant), still flagged anywhere outside the allowlist — the
        // grant is a path, not a rule exemption.
        let src = "fn rate() -> f64 { std::time::Instant::now().elapsed().as_secs_f64() }\n";
        assert!(
            lint_source(src, "crates/core/src/telemetry/events.rs").is_empty(),
            "the event ring is designated instrumentation"
        );
        for path in [
            "crates/bench/src/dashboard.rs",
            "crates/ahb/src/lifecycle.rs",
            "crates/core/src/model.rs",
        ] {
            assert_eq!(
                rules(&lint_source(src, path)),
                ["lint/instr-gate"],
                "clock read at {path} must still be flagged"
            );
        }
    }

    #[test]
    fn observatory_is_instrumentation_but_the_gate_holds_around_it() {
        // The retention store's explicit allowlist entry grants the
        // path, not the pattern: the same clock read is still flagged
        // in neighbouring non-instrumentation modules.
        let src = "fn rate() -> f64 { std::time::Instant::now().elapsed().as_secs_f64() }\n";
        assert!(
            lint_source(src, "crates/core/src/telemetry/observatory.rs").is_empty(),
            "the observatory is designated instrumentation"
        );
        for path in [
            "crates/bench/src/obsquery.rs",
            "crates/bench/src/flightrec.rs",
            "crates/core/src/macromodel.rs",
        ] {
            assert_eq!(
                rules(&lint_source(src, path)),
                ["lint/instr-gate"],
                "clock read at {path} must still be flagged"
            );
        }
    }

    #[test]
    fn char_literals_and_lifetimes_survive_stripping() {
        let src =
            "fn f<'a>(x: &'a str) -> char { let c = 'x'; let n = '\\n'; let _ = (x, n); c }\n";
        assert!(lint_source(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn unmarked_relaxed_is_flagged_and_marker_silences() {
        let bare =
            "fn f(x: &std::sync::atomic::AtomicU64) -> u64 {\n    x.load(Ordering::Relaxed)\n}\n";
        let diags = lint_source(bare, "crates/x/src/lib.rs");
        assert_eq!(rules(&diags), ["atomics/relaxed"]);
        assert_eq!(diags[0].line, Some(2));

        let above = "fn f(x: &std::sync::atomic::AtomicU64) -> u64 {\n    // relaxed: monotonic counter, no data guarded by it\n    x.load(Ordering::Relaxed)\n}\n";
        assert!(lint_source(above, "crates/x/src/lib.rs").is_empty());

        let inline = "fn f(x: &std::sync::atomic::AtomicU64) -> u64 {\n    x.load(Ordering::Relaxed) // relaxed: monotonic counter\n}\n";
        assert!(lint_source(inline, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn audited_files_require_markers_on_every_ordering() {
        let src =
            "fn f(x: &std::sync::atomic::AtomicBool) {\n    x.store(true, Ordering::SeqCst);\n}\n";
        // The same SeqCst site: clean in an ordinary file, flagged in an
        // audited one.
        assert!(lint_source(src, "crates/x/src/lib.rs").is_empty());
        let diags = lint_source(src, "crates/bench/src/sweep.rs");
        assert_eq!(rules(&diags), ["atomics/audited"]);
        let marked = "fn f(x: &std::sync::atomic::AtomicBool) {\n    // ordering: cold shutdown flag\n    x.store(true, Ordering::SeqCst);\n}\n";
        assert!(lint_source(marked, "crates/bench/src/sweep.rs").is_empty());
    }

    #[test]
    fn cmp_ordering_variants_are_out_of_scope() {
        let src = "fn f(a: u32, b: u32) -> std::cmp::Ordering {\n    if a < b { std::cmp::Ordering::Less } else { std::cmp::Ordering::Greater }\n}\n";
        assert!(lint_source(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn unpaired_release_fence_is_flagged() {
        let src = concat!(
            "use std::sync::atomic::{fence, AtomicU64, Ordering};\n",
            "fn publish(stamp: &AtomicU64) {\n",
            "    // ordering: orders earlier payload stores\n",
            "    fence(Ordering::Release);\n",
            "    // relaxed: WRONG — the publishing store must be release\n",
            "    stamp.store(2, Ordering::Relaxed);\n",
            "}\n",
        );
        let diags = lint_source(src, "crates/x/src/lib.rs");
        assert_eq!(rules(&diags), ["atomics/fence-pair"]);
        assert_eq!(diags[0].line, Some(4));
    }

    #[test]
    fn unpaired_acquire_fence_is_flagged() {
        let src = concat!(
            "use std::sync::atomic::{fence, AtomicU64, Ordering};\n",
            "fn observe(stamp: &AtomicU64) -> u64 {\n",
            "    // relaxed: WRONG — the first stamp read must be acquire\n",
            "    let s = stamp.load(Ordering::Relaxed);\n",
            "    // ordering: orders payload loads before the re-check\n",
            "    fence(Ordering::Acquire);\n",
            "    s\n",
            "}\n",
        );
        let diags = lint_source(src, "crates/x/src/lib.rs");
        assert_eq!(rules(&diags), ["atomics/fence-pair"]);
        assert_eq!(diags[0].line, Some(6));
    }

    #[test]
    fn seqlock_shaped_fences_are_clean() {
        // The event ring's writer and reader shapes, reduced.
        let src = concat!(
            "use std::sync::atomic::{fence, AtomicU64, Ordering};\n",
            "fn write(stamp: &AtomicU64, word: &AtomicU64) {\n",
            "    // relaxed: ordered before the payload by the fence below\n",
            "    stamp.store(1, Ordering::Relaxed);\n",
            "    // ordering: release fence before the payload\n",
            "    fence(Ordering::Release);\n",
            "    // relaxed: stamp-guarded payload\n",
            "    word.store(7, Ordering::Relaxed);\n",
            "    // ordering: publishes the payload\n",
            "    stamp.store(2, Ordering::Release);\n",
            "}\n",
            "fn read(stamp: &AtomicU64, word: &AtomicU64) -> u64 {\n",
            "    // ordering: pairs with the writer's release store\n",
            "    let _s1 = stamp.load(Ordering::Acquire);\n",
            "    // relaxed: stamp-validated read\n",
            "    let w = word.load(Ordering::Relaxed);\n",
            "    // ordering: orders the payload loads before the re-check\n",
            "    fence(Ordering::Acquire);\n",
            "    // relaxed: the fence above orders this re-check\n",
            "    let _s2 = stamp.load(Ordering::Relaxed);\n",
            "    w\n",
            "}\n",
        );
        assert!(lint_source(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn fence_pairing_respects_function_boundaries() {
        // A release store in a *different* function must not satisfy the
        // fence: the pairing is per-function.
        let src = concat!(
            "use std::sync::atomic::{fence, AtomicU64, Ordering};\n",
            "fn a(stamp: &AtomicU64) {\n",
            "    // ordering: fence with no local release store\n",
            "    fence(Ordering::Release);\n",
            "}\n",
            "fn b(stamp: &AtomicU64) {\n",
            "    // ordering: unrelated publishing store\n",
            "    stamp.store(2, Ordering::Release);\n",
            "}\n",
        );
        let diags = lint_source(src, "crates/x/src/lib.rs");
        assert_eq!(rules(&diags), ["atomics/fence-pair"]);
    }

    #[test]
    fn ordering_census_counts_sites() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let census = classify_orderings(&root);
        // The event ring alone guarantees these floors.
        assert!(census.relaxed >= 10, "{census:?}");
        assert!(census.acquire >= 2, "{census:?}");
        assert!(census.release >= 2, "{census:?}");
        assert!(census.fences >= 2, "{census:?}");
        assert!(census.files_with_atomics >= 3, "{census:?}");
        assert_eq!(
            census.total(),
            census.relaxed + census.acquire + census.release + census.acq_rel + census.seq_cst
        );
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // The linter's home workspace must satisfy its own invariants.
        // When the test runs from the crate dir, the workspace root is
        // two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = lint_workspace(&root);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
