//! Layer-1 model checks: instruction-set transition graph and energy
//! macromodel domain validation.
//!
//! The paper's methodology is only sound when its behavioural
//! decomposition is *closed*: the four activity modes (IDLE, IDLE_HO,
//! READ, WRITE) with all permissible transitions between them must form a
//! total, deterministic FSM, and every instruction's macromodel must be
//! defined (finite, non-negative) over its whole parameter domain.

use ahbpower::{
    classify_mode, ActivityMode, AhbPowerModel, Instruction, TechParams, ADDR_BITS,
    INSTRUCTION_COUNT,
};
use ahbpower_ahb::{BusSnapshot, HBurst, HResp, HSize, HTrans, MasterId};

use crate::diag::Diagnostic;

/// A declarative description of the instruction set: which mode
/// transitions the decomposition permits, and the reset mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstructionSetSpec {
    /// `allowed[from.index()][to.index()]` — is the transition permitted?
    pub allowed: [[bool; 4]; 4],
    /// The mode the power FSM starts in.
    pub reset: ActivityMode,
}

impl InstructionSetSpec {
    /// The paper's spec: every mode can follow every mode (classification
    /// is per-cycle, so any two consecutive cycles may differ arbitrarily).
    pub fn full() -> Self {
        InstructionSetSpec {
            allowed: [[true; 4]; 4],
            reset: ActivityMode::default(),
        }
    }

    /// Derives the spec from the repo's actual cycle classifier
    /// ([`classify_mode`]) by feeding it one synthetic bus snapshot per
    /// distinguishable input class. Every mode the classifier can emit is
    /// enterable from any mode, so the derived transition matrix allows
    /// exactly `emittable × emittable` plus transitions out of reset.
    pub fn from_classifier() -> Self {
        let snap = |htrans: HTrans, hwrite: bool, last: Option<MasterId>| {
            let s = BusSnapshot {
                cycle: 0,
                haddr: 0,
                htrans,
                hwrite,
                hsize: HSize::Word,
                hburst: HBurst::Single,
                hwdata: 0,
                hrdata: 0,
                hready: true,
                hresp: HResp::Okay,
                hmaster: MasterId(0),
                hmastlock: false,
                hbusreq: 0,
                hgrant: 0,
                hsel: 0,
            };
            classify_mode(&s, last)
        };
        let mut emittable = [false; 4];
        emittable[snap(HTrans::NonSeq, true, None).index()] = true;
        emittable[snap(HTrans::NonSeq, false, None).index()] = true;
        emittable[snap(HTrans::Idle, false, Some(MasterId(1))).index()] = true;
        emittable[snap(HTrans::Idle, false, None).index()] = true;
        let reset = ActivityMode::default();
        let mut allowed = [[false; 4]; 4];
        for from in 0..4 {
            for to in 0..4 {
                // A mode is a legal source if the classifier can produce it
                // or it is the reset mode (the FSM starts there without any
                // classified cycle).
                let src_ok = emittable[from] || from == reset.index();
                allowed[from][to] = src_ok && emittable[to];
            }
        }
        InstructionSetSpec { allowed, reset }
    }

    /// Checks closure, determinism and reachability of the transition
    /// graph against the crate's instruction set.
    ///
    /// - `model/closure`: a reachable mode has no outgoing permitted
    ///   transition — the FSM is not total and classification would get
    ///   stuck (error);
    /// - `model/determinism`: two permitted transitions map to the same
    ///   instruction index — energy would be double-booked (error);
    /// - `model/unreachable`: an instruction whose source mode can never
    ///   be reached from reset — its macromodel is dead weight and its
    ///   characterization untested (error).
    pub fn check(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let reachable = self.reachable_modes();

        // Closure: every reachable mode needs a successor.
        for (fi, row) in self.allowed.iter().enumerate() {
            if reachable[fi] && !row.iter().any(|&a| a) {
                let mode = ActivityMode::from_index(fi).map_or("?", |m| m.name());
                diags.push(Diagnostic::error(
                    "model/closure",
                    "instruction-set",
                    format!(
                        "mode {mode} is reachable but has no outgoing transition; \
                         the decomposition is not closed"
                    ),
                ));
            }
        }

        // Determinism: permitted transitions must map to distinct,
        // in-range instruction indices.
        let mut index_owner: [Option<Instruction>; INSTRUCTION_COUNT] = [None; INSTRUCTION_COUNT];
        for i in Instruction::all() {
            if !self.allowed[i.from.index()][i.to.index()] {
                continue;
            }
            let idx = i.index();
            if idx >= INSTRUCTION_COUNT {
                diags.push(Diagnostic::error(
                    "model/determinism",
                    "instruction-set",
                    format!("instruction {i} maps to out-of-range index {idx}"),
                ));
                continue;
            }
            if let Some(prev) = index_owner[idx] {
                diags.push(Diagnostic::error(
                    "model/determinism",
                    "instruction-set",
                    format!("instructions {prev} and {i} share index {idx}"),
                ));
            } else {
                index_owner[idx] = Some(i);
            }
        }

        // Reachability: flag instructions that can never execute.
        for i in Instruction::all() {
            if !self.allowed[i.from.index()][i.to.index()] {
                continue;
            }
            if !reachable[i.from.index()] {
                diags.push(Diagnostic::error(
                    "model/unreachable",
                    "instruction-set",
                    format!(
                        "instruction {i} can never execute: mode {} is unreachable from reset",
                        i.from.name()
                    ),
                ));
            }
        }
        diags
    }

    /// Modes reachable from reset via permitted transitions (reset itself
    /// included).
    fn reachable_modes(&self) -> [bool; 4] {
        let mut reach = [false; 4];
        let mut stack = vec![self.reset.index()];
        while let Some(m) = stack.pop() {
            if reach[m] {
                continue;
            }
            reach[m] = true;
            for (to, &ok) in self.allowed[m].iter().enumerate() {
                if ok && !reach[to] {
                    stack.push(to);
                }
            }
        }
        reach
    }
}

impl Default for InstructionSetSpec {
    fn default() -> Self {
        InstructionSetSpec::from_classifier()
    }
}

/// Validates one macromodel set over its declared parameter domain.
///
/// - `model/coefficient-range`: a coefficient is NaN, infinite or
///   negative — physically meaningless for an energy model (error);
/// - `model/negative-energy`: `energy()` evaluates negative or non-finite
///   somewhere on the supported Hamming-distance domain (error);
/// - `model/non-monotone`: energy decreases as Hamming distance grows —
///   legal for a fitted model but suspicious (warning).
pub fn check_macromodels(model: &AhbPowerModel, label: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut coeff = |block: &str, name: &str, v: f64| {
        if !v.is_finite() || v < 0.0 {
            diags.push(Diagnostic::error(
                "model/coefficient-range",
                label.to_string(),
                format!("{block} coefficient {name} = {v} is outside [0, ∞)"),
            ));
        }
    };
    for (name, v) in model.decoder.coefficients() {
        coeff("decoder", name, v);
    }
    for (name, v) in model.m2s.coefficients() {
        coeff("m2s mux", name, v);
    }
    for (name, v) in model.s2m.coefficients() {
        coeff("s2m mux", name, v);
    }
    for (name, v) in model.arbiter.coefficients() {
        coeff("arbiter", name, v);
    }

    let mut energy = |block: &str, domain: &str, e: f64, prev: &mut f64| {
        if !e.is_finite() || e < 0.0 {
            diags.push(Diagnostic::error(
                "model/negative-energy",
                label.to_string(),
                format!("{block} energy at {domain} is {e}"),
            ));
        } else if e < *prev {
            diags.push(Diagnostic::warning(
                "model/non-monotone",
                label.to_string(),
                format!("{block} energy decreases at {domain} ({e} < {prev})"),
            ));
        }
        *prev = e.max(*prev);
    };

    let mut prev = 0.0;
    for hd in 0..=ADDR_BITS {
        energy(
            "decoder",
            &format!("hd={hd}"),
            model.decoder.energy(hd),
            &mut prev,
        );
    }
    for sel in [false, true] {
        let mut prev = 0.0;
        for hd in 0..=model.m2s.width {
            energy(
                "m2s mux",
                &format!("hd={hd},sel={sel}"),
                model.m2s.energy(hd, sel),
                &mut prev,
            );
        }
        let mut prev = 0.0;
        for hd in 0..=model.s2m.width {
            energy(
                "s2m mux",
                &format!("hd={hd},sel={sel}"),
                model.s2m.energy(hd, sel),
                &mut prev,
            );
        }
    }
    for handover in [false, true] {
        let mut prev = 0.0;
        for hd in 0..=model.arbiter.n_masters as u32 {
            energy(
                "arbiter",
                &format!("hd_req={hd},handover={handover}"),
                model.arbiter.energy(hd, handover),
                &mut prev,
            );
        }
    }
    diags
}

/// Instantiates the paper-form macromodels for every master/slave count
/// the repo supports (2..=`max_masters` × 2..=`max_slaves`) and validates
/// each. A config whose construction would be rejected shows up as a
/// `model/negative-energy` or `model/coefficient-range` finding on its
/// label.
pub fn check_model_domain(max_masters: usize, max_slaves: usize) -> Vec<Diagnostic> {
    let tech = TechParams::default();
    let mut diags = Vec::new();
    for m in 2..=max_masters {
        for s in 2..=max_slaves {
            let model = AhbPowerModel::new(m, s, &tech);
            diags.extend(check_macromodels(
                &model,
                &format!("paper_model[{m}m/{s}s]"),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_spec_is_clean() {
        let spec = InstructionSetSpec::from_classifier();
        let diags = spec.check();
        assert!(diags.is_empty(), "{diags:?}");
        // The classifier can produce all four modes, so the derived spec
        // permits all 16 paper instructions.
        assert_eq!(spec.allowed, [[true; 4]; 4]);
    }

    #[test]
    fn missing_outgoing_edges_break_closure() {
        let mut spec = InstructionSetSpec::full();
        spec.allowed[ActivityMode::Write.index()] = [false; 4];
        let diags = spec.check();
        assert!(diags.iter().any(|d| d.rule == "model/closure"), "{diags:?}");
    }

    #[test]
    fn unreachable_mode_flags_its_instructions() {
        let mut spec = InstructionSetSpec::full();
        // No edges *into* READ: all READ_* instructions become unreachable
        // (their source mode is never entered)...
        for from in 0..4 {
            spec.allowed[from][ActivityMode::Read.index()] = false;
        }
        let diags = spec.check();
        let unreachable: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "model/unreachable")
            .collect();
        // READ_IDLE, READ_IDLE_HO, READ_WRITE (READ_READ's edge is
        // already forbidden by the spec itself).
        assert_eq!(unreachable.len(), 3, "{diags:?}");
        assert!(unreachable.iter().all(|d| d.message.contains("READ")));
    }

    #[test]
    fn paper_models_are_clean_across_domain() {
        let diags = check_model_domain(8, 8);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn negative_coefficient_is_flagged() {
        let tech = TechParams::default();
        let mut model = AhbPowerModel::new(2, 4, &tech);
        model.decoder = ahbpower::DecoderModel::from_fit(4, -1.0, 0.0);
        let diags = check_macromodels(&model, "bad");
        assert!(diags.iter().any(|d| d.rule == "model/coefficient-range"));
        assert!(diags.iter().any(|d| d.rule == "model/negative-energy"));
    }
}
