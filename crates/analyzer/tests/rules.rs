//! One positive (fires) and one negative (clean) case per analyzer rule,
//! through the crate's public API.

use ahbpower::{AhbPowerModel, DecoderModel, MuxModel, TechParams};
use ahbpower_ahb::{AddrRange, AddressMap, HBurst, HSize, Op, SlaveId};
use ahbpower_analyzer::{
    analyze_models_and_workloads, check_macromodels, map, script, source_lint, Diagnostic,
    InstructionSetSpec, Report, Severity,
};

fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

fn fires(diags: &[Diagnostic], rule: &str) -> bool {
    diags.iter().any(|d| d.rule == rule)
}

// --- model/* ---------------------------------------------------------

#[test]
fn model_closure_fires_on_dead_end_mode_and_not_on_default() {
    assert!(InstructionSetSpec::from_classifier().check().is_empty());
    let mut spec = InstructionSetSpec::full();
    spec.allowed[ahbpower::ActivityMode::Idle.index()] = [false; 4];
    assert!(fires(&spec.check(), "model/closure"));
}

#[test]
fn model_unreachable_fires_when_read_cannot_be_entered() {
    let mut spec = InstructionSetSpec::full();
    for from in 0..4 {
        spec.allowed[from][ahbpower::ActivityMode::Read.index()] = false;
    }
    let diags = spec.check();
    assert!(fires(&diags, "model/unreachable"), "{diags:?}");
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn model_coefficient_range_fires_on_negative_fit() {
    let tech = TechParams::default();
    let clean = AhbPowerModel::new(3, 4, &tech);
    assert!(check_macromodels(&clean, "clean").is_empty());

    let mut bad = clean.clone();
    bad.decoder = DecoderModel::from_fit(4, -1.0e-12, 0.0);
    assert!(fires(
        &check_macromodels(&bad, "bad"),
        "model/coefficient-range"
    ));
}

#[test]
fn model_negative_energy_fires_on_malformed_domain() {
    let tech = TechParams::default();
    let mut bad = AhbPowerModel::new(3, 4, &tech);
    // Positive slope but strongly negative offset: coefficients flag AND
    // the sampled energy domain goes negative.
    bad.m2s = MuxModel::from_fit(32, 3, 1.0e-12, 1.0e-12, -1.0);
    let diags = check_macromodels(&bad, "bad");
    assert!(fires(&diags, "model/coefficient-range"), "{diags:?}");
    // b_sel only contributes when sel flips; with sel=true the total goes
    // negative at low Hamming distance.
    assert!(fires(&diags, "model/negative-energy"), "{diags:?}");
}

// --- map/* -----------------------------------------------------------

#[test]
fn map_overlap_fires_on_colliding_windows() {
    let clean = AddressMap::evenly_spaced(3, 0x1000);
    assert!(map::check_map(&clean, "clean").is_empty());

    let bad = vec![
        AddrRange::new(0x0000, 0x1000, SlaveId(0)),
        AddrRange::new(0x0800, 0x1000, SlaveId(1)),
    ];
    assert!(fires(&map::check_ranges(&bad, "bad"), "map/overlap"));
}

#[test]
fn map_gap_fires_on_interior_hole() {
    let holey = vec![
        AddrRange::new(0x0000, 0x1000, SlaveId(0)),
        AddrRange::new(0x3000, 0x1000, SlaveId(1)),
    ];
    let diags = map::check_ranges(&holey, "holey");
    assert_eq!(rules(&diags), ["map/gap"]);
    assert_eq!(diags[0].severity, Severity::Warning);
}

#[test]
fn map_empty_fires_on_no_windows() {
    assert!(fires(&map::check_ranges(&[], "none"), "map/empty"));
}

// --- script/* --------------------------------------------------------

#[test]
fn script_burst_1kb_fires_on_boundary_crossing() {
    let clean = vec![Op::Burst {
        write: true,
        burst: HBurst::Incr4,
        addr: 0x3F0,
        data: vec![0; 4],
        size: HSize::Word,
        busy_between: 0,
    }];
    assert!(script::check_script(&clean, None, "clean").is_empty());

    let crossing = vec![Op::Burst {
        write: true,
        burst: HBurst::Incr4,
        addr: 0x3F4,
        data: vec![0; 4],
        size: HSize::Word,
        busy_between: 0,
    }];
    assert_eq!(
        rules(&script::check_script(&crossing, None, "x")),
        ["script/burst-1kb"]
    );
}

#[test]
fn script_busy_in_single_fires() {
    let bad = vec![Op::Burst {
        write: true,
        burst: HBurst::Single,
        addr: 0x10,
        data: vec![1],
        size: HSize::Word,
        busy_between: 1,
    }];
    assert_eq!(
        rules(&script::check_script(&bad, None, "x")),
        ["script/busy-in-single"]
    );
}

#[test]
fn script_idle_in_lock_fires() {
    let clean = vec![Op::Locked(vec![Op::write(0x10, 1), Op::read(0x10)])];
    assert!(script::check_script(&clean, None, "clean").is_empty());

    let bad = vec![Op::Locked(vec![Op::write(0x10, 1), Op::Idle(4)])];
    assert_eq!(
        rules(&script::check_script(&bad, None, "x")),
        ["script/idle-in-lock"]
    );
}

#[test]
fn script_text_round_trip_parses_and_fires() {
    let clean = "write 0x100 2a\nburst w incr4 0x200 1 2 3 4\n";
    assert!(script::check_script_text(clean, None, "f").is_empty());

    let crossing = "burst w incr4 0x3fc 1 2 3 4\n";
    assert!(fires(
        &script::check_script_text(crossing, None, "f"),
        "script/burst-1kb"
    ));

    let unparsable = "write\n";
    assert!(fires(
        &script::check_script_text(unparsable, None, "f"),
        "script/parse"
    ));
}

// --- lint/* ----------------------------------------------------------

#[test]
fn lint_rules_fire_on_bad_source_and_not_on_equivalent_good_source() {
    let bad =
        "fn f() { g().unwrap(); panic!(); println!(\"x\"); let _ = std::time::Instant::now(); }\n";
    let diags = source_lint::lint_source(bad, "crates/x/src/lib.rs");
    for rule in ["lint/unwrap", "lint/panic", "lint/print", "lint/instr-gate"] {
        assert!(fires(&diags, rule), "{rule} missing in {diags:?}");
    }

    let good = "fn f() -> Result<(), E> { g()?; Ok(()) }\n";
    assert!(source_lint::lint_source(good, "crates/x/src/lib.rs").is_empty());
}

// --- end to end ------------------------------------------------------

#[test]
fn shipped_workloads_are_clean_and_reports_aggregate() {
    let report = analyze_models_and_workloads();
    assert!(report.is_clean(), "{}", report.render_text());

    let mut merged = Report::new();
    merged.merge(report);
    merged.extend(vec![Diagnostic::error("map/overlap", "x", "boom")]);
    assert!(!merged.is_clean());
    assert!(merged.render_jsonl().contains("\"rule\":\"map/overlap\""));
}
