//! A model-checker counterexample promoted to a named regression test.
//!
//! The schedule below is the first counterexample the DFS finds for the
//! `PublishBeforePayload` ring mutant (scenario
//! `mutant_publish_before_payload`, preemption bound 1): the publisher
//! (thread 0) claims sequence 2 and — because the mutant publishes the
//! final stamp before the payload — gets preempted mid-slot with the
//! stamp already announcing "ready"; the consumer (thread 1) then runs
//! its whole poll, reads the half-written slot, and observes event
//! `b: 0.0` where `b: 1.0` was published. Replaying the recorded
//! schedule must reproduce that torn read forever — if this test fails,
//! either the scheduler's decision order or the ring's memory protocol
//! changed semantics.

use ahbpower_analyzer::verify::ring::{run_ring_once, torn_scenario};

/// Recorded by `explore_ring(&torn_scenario(), 1, _)` — 29 publisher
/// steps (three publishes, the third preempted between its stamp and
/// payload stores), 29 consumer steps (a full poll over the torn slot),
/// and the publisher's final step.
const TORN_READ_SCHEDULE: [usize; 59] = [
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, //
    1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, //
    0,
];

#[test]
fn recorded_torn_read_schedule_still_reproduces() {
    let scenario = torn_scenario();
    for attempt in 0..3 {
        let result = run_ring_once(&scenario, &TORN_READ_SCHEDULE, 1);
        assert!(
            result.aborted.is_none(),
            "attempt {attempt}: schedule no longer replays: {:?}",
            result.aborted
        );
        let violation = result
            .violation
            .unwrap_or_else(|| panic!("attempt {attempt}: recorded schedule lost its violation"));
        assert!(
            violation.contains("torn read at seq 2"),
            "attempt {attempt}: unexpected violation: {violation}"
        );
    }
}
