//! Model-checker integration tests: the clean ring scenarios hold
//! under every bounded-preemption interleaving, the seeded mutants are
//! caught, and a recorded counterexample schedule replays
//! deterministically.

use ahbpower::telemetry::RingMutation;
use ahbpower_analyzer::verify::ring::{
    clean_scenarios, explore_ring, no_stamp_scenario, run_ring_once, torn_scenario, verify_ring,
};

#[test]
fn clean_scenarios_hold_at_bounds_1_and_2() {
    for bound in [1, 2] {
        for s in clean_scenarios() {
            let ex = explore_ring(&s, bound, 500_000);
            eprintln!(
                "bound {bound}, scenario {}: {} executions, max {} steps, capped={}",
                s.name, ex.executions, ex.max_steps, ex.capped
            );
            assert!(
                ex.counterexample.is_none(),
                "{} at bound {bound}: {:?}",
                s.name,
                ex.counterexample
            );
            assert!(
                !ex.capped,
                "{} at bound {bound}: exploration capped",
                s.name
            );
        }
    }
}

#[test]
fn torn_mutant_is_caught() {
    let ex = explore_ring(&torn_scenario(), 1, 500_000);
    eprintln!(
        "torn mutant: {} executions, max {} steps",
        ex.executions, ex.max_steps
    );
    let cx = ex.counterexample.expect("torn-read mutant must be caught");
    eprintln!("counterexample: {:?} — {}", cx.schedule, cx.message);
    assert!(cx.message.contains("torn read"), "{}", cx.message);
}

#[test]
fn no_stamp_mutant_is_caught_at_bound_3() {
    let ex = explore_ring(&no_stamp_scenario(), 3, 500_000);
    eprintln!(
        "no-stamp mutant: {} executions, max {} steps",
        ex.executions, ex.max_steps
    );
    let cx = ex
        .counterexample
        .expect("no-writing-stamp mutant must be caught");
    eprintln!("counterexample: {:?} — {}", cx.schedule, cx.message);
}

#[test]
fn verify_ring_pass_shapes() {
    let (diags, stats) = verify_ring(1, 500_000, RingMutation::None);
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(stats.scenarios, 5);
    let (diags, _) = verify_ring(1, 500_000, RingMutation::PublishBeforePayload);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "verify/ring");
}

#[test]
fn replaying_a_counterexample_schedule_is_deterministic() {
    let s = torn_scenario();
    let cx = explore_ring(&s, 1, 500_000)
        .counterexample
        .expect("mutant produces a counterexample");
    for _ in 0..3 {
        let replay = run_ring_once(&s, &cx.schedule, 1);
        let v = replay.violation.expect("replay reproduces the violation");
        assert_eq!(v, cx.message, "replay diverged");
    }
}
