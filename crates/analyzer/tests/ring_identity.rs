//! Bit-identity between the event ring's two atomics backends: the
//! generic seqlock over [`StdAtomics`] (the shipped `EventBus`) and
//! over the model checker's [`ModelAtomics`] must execute the exact
//! same op sequence to the exact same observable results — proving the
//! genericization changed nothing on the real-atomics path, down to
//! NaN payload bit patterns.

use ahbpower::telemetry::{Atomics, Event, EventBus, EventKind, GenericEventBus, RingMutation};
use ahbpower_analyzer::verify::sched::{ModelAtomics, Sched};

/// A deterministic op sequence exercising wraparound, batches, odd
/// float bit patterns, the disabled gate, and incremental reads.
fn drive<A: Atomics>(bus: &GenericEventBus<A>) -> Vec<(Vec<Event>, u64, u64, u64)> {
    let mut observed: Vec<(Vec<Event>, u64, u64, u64)> = Vec::new();
    fn record(observed: &mut Vec<(Vec<Event>, u64, u64, u64)>, b: ahbpower::telemetry::EventBatch) {
        observed.push((b.events.clone(), b.next, b.dropped, b.published));
    }

    bus.set_enabled(true);
    let nan = f64::from_bits(0x7ff8_0000_dead_beef);
    for i in 0..6u64 {
        bus.publish(Event {
            seq: 0,
            kind: EventKind::TxnComplete,
            slice: i,
            txn: i,
            window: i * 3,
            cycle: 100 + i,
            tag: i as u32 % 3,
            a: if i % 2 == 0 { nan } else { -0.0 },
            b: i as f64 / 3.0,
        });
    }
    record(&mut observed, bus.read_since(0, 16));

    let batch: Vec<Event> = (0..5u64)
        .map(|i| Event {
            seq: 0,
            kind: EventKind::SliceEnd,
            slice: 10 + i,
            txn: 0,
            window: i,
            cycle: 200 + i,
            tag: 7,
            a: f64::INFINITY,
            b: f64::MIN_POSITIVE,
        })
        .collect();
    bus.publish_batch(&batch);
    record(&mut observed, bus.read_since(0, 16));

    bus.set_enabled(false);
    bus.publish(Event {
        seq: 0,
        kind: EventKind::TxnComplete,
        slice: 99,
        txn: 99,
        window: 99,
        cycle: 99,
        tag: 9,
        a: 0.0,
        b: 0.0,
    });
    bus.set_enabled(true);
    let cursor = observed.last().map(|(_, next, _, _)| *next).unwrap_or(0);
    record(&mut observed, bus.read_since(cursor, 2));
    record(&mut observed, bus.read_since(cursor, 16));
    observed
}

#[test]
fn std_and_model_backends_are_bit_identical() {
    let std_bus = EventBus::for_verification(4, RingMutation::None);
    let std_obs = drive(&std_bus);

    // Model cells only exist inside a scheduler context; a 0-worker
    // schedule runs every op on the main thread, unscheduled.
    let sched = Sched::new(1, &[], 0, false);
    sched.enter_main();
    let model_bus = GenericEventBus::<ModelAtomics>::for_verification(4, RingMutation::None);
    let model_obs = drive(&model_bus);
    Sched::exit_main();

    assert_eq!(std_obs.len(), model_obs.len());
    for (i, (s, m)) in std_obs.iter().zip(&model_obs).enumerate() {
        assert_eq!(s.1, m.1, "cursor after read {i}");
        assert_eq!(s.2, m.2, "dropped after read {i}");
        assert_eq!(s.3, m.3, "published after read {i}");
        assert_eq!(s.0.len(), m.0.len(), "event count in read {i}");
        for (se, me) in s.0.iter().zip(&m.0) {
            assert_eq!(se.seq, me.seq);
            assert_eq!(se.kind, me.kind);
            assert_eq!(se.slice, me.slice);
            assert_eq!(se.txn, me.txn);
            assert_eq!(se.window, me.window);
            assert_eq!(se.cycle, me.cycle);
            assert_eq!(se.tag, me.tag);
            assert_eq!(
                se.a.to_bits(),
                me.a.to_bits(),
                "payload a bits must match exactly (NaN payloads included)"
            );
            assert_eq!(se.b.to_bits(), me.b.to_bits());
        }
    }
    assert_eq!(std_bus.capacity(), 4);
    assert_eq!(model_bus.capacity(), 4);
}
