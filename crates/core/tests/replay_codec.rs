//! Property tests for the activity-trace codec (ISSUE 7): recorded
//! traces round-trip through the on-disk format losslessly for arbitrary
//! bus activity, truncations always surface as clean [`TraceError`]s,
//! and `from_bytes` never panics on arbitrary input.

use ahbpower::{ActivityMode, ActivityRecorder, ActivityTrace, AnalysisConfig, Instruction};
use ahbpower_ahb::{BusSnapshot, HBurst, HResp, HSize, HTrans, MasterId};
use proptest::prelude::*;

/// One generated cycle of bus activity: everything the recorder taps.
#[derive(Debug, Clone)]
struct CycleSpec {
    haddr: u32,
    hwdata: u32,
    hrdata: u32,
    hbusreq: u32,
    hsel: u32,
    master: u8,
    htrans: u8,
    hresp: u8,
    hwrite: bool,
    instr: u8,
}

fn snapshot(c: &CycleSpec) -> BusSnapshot {
    const TRANS: [HTrans; 4] = [HTrans::Idle, HTrans::Busy, HTrans::NonSeq, HTrans::Seq];
    const RESPS: [HResp; 4] = [HResp::Okay, HResp::Error, HResp::Retry, HResp::Split];
    BusSnapshot {
        cycle: 0,
        haddr: c.haddr,
        htrans: TRANS[usize::from(c.htrans) % TRANS.len()],
        hwrite: c.hwrite,
        hsize: HSize::Word,
        hburst: HBurst::Single,
        hwdata: c.hwdata,
        hrdata: c.hrdata,
        hready: true,
        hresp: RESPS[usize::from(c.hresp) % RESPS.len()],
        hmaster: MasterId(c.master),
        hmastlock: false,
        hbusreq: c.hbusreq,
        hgrant: 1u32 << c.master,
        hsel: c.hsel,
    }
}

fn instruction(pick: u8) -> Instruction {
    const MODES: [ActivityMode; 4] = [
        ActivityMode::Idle,
        ActivityMode::IdleHo,
        ActivityMode::Read,
        ActivityMode::Write,
    ];
    Instruction::new(
        MODES[usize::from(pick >> 2) % MODES.len()],
        MODES[usize::from(pick) % MODES.len()],
    )
}

fn cycle_strategy() -> impl Strategy<Value = CycleSpec> {
    (
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
        ),
        0u8..3,
        any::<u8>(),
        any::<u8>(),
        any::<bool>(),
        any::<u8>(),
    )
        .prop_map(
            |((haddr, hwdata, hrdata, hbusreq, hsel), master, htrans, hresp, hwrite, instr)| {
                CycleSpec {
                    haddr,
                    hwdata,
                    hrdata,
                    hbusreq,
                    hsel,
                    master,
                    htrans,
                    hresp,
                    hwrite,
                    instr,
                }
            },
        )
}

fn record(cycles: &[CycleSpec], live_total_j: f64) -> ActivityTrace {
    let mut r = ActivityRecorder::new(&AnalysisConfig::paper_testbench());
    for c in cycles {
        r.record(&snapshot(c), instruction(c.instr));
    }
    let mut t = r.finish();
    t.live_total_j = live_total_j;
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn trace_round_trips_for_arbitrary_activity(
        cycles in prop::collection::vec(cycle_strategy(), 0..200),
        live in -1.0e-3f64..1.0e-3,
    ) {
        let trace = record(&cycles, live);
        prop_assert_eq!(trace.cycles(), cycles.len() as u64);
        let bytes = trace.to_bytes();
        let back = ActivityTrace::from_bytes(&bytes);
        prop_assert_eq!(back, Ok(trace));
    }

    #[test]
    fn truncated_traces_error_cleanly(
        cycles in prop::collection::vec(cycle_strategy(), 1..64),
        frac in 0.0f64..1.0,
    ) {
        let bytes = record(&cycles, 1.0e-9).to_bytes();
        // Any strict prefix must decode to an error, never a panic and
        // never a silently-shorter trace.
        let len = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(ActivityTrace::from_bytes(&bytes[..len]).is_err());
    }

    #[test]
    fn arbitrary_bytes_never_panic(raw in prop::collection::vec(any::<u8>(), 0..512)) {
        // Random input is overwhelmingly rejected; the contract under
        // test is "clean result, no panic" either way.
        let _ = ActivityTrace::from_bytes(&raw);
    }

    #[test]
    fn payload_bit_flips_are_detected(
        cycles in prop::collection::vec(cycle_strategy(), 1..64),
        byte_pick in any::<usize>(),
        bit in 0u8..8,
    ) {
        let bytes = record(&cycles, 1.0e-9).to_bytes();
        let header_len = bytes.len() - payload_len(&cycles);
        let mut flipped = bytes.clone();
        let idx = header_len + byte_pick % (bytes.len() - header_len);
        flipped[idx] ^= 1 << bit;
        // The FNV checksum covers every payload byte.
        prop_assert!(ActivityTrace::from_bytes(&flipped).is_err());
    }
}

/// Serialized payload size of `cycles`, derived by re-encoding: the
/// header is everything before it.
fn payload_len(cycles: &[CycleSpec]) -> usize {
    let empty = record(&[], 1.0e-9).to_bytes().len();
    record(cycles, 1.0e-9).to_bytes().len() - empty
}
