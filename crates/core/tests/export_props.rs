//! Property tests for the exporters' escaping: Prometheus label escapes
//! and the JSON string escaper the JSONL/event writers share.

use ahbpower::telemetry::{json_escape, prom_escape_label, prom_unescape_label};
use proptest::prelude::*;

/// Palette biased toward the three escaped characters plus the letters
/// that make `\n`-lookalike sequences (`n` after a literal backslash).
fn palette(idx: u8) -> char {
    match idx {
        0 => '\\',
        1 => '"',
        2 => '\n',
        3 => 'n',
        4 => 'a',
        _ => ' ',
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn escape_then_unescape_is_identity(
        raw in prop::collection::vec(0u8..6, 0..32)
    ) {
        let raw: String = raw.into_iter().map(palette).collect();
        let escaped = prom_escape_label(&raw);
        prop_assert!(!escaped.contains('\n'), "escaped label must be single-line");
        prop_assert_eq!(prom_unescape_label(&escaped), raw);
    }

    #[test]
    fn escaping_is_injective(
        a in prop::collection::vec(0u8..6, 0..16),
        b in prop::collection::vec(0u8..6, 0..16)
    ) {
        let a: String = a.into_iter().map(palette).collect();
        let b: String = b.into_iter().map(palette).collect();
        if a != b {
            prop_assert_ne!(prom_escape_label(&a), prom_escape_label(&b));
        }
    }

    #[test]
    fn json_escape_emits_no_raw_specials(
        raw in prop::collection::vec(0u8..6, 0..48)
    ) {
        let raw: String = raw.into_iter().map(json_palette).collect();
        let escaped = json_escape(&raw);
        prop_assert!(
            !escaped.chars().any(|c| (c as u32) < 0x20),
            "no raw control characters may survive: {escaped:?}"
        );
        // Every quote and backslash must be escape syntax: strip valid
        // two-character escapes and nothing special may remain.
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                let next = chars.next();
                prop_assert!(
                    matches!(next, Some('"' | '\\' | 'n' | 'u')),
                    "dangling escape in {escaped:?}"
                );
            } else {
                prop_assert_ne!(c, '"', "unescaped quote in {:?}", &escaped);
            }
        }
    }

    #[test]
    fn json_escape_is_injective(
        a in prop::collection::vec(0u8..6, 0..24),
        b in prop::collection::vec(0u8..6, 0..24)
    ) {
        let a: String = a.into_iter().map(json_palette).collect();
        let b: String = b.into_iter().map(json_palette).collect();
        if a != b {
            prop_assert_ne!(json_escape(&a), json_escape(&b));
        }
    }
}

/// Palette for the JSON escaper: its three named escapes, another
/// control character (tab goes through the `\u00XX` path), and the
/// letters that build escape lookalikes.
fn json_palette(idx: u8) -> char {
    match idx {
        0 => '"',
        1 => '\\',
        2 => '\n',
        3 => '\t',
        4 => 'n',
        _ => 'u',
    }
}
