//! Property tests for the Prometheus exporter's label escaping.

use ahbpower::telemetry::{prom_escape_label, prom_unescape_label};
use proptest::prelude::*;

/// Palette biased toward the three escaped characters plus the letters
/// that make `\n`-lookalike sequences (`n` after a literal backslash).
fn palette(idx: u8) -> char {
    match idx {
        0 => '\\',
        1 => '"',
        2 => '\n',
        3 => 'n',
        4 => 'a',
        _ => ' ',
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn escape_then_unescape_is_identity(
        raw in prop::collection::vec(0u8..6, 0..32)
    ) {
        let raw: String = raw.into_iter().map(palette).collect();
        let escaped = prom_escape_label(&raw);
        prop_assert!(!escaped.contains('\n'), "escaped label must be single-line");
        prop_assert_eq!(prom_unescape_label(&escaped), raw);
    }

    #[test]
    fn escaping_is_injective(
        a in prop::collection::vec(0u8..6, 0..16),
        b in prop::collection::vec(0u8..6, 0..16)
    ) {
        let a: String = a.into_iter().map(palette).collect();
        let b: String = b.into_iter().map(palette).collect();
        if a != b {
            prop_assert_ne!(prom_escape_label(&a), prom_escape_label(&b));
        }
    }
}
