//! The power observatory: bounded, multi-resolution retention of the
//! per-window power history — the paper's primary artifact — so hours
//! of serve time stay queryable in a fixed memory budget.
//!
//! Every closed detection window contributes one raw sample per series
//! (total energy, predicted baseline, per-master and per-block energy,
//! transaction count, anomaly flag). Raw samples cascade into 10× and
//! 100× downsampled rings, each bucket carrying `{min, max, sum, count,
//! last}` aggregates. A raw value is folded into all three levels at
//! ingest, in the same order, so sums agree across levels to float
//! rounding (the workspace pins 1e-9 relative) and coarser levels always
//! retain at least as much history as finer ones.
//!
//! The per-cycle ingest path ([`Observatory::observe_cycle`]) and the
//! per-window close path ([`Observatory::close_window`]) are
//! allocation-free: all ring storage is preallocated flat arrays, and a
//! window close touches a constant number of slots (one per level).
//! Queries ([`Observatory::query`]) and snapshots
//! ([`Observatory::to_jsonl`]) allocate freely — they run on the serve
//! HTTP thread or offline, never in the simulation hot loop.

use std::fmt::Write as _;

use super::anomaly::WindowVerdict;
use crate::macromodel::BlockEnergy;
use crate::model::SubBlock;

/// Downsampling factor of each retention level: raw, 10×, 100×.
pub const OBSERVATORY_LEVEL_FACTORS: [u64; 3] = [1, 10, 100];

/// Default ring capacity (buckets per level). At the default 1 000-cycle
/// window this retains ~1M cycles raw, ~10M at 10× and ~100M at 100×.
pub const DEFAULT_OBSERVATORY_CAPACITY: usize = 1_024;

/// The fixed scalar series every observatory carries, ahead of the
/// per-master and per-block series.
const FIXED_SERIES: [&str; 4] = ["energy", "predicted", "txns", "anomalies"];

/// Sentinel bucket id marking an empty ring slot.
const EMPTY: u64 = u64::MAX;

/// Tuning knobs for the [`Observatory`]. The window length is not here:
/// it is inherited from the anomaly detector's window (or the default)
/// by [`crate::telemetry::Telemetry`], so window ids line up across the
/// detector, the event ring and the observatory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservatoryConfig {
    /// Ring capacity in buckets, per level (clamped to ≥ 16).
    pub capacity: usize,
}

impl Default for ObservatoryConfig {
    fn default() -> Self {
        ObservatoryConfig {
            capacity: DEFAULT_OBSERVATORY_CAPACITY,
        }
    }
}

impl ObservatoryConfig {
    /// Sets the per-level ring capacity (clamped to ≥ 16).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(16);
        self
    }
}

/// One retention level: `capacity` bucket slots, each aggregating
/// `factor` consecutive raw windows across every series. Aggregate
/// arrays are flat (`slot * n_series + series`) so the whole level is a
/// handful of contiguous allocations made once at construction.
#[derive(Debug, Clone, PartialEq)]
struct Level {
    factor: u64,
    /// Bucket id per slot ([`EMPTY`] when the slot has never been used).
    ids: Vec<u64>,
    /// Raw windows folded into the slot so far.
    windows: Vec<u32>,
    /// First cycle of the bucket's first ingested window.
    start_cycle: Vec<u64>,
    min: Vec<f64>,
    max: Vec<f64>,
    sum: Vec<f64>,
    last: Vec<f64>,
    /// Buckets ever opened (the downsample-cascade counter; buckets
    /// beyond `capacity` evicted an older one).
    opened: u64,
}

impl Level {
    fn new(factor: u64, capacity: usize, n_series: usize) -> Self {
        Level {
            factor,
            ids: vec![EMPTY; capacity],
            windows: vec![0; capacity],
            start_cycle: vec![0; capacity],
            min: vec![0.0; capacity * n_series],
            max: vec![0.0; capacity * n_series],
            sum: vec![0.0; capacity * n_series],
            last: vec![0.0; capacity * n_series],
            opened: 0,
        }
    }

    /// Occupied slots (equals `opened.min(capacity)` by construction,
    /// but counted directly so the invariant is checkable).
    fn occupancy(&self) -> usize {
        self.ids.iter().filter(|&&id| id != EMPTY).count()
    }
}

/// One bucket of one series, as returned by [`Observatory::query`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Bucket id at the selected level (`start_window / factor`).
    pub bucket: u64,
    /// First raw window the bucket covers (`bucket * factor`).
    pub start_window: u64,
    /// First cycle of the bucket's first ingested window.
    pub start_cycle: u64,
    /// Raw windows folded into the bucket so far.
    pub windows: u32,
    /// Minimum raw sample in the bucket.
    pub min: f64,
    /// Maximum raw sample in the bucket.
    pub max: f64,
    /// Sum of the raw samples in the bucket.
    pub sum: f64,
    /// Most recent raw sample in the bucket.
    pub last: f64,
}

/// A range query's answer: the resolution that was selected and the
/// retained buckets overlapping the requested window range, in order.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The series queried.
    pub series: String,
    /// Selected level index (0 = raw).
    pub level: usize,
    /// The level's downsampling factor.
    pub factor: u64,
    /// The requested range, echoed back.
    pub from: u64,
    /// Inclusive upper bound of the requested range.
    pub to: u64,
    /// The requested step, echoed back.
    pub step: u64,
    /// Retained buckets overlapping `[from, to]`, in bucket order.
    pub points: Vec<SeriesPoint>,
}

/// The multi-resolution time-series store. See the module docs for the
/// retention model; see [`crate::telemetry::Telemetry`] for how the
/// session feeds it.
#[derive(Debug, Clone, PartialEq)]
pub struct Observatory {
    capacity: usize,
    window_cycles: u64,
    n_masters: usize,
    series: Vec<String>,
    levels: Vec<Level>,
    // Per-window accumulators, reset at every window close.
    win_master: Vec<f64>,
    win_block: BlockEnergy,
    cycle_in_window: u64,
    cycles_total: u64,
    next_window: u64,
    windows_ingested: u64,
    last_txn_total: u64,
    /// Preallocated per-series scratch the close path writes the
    /// window's samples into before folding them into the levels.
    sample: Vec<f64>,
}

impl Observatory {
    /// Creates an observatory for a bus with `n_masters` masters, whose
    /// raw resolution is one sample per `window_cycles` cycles.
    pub fn new(cfg: ObservatoryConfig, n_masters: usize, window_cycles: u64) -> Self {
        let capacity = cfg.capacity.max(16);
        let mut series: Vec<String> = FIXED_SERIES.iter().map(|s| s.to_string()).collect();
        for m in 0..n_masters {
            series.push(format!("master:{m}"));
        }
        for b in SubBlock::ALL {
            series.push(format!("block:{}", b.name()));
        }
        let n_series = series.len();
        let levels = OBSERVATORY_LEVEL_FACTORS
            .iter()
            .map(|&f| Level::new(f, capacity, n_series))
            .collect();
        Observatory {
            capacity,
            window_cycles: window_cycles.max(1),
            n_masters,
            series,
            levels,
            win_master: vec![0.0; n_masters],
            win_block: BlockEnergy::default(),
            cycle_in_window: 0,
            cycles_total: 0,
            next_window: 0,
            windows_ingested: 0,
            last_txn_total: 0,
            sample: vec![0.0; n_series],
        }
    }

    /// The ring capacity in buckets, per level.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cycles per raw window.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// Every series name, in stable order: the fixed scalars, then
    /// `master:<i>`, then `block:<name>`.
    pub fn series_names(&self) -> &[String] {
        &self.series
    }

    /// Index of `name` in [`Observatory::series_names`].
    pub fn series_index(&self, name: &str) -> Option<usize> {
        self.series.iter().position(|s| s == name)
    }

    /// Raw windows ingested so far.
    pub fn windows_ingested(&self) -> u64 {
        self.windows_ingested
    }

    /// Occupied bucket slots at `level` (0 = raw).
    pub fn occupancy(&self, level: usize) -> usize {
        self.levels.get(level).map_or(0, Level::occupancy)
    }

    /// Buckets ever opened at `level` — the downsample-cascade counter
    /// for levels > 0.
    pub fn cascades(&self, level: usize) -> u64 {
        self.levels.get(level).map_or(0, |l| l.opened)
    }

    /// Feeds one cycle's per-block energy, attributed to `master`.
    /// Allocation-free; constant work per cycle.
    #[inline]
    pub fn observe_cycle(&mut self, master: usize, energy: &BlockEnergy) {
        self.win_block += *energy;
        if let Some(m) = self.win_master.get_mut(master) {
            *m += energy.total();
        }
        self.cycle_in_window += 1;
        self.cycles_total += 1;
    }

    /// Ingests the raw sample for a window the anomaly detector just
    /// closed. `txn_total` is the session's cumulative completed-
    /// transaction count; the observatory differences it into a
    /// per-window rate. Allocation-free; constant work per window.
    #[inline]
    pub fn close_window(&mut self, v: &WindowVerdict, txn_total: u64) {
        let flagged = if v.flagged.is_some() { 1.0 } else { 0.0 };
        self.ingest(
            v.window,
            v.start_cycle,
            v.measured_j,
            v.predicted_j,
            flagged,
            txn_total,
        );
    }

    /// Window close for sessions without an anomaly detector: once a
    /// window's worth of cycles has accumulated, ingests it with the
    /// measured energy standing in for the prediction. Returns `true`
    /// when a window closed. Allocation-free.
    #[inline]
    pub fn close_window_if_due(&mut self, txn_total: u64) -> bool {
        if self.cycle_in_window < self.window_cycles {
            return false;
        }
        let window = self.next_window;
        let start_cycle = self.cycles_total - self.cycle_in_window;
        let measured = self.win_block.total();
        self.ingest(window, start_cycle, measured, measured, 0.0, txn_total);
        true
    }

    /// Folds one raw window into all three levels and resets the
    /// per-window accumulators.
    fn ingest(
        &mut self,
        window: u64,
        start_cycle: u64,
        measured_j: f64,
        predicted_j: f64,
        flagged: f64,
        txn_total: u64,
    ) {
        let txns = txn_total.saturating_sub(self.last_txn_total);
        self.last_txn_total = txn_total;
        self.sample[0] = measured_j;
        self.sample[1] = predicted_j;
        self.sample[2] = txns as f64;
        self.sample[3] = flagged;
        let mut s = FIXED_SERIES.len();
        for m in 0..self.n_masters {
            self.sample[s] = self.win_master[m];
            s += 1;
        }
        self.sample[s] = self.win_block.dec;
        self.sample[s + 1] = self.win_block.m2s;
        self.sample[s + 2] = self.win_block.s2m;
        self.sample[s + 3] = self.win_block.arb;

        let n_series = self.sample.len();
        let capacity = self.capacity as u64;
        let sample = &self.sample;
        for level in &mut self.levels {
            let bucket = window / level.factor;
            let slot = (bucket % capacity) as usize;
            let base = slot * n_series;
            if level.ids[slot] != bucket {
                level.ids[slot] = bucket;
                level.windows[slot] = 0;
                level.start_cycle[slot] = start_cycle;
                level.opened += 1;
                for x in 0..n_series {
                    level.min[base + x] = f64::INFINITY;
                    level.max[base + x] = f64::NEG_INFINITY;
                    level.sum[base + x] = 0.0;
                    level.last[base + x] = 0.0;
                }
            }
            level.windows[slot] += 1;
            for (x, &v) in sample.iter().enumerate() {
                let i = base + x;
                if v < level.min[i] {
                    level.min[i] = v;
                }
                if v > level.max[i] {
                    level.max[i] = v;
                }
                level.sum[i] += v;
                level.last[i] = v;
            }
        }

        self.windows_ingested += 1;
        self.next_window = window + 1;
        for m in &mut self.win_master {
            *m = 0.0;
        }
        self.win_block = BlockEnergy::default();
        self.cycle_in_window = 0;
    }

    /// The level a query at `step` (raw windows per point) resolves to:
    /// the coarsest level whose factor does not exceed `step`. `step`
    /// 0 or 1 selects raw; 10–99 selects 10×; ≥ 100 selects 100×.
    pub fn select_level(step: u64) -> usize {
        let step = step.max(1);
        let mut chosen = 0;
        for (i, &f) in OBSERVATORY_LEVEL_FACTORS.iter().enumerate() {
            if f <= step {
                chosen = i;
            }
        }
        chosen
    }

    /// Answers a range query: all retained buckets of `series`
    /// overlapping raw windows `[from, to]`, at the resolution
    /// [`Observatory::select_level`] picks for `step`. `None` when the
    /// series is unknown.
    pub fn query(&self, series: &str, from: u64, to: u64, step: u64) -> Option<QueryResult> {
        let s = self.series_index(series)?;
        let level_idx = Self::select_level(step);
        let level = &self.levels[level_idx];
        let first = from / level.factor;
        let last = to / level.factor;
        let n_series = self.series.len();
        let mut hits: Vec<(u64, usize)> = level
            .ids
            .iter()
            .enumerate()
            .filter_map(|(slot, &id)| {
                (id != EMPTY && id >= first && id <= last).then_some((id, slot))
            })
            .collect();
        hits.sort_unstable();
        let points = hits
            .into_iter()
            .map(|(bucket, slot)| {
                let i = slot * n_series + s;
                SeriesPoint {
                    bucket,
                    start_window: bucket * level.factor,
                    start_cycle: level.start_cycle[slot],
                    windows: level.windows[slot],
                    min: level.min[i],
                    max: level.max[i],
                    sum: level.sum[i],
                    last: level.last[i],
                }
            })
            .collect();
        Some(QueryResult {
            series: series.to_string(),
            level: level_idx,
            factor: level.factor,
            from,
            to,
            step,
            points,
        })
    }

    /// Renders the full retained state as JSONL: a meta line naming the
    /// series and factors, then one line per retained bucket with the
    /// per-series aggregate arrays in series order. This is the
    /// `results/observatory.jsonl` snapshot format `repro query` reads.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"kind\":\"observatory\",\"version\":1,\"window_cycles\":{},\"capacity\":{},\"windows\":{},\"factors\":[",
            self.window_cycles, self.capacity, self.windows_ingested
        );
        for (i, f) in OBSERVATORY_LEVEL_FACTORS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{f}");
        }
        out.push_str("],\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{s}\"");
        }
        out.push_str("]}\n");
        let n_series = self.series.len();
        for (li, level) in self.levels.iter().enumerate() {
            let mut hits: Vec<(u64, usize)> = level
                .ids
                .iter()
                .enumerate()
                .filter_map(|(slot, &id)| (id != EMPTY).then_some((id, slot)))
                .collect();
            hits.sort_unstable();
            for (bucket, slot) in hits {
                let _ = write!(
                    out,
                    "{{\"level\":{li},\"factor\":{},\"bucket\":{bucket},\"start_window\":{},\"start_cycle\":{},\"windows\":{}",
                    level.factor,
                    bucket * level.factor,
                    level.start_cycle[slot],
                    level.windows[slot]
                );
                let base = slot * n_series;
                for (key, arr) in [
                    ("min", &level.min),
                    ("max", &level.max),
                    ("sum", &level.sum),
                    ("last", &level.last),
                ] {
                    let _ = write!(out, ",\"{key}\":[");
                    for x in 0..n_series {
                        if x > 0 {
                            out.push(',');
                        }
                        out.push_str(&num(arr[base + x]));
                    }
                    out.push(']');
                }
                out.push_str("}\n");
            }
        }
        out
    }
}

/// A JSON-safe float (non-finite values become `null`).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny observatory fed synthetic verdicts: 2 masters, 100-cycle
    /// windows, 16-bucket rings.
    fn small() -> Observatory {
        Observatory::new(ObservatoryConfig::default().with_capacity(16), 2, 100)
    }

    /// Feeds one full window of uniform per-cycle energy and closes it
    /// through the detector-verdict path.
    fn feed_window(obs: &mut Observatory, w: u64, per_cycle: f64, flagged: bool, txn_total: u64) {
        let e = BlockEnergy {
            dec: per_cycle * 0.1,
            m2s: per_cycle * 0.4,
            s2m: per_cycle * 0.3,
            arb: per_cycle * 0.2,
        };
        for c in 0..100u64 {
            obs.observe_cycle((c % 2) as usize, &e);
        }
        let measured = per_cycle * 100.0;
        let v = WindowVerdict {
            window: w,
            start_cycle: w * 100,
            measured_j: measured,
            predicted_j: measured * 0.99,
            flagged: flagged.then(|| crate::telemetry::AnomalyEvent {
                window: w,
                start_cycle: w * 100,
                measured_j: measured,
                predicted_j: measured * 0.99,
                deviation_pct: 10.0,
                z_score: 9.0,
            }),
            absorbed: !flagged,
        };
        obs.close_window(&v, txn_total);
    }

    #[test]
    fn series_layout_is_stable() {
        let obs = small();
        assert_eq!(
            obs.series_names(),
            &[
                "energy",
                "predicted",
                "txns",
                "anomalies",
                "master:0",
                "master:1",
                "block:dec",
                "block:m2s",
                "block:s2m",
                "block:arb"
            ]
        );
        assert_eq!(obs.series_index("energy"), Some(0));
        assert_eq!(obs.series_index("block:arb"), Some(9));
        assert_eq!(obs.series_index("bogus"), None);
    }

    #[test]
    fn level_selection_is_coarsest_not_exceeding_step() {
        assert_eq!(Observatory::select_level(0), 0);
        assert_eq!(Observatory::select_level(1), 0);
        assert_eq!(Observatory::select_level(9), 0);
        assert_eq!(Observatory::select_level(10), 1);
        assert_eq!(Observatory::select_level(99), 1);
        assert_eq!(Observatory::select_level(100), 2);
        assert_eq!(Observatory::select_level(u64::MAX), 2);
    }

    #[test]
    fn energy_is_conserved_across_levels() {
        let mut obs = small();
        let mut txns = 0;
        for w in 0..10 {
            txns += 7;
            feed_window(&mut obs, w, 1.0e-12 * (w + 1) as f64, false, txns);
        }
        let raw = obs.query("energy", 0, 9, 1).expect("known series");
        assert_eq!(raw.level, 0);
        assert_eq!(raw.points.len(), 10);
        let raw_sum: f64 = raw.points.iter().map(|p| p.sum).sum();
        let l1 = obs.query("energy", 0, 9, 10).expect("known series");
        assert_eq!(l1.level, 1);
        assert_eq!(l1.points.len(), 1, "10 raw windows fill one 10x bucket");
        assert_eq!(l1.points[0].windows, 10);
        assert!((l1.points[0].sum - raw_sum).abs() <= 1e-9 * raw_sum.abs());
        let l2 = obs.query("energy", 0, 9, 100).expect("known series");
        assert_eq!(l2.level, 2);
        assert!((l2.points[0].sum - raw_sum).abs() <= 1e-9 * raw_sum.abs());
        // Min/max bracket the raw extremes exactly (same comparisons).
        let raw_min = raw
            .points
            .iter()
            .map(|p| p.min)
            .fold(f64::INFINITY, f64::min);
        let raw_max = raw
            .points
            .iter()
            .map(|p| p.max)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(l1.points[0].min, raw_min);
        assert_eq!(l1.points[0].max, raw_max);
        // txns differenced into per-window counts: 7 each, 70 total.
        let t = obs.query("txns", 0, 9, 100).expect("known series");
        assert_eq!(t.points[0].sum, 70.0);
    }

    #[test]
    fn anomaly_flags_and_masters_flow_into_series() {
        let mut obs = small();
        feed_window(&mut obs, 0, 2.0e-12, false, 3);
        feed_window(&mut obs, 1, 2.0e-12, true, 6);
        let a = obs.query("anomalies", 0, 1, 1).expect("known series");
        assert_eq!(a.points.len(), 2);
        assert_eq!(a.points[0].sum, 0.0);
        assert_eq!(a.points[1].sum, 1.0);
        // Both masters saw 50 cycles each of the uniform energy.
        let m0 = obs.query("master:0", 0, 1, 1).expect("known series");
        let m1 = obs.query("master:1", 0, 1, 1).expect("known series");
        assert!(m0.points[0].sum > 0.0);
        assert_eq!(m0.points[0].sum, m1.points[0].sum);
        // Block split sums back to the energy total.
        let total: f64 = ["block:dec", "block:m2s", "block:s2m", "block:arb"]
            .iter()
            .map(|s| obs.query(s, 0, 0, 1).expect("known series").points[0].sum)
            .sum();
        let e = obs.query("energy", 0, 0, 1).expect("known series");
        assert!((total - e.points[0].sum).abs() <= 1e-9 * e.points[0].sum);
    }

    #[test]
    fn eviction_keeps_coarser_levels_covering_raw() {
        let mut obs = small();
        // 40 windows into 16 raw slots: raw retains the last 16 windows,
        // 10x retains buckets 0..=3 (all fit), 100x one bucket.
        for w in 0..40 {
            feed_window(&mut obs, w, 1.0e-12, false, w * 5);
        }
        assert_eq!(obs.windows_ingested(), 40);
        assert_eq!(obs.occupancy(0), 16);
        assert_eq!(obs.occupancy(1), 4);
        assert_eq!(obs.occupancy(2), 1);
        assert_eq!(obs.cascades(0), 40);
        assert_eq!(obs.cascades(1), 4);
        assert_eq!(obs.cascades(2), 1);
        let raw = obs.query("energy", 0, 39, 1).expect("known series");
        assert_eq!(raw.points.len(), 16);
        assert_eq!(raw.points[0].start_window, 24, "oldest evicted");
        // Every retained raw window is covered by a retained 10x bucket.
        let l1 = obs.query("energy", 0, 39, 10).expect("known series");
        for p in &raw.points {
            assert!(
                l1.points
                    .iter()
                    .any(|b| b.start_window <= p.start_window
                        && p.start_window < b.start_window + 10),
                "raw window {} uncovered at 10x",
                p.start_window
            );
        }
    }

    #[test]
    fn plain_window_close_matches_detectorless_sessions() {
        let mut obs = small();
        let e = BlockEnergy {
            dec: 1.0e-13,
            m2s: 1.0e-13,
            s2m: 1.0e-13,
            arb: 1.0e-13,
        };
        for _ in 0..99 {
            obs.observe_cycle(0, &e);
            assert!(!obs.close_window_if_due(0));
        }
        obs.observe_cycle(0, &e);
        assert!(obs.close_window_if_due(4));
        assert_eq!(obs.windows_ingested(), 1);
        let q = obs.query("energy", 0, 0, 1).expect("known series");
        assert_eq!(q.points.len(), 1);
        // Predicted mirrors measured without a detector.
        let p = obs.query("predicted", 0, 0, 1).expect("known series");
        assert_eq!(q.points[0].sum, p.points[0].sum);
        assert_eq!(
            obs.query("txns", 0, 0, 1).expect("known series").points[0].sum,
            4.0
        );
    }

    #[test]
    fn jsonl_snapshot_has_meta_and_bucket_lines() {
        let mut obs = small();
        for w in 0..3 {
            feed_window(&mut obs, w, 1.5e-12, false, w + 1);
        }
        let out = obs.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("{\"kind\":\"observatory\",\"version\":1"));
        assert!(lines[0].contains("\"factors\":[1,10,100]"));
        assert!(lines[0].contains("\"series\":[\"energy\",\"predicted\""));
        // 3 raw buckets + 1 at 10x + 1 at 100x.
        assert_eq!(lines.len(), 1 + 3 + 1 + 1);
        assert!(lines[1].contains("\"level\":0,\"factor\":1,\"bucket\":0"));
        assert!(lines.last().expect("bucket lines").contains("\"level\":2"));
    }

    #[test]
    fn query_range_filters_buckets() {
        let mut obs = small();
        for w in 0..12 {
            feed_window(&mut obs, w, 1.0e-12, false, 0);
        }
        let q = obs.query("energy", 3, 5, 1).expect("known series");
        assert_eq!(
            q.points.iter().map(|p| p.start_window).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        let empty = obs.query("energy", 100, 200, 1).expect("known series");
        assert!(empty.points.is_empty());
        assert!(obs.query("nope", 0, 10, 1).is_none());
    }
}
