//! On-line energy anomaly detection: EWMA + windowed z-score over the
//! residual between measured window energy and the macromodel-predicted
//! baseline for the window's instruction mix.
//!
//! The detector learns per-instruction mean energies during a warmup
//! phase, then predicts each window's energy as `Σ countᵢ × meanᵢ` and
//! tracks the relative residual `(measured − predicted) / predicted`
//! with an exponentially weighted mean and variance. A window whose
//! residual z-score exceeds the threshold *and* whose deviation exceeds
//! a minimum percentage is flagged as an [`AnomalyEvent`]; anomalous
//! windows do not update the learned baseline or the residual
//! statistics, so a sustained drift keeps firing instead of being
//! absorbed.
//!
//! The injection hook that makes this testable end-to-end is
//! [`crate::PowerSession::scale_model_block`]: scaling one sub-block's
//! coefficients mid-run shifts measured energy away from the learned
//! baseline without touching the instruction mix.

use crate::instruction::{Instruction, INSTRUCTION_COUNT};

/// Tuning knobs for the [`AnomalyDetector`]. The defaults flag a
/// sustained ≥5% energy shift within a couple of windows while staying
/// silent on the natural window-to-window variation of the paper
/// testbench and SoC scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyConfig {
    /// Cycles per detection window.
    pub window_cycles: u64,
    /// Windows spent learning the per-instruction baseline and priming
    /// the residual statistics before any window can be flagged.
    pub warmup_windows: u64,
    /// EWMA smoothing factor for the residual mean/variance (0 < α ≤ 1).
    pub ewma_alpha: f64,
    /// Flag when `|z| > z_threshold` (and the deviation gate passes).
    pub z_threshold: f64,
    /// Ignore windows deviating less than this percentage from the
    /// prediction, whatever their z-score — guards against a tiny
    /// variance making noise look significant.
    pub min_deviation_pct: f64,
    /// Lower bound on the residual standard deviation used in the
    /// z-score denominator (relative units; 0.01 = 1%).
    pub sigma_floor: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            window_cycles: 1_000,
            warmup_windows: 8,
            ewma_alpha: 0.2,
            z_threshold: 6.0,
            min_deviation_pct: 5.0,
            sigma_floor: 0.01,
        }
    }
}

impl AnomalyConfig {
    /// Sets the detection window length in cycles (clamped to ≥ 1).
    pub fn with_window_cycles(mut self, cycles: u64) -> Self {
        self.window_cycles = cycles.max(1);
        self
    }

    /// Sets the number of warmup windows (clamped to ≥ 1).
    pub fn with_warmup_windows(mut self, windows: u64) -> Self {
        self.warmup_windows = windows.max(1);
        self
    }

    /// Sets the z-score threshold.
    pub fn with_z_threshold(mut self, z: f64) -> Self {
        self.z_threshold = z;
        self
    }

    /// Sets the minimum deviation percentage gate.
    pub fn with_min_deviation_pct(mut self, pct: f64) -> Self {
        self.min_deviation_pct = pct;
        self
    }
}

/// One flagged window: the measurement, the prediction it violated, and
/// the strength of the violation.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyEvent {
    /// Zero-based index of the flagged window.
    pub window: u64,
    /// First cycle of the flagged window.
    pub start_cycle: u64,
    /// Measured window energy, joules.
    pub measured_j: f64,
    /// Predicted window energy from the learned baseline, joules.
    pub predicted_j: f64,
    /// Signed deviation, percent of the prediction.
    pub deviation_pct: f64,
    /// Residual z-score against the EWMA statistics.
    pub z_score: f64,
}

impl AnomalyEvent {
    /// Renders the event as one JSONL line (matching the telemetry
    /// exporter's event-stream format).
    pub fn to_jsonl_line(&self) -> String {
        format!(
            "{{\"event\":\"anomaly\",\"window\":{},\"start_cycle\":{},\
             \"measured_j\":{},\"predicted_j\":{},\"deviation_pct\":{},\
             \"z_score\":{}}}",
            self.window,
            self.start_cycle,
            num(self.measured_j),
            num(self.predicted_j),
            num(self.deviation_pct),
            num(self.z_score),
        )
    }
}

/// A JSON-safe float (non-finite values become `null`).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A copyable snapshot of the detector's internal statistics, for
/// post-mortem bundles (the flight recorder) and live status surfaces.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorState {
    /// Closed (complete) windows so far.
    pub windows: u64,
    /// Clean windows absorbed into the learned baseline.
    pub baseline_updates: u64,
    /// Windows flagged so far.
    pub flagged: u64,
    /// EWMA mean of the relative residual.
    pub resid_mean: f64,
    /// EWMA variance of the relative residual.
    pub resid_var: f64,
    /// Whether the residual statistics have been primed by at least one
    /// clean window.
    pub resid_primed: bool,
}

/// The detector's full judgement of one closed window — what the event
/// bus publishes as `EnergyBooked` (always), `AnomalyFlagged` (when
/// [`WindowVerdict::flagged`] is set) and `BaselineUpdated` (when
/// [`WindowVerdict::absorbed`] is true).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowVerdict {
    /// Zero-based index of the closed window.
    pub window: u64,
    /// First cycle of the closed window.
    pub start_cycle: u64,
    /// Measured window energy, joules.
    pub measured_j: f64,
    /// Predicted window energy from the learned baseline, joules.
    pub predicted_j: f64,
    /// The anomaly event, when the window was flagged.
    pub flagged: Option<AnomalyEvent>,
    /// Whether the window was absorbed into the learned baseline
    /// (clean windows are; flagged windows never are).
    pub absorbed: bool,
}

/// Streaming detector fed one `(instruction, energy)` pair per cycle by
/// the telemetry layer.
///
/// # Examples
///
/// ```
/// use ahbpower::telemetry::{AnomalyConfig, AnomalyDetector};
/// use ahbpower::{ActivityMode, Instruction};
///
/// let cfg = AnomalyConfig::default().with_window_cycles(10).with_warmup_windows(2);
/// let mut det = AnomalyDetector::new(cfg);
/// let insn = Instruction::new(ActivityMode::Read, ActivityMode::Read);
/// // A steady stream never alarms.
/// for _ in 0..100 {
///     assert!(det.observe(insn, 1.0e-12).is_none());
/// }
/// assert!(det.events().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct AnomalyDetector {
    cfg: AnomalyConfig,
    // Learned baseline: cumulative clean-window energy and count per
    // instruction.
    base_energy: [f64; INSTRUCTION_COUNT],
    base_count: [u64; INSTRUCTION_COUNT],
    // Current window accumulators.
    win_count: [u64; INSTRUCTION_COUNT],
    win_energy: [f64; INSTRUCTION_COUNT],
    cycle_in_window: u64,
    window_index: u64,
    cycles_total: u64,
    // EWMA of the relative residual.
    resid_mean: f64,
    resid_var: f64,
    resid_primed: bool,
    baseline_updates: u64,
    events: Vec<AnomalyEvent>,
}

impl AnomalyDetector {
    /// Creates a detector with the given configuration.
    pub fn new(cfg: AnomalyConfig) -> Self {
        AnomalyDetector {
            cfg,
            base_energy: [0.0; INSTRUCTION_COUNT],
            base_count: [0; INSTRUCTION_COUNT],
            win_count: [0; INSTRUCTION_COUNT],
            win_energy: [0.0; INSTRUCTION_COUNT],
            cycle_in_window: 0,
            window_index: 0,
            cycles_total: 0,
            resid_mean: 0.0,
            resid_var: 0.0,
            resid_primed: false,
            baseline_updates: 0,
            events: Vec::new(),
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &AnomalyConfig {
        &self.cfg
    }

    /// Feeds one cycle. Returns the anomaly event if this cycle closed a
    /// window that was flagged.
    #[inline]
    pub fn observe(&mut self, instruction: Instruction, joules: f64) -> Option<AnomalyEvent> {
        self.observe_verdict(instruction, joules)
            .and_then(|v| v.flagged)
    }

    /// Feeds one cycle. Returns the full [`WindowVerdict`] if this cycle
    /// closed a window — flagged or not — which is what the structured
    /// event bus consumes.
    #[inline]
    pub fn observe_verdict(
        &mut self,
        instruction: Instruction,
        joules: f64,
    ) -> Option<WindowVerdict> {
        let i = instruction.index();
        self.win_count[i] += 1;
        self.win_energy[i] += joules;
        self.cycle_in_window += 1;
        self.cycles_total += 1;
        if self.cycle_in_window >= self.cfg.window_cycles {
            return Some(self.close_window());
        }
        None
    }

    /// Closed (complete) windows so far.
    pub fn windows(&self) -> u64 {
        self.window_index
    }

    /// Total cycles fed, including any partial trailing window.
    pub fn cycles(&self) -> u64 {
        self.cycles_total
    }

    /// Every flagged window, in order.
    pub fn events(&self) -> &[AnomalyEvent] {
        &self.events
    }

    /// Clean windows absorbed into the learned baseline so far (flagged
    /// windows never update it).
    pub fn baseline_updates(&self) -> u64 {
        self.baseline_updates
    }

    /// The most recent flagged window, if any.
    pub fn last_event(&self) -> Option<&AnomalyEvent> {
        self.events.last()
    }

    /// A snapshot of the residual statistics and window counters, for
    /// post-mortem bundles and live status surfaces.
    pub fn state(&self) -> DetectorState {
        DetectorState {
            windows: self.window_index,
            baseline_updates: self.baseline_updates,
            flagged: self.events.len() as u64,
            resid_mean: self.resid_mean,
            resid_var: self.resid_var,
            resid_primed: self.resid_primed,
        }
    }

    /// Drops a partial trailing window (a fraction of a window has too
    /// little signal to judge). Call once at the end of a run.
    pub fn finish(&mut self) {
        self.win_count = [0; INSTRUCTION_COUNT];
        self.win_energy = [0.0; INSTRUCTION_COUNT];
        self.cycle_in_window = 0;
    }

    /// Predicted energy for the accumulated window. Instructions absent
    /// from the learned baseline contribute their measured energy, so a
    /// never-seen mix cannot alarm by itself.
    fn predict(&self) -> f64 {
        let mut predicted = 0.0;
        for i in 0..INSTRUCTION_COUNT {
            if self.win_count[i] == 0 {
                continue;
            }
            if self.base_count[i] > 0 {
                let mean = self.base_energy[i] / self.base_count[i] as f64;
                predicted += self.win_count[i] as f64 * mean;
            } else {
                predicted += self.win_energy[i];
            }
        }
        predicted
    }

    fn close_window(&mut self) -> WindowVerdict {
        let window = self.window_index;
        let start_cycle = self.cycles_total - self.cycle_in_window;
        let measured: f64 = self.win_energy.iter().sum();
        let predicted = self.predict();
        self.window_index += 1;

        let rel = if predicted > 0.0 {
            (measured - predicted) / predicted
        } else {
            0.0
        };
        let in_warmup = window < self.cfg.warmup_windows;
        let mut flagged = None;
        if !in_warmup && self.resid_primed {
            let sigma = self.resid_var.max(0.0).sqrt().max(self.cfg.sigma_floor);
            let z = (rel - self.resid_mean) / sigma;
            let deviation_pct = rel * 100.0;
            if z.abs() > self.cfg.z_threshold && deviation_pct.abs() >= self.cfg.min_deviation_pct {
                let event = AnomalyEvent {
                    window,
                    start_cycle,
                    measured_j: measured,
                    predicted_j: predicted,
                    deviation_pct,
                    z_score: z,
                };
                self.events.push(event.clone());
                flagged = Some(event);
            }
        }

        let absorbed = flagged.is_none();
        if absorbed {
            // Clean window: absorb it into the baseline and the residual
            // statistics. Flagged windows are deliberately excluded so a
            // sustained drift keeps alarming.
            for i in 0..INSTRUCTION_COUNT {
                self.base_energy[i] += self.win_energy[i];
                self.base_count[i] += self.win_count[i];
            }
            self.baseline_updates += 1;
            let a = self.cfg.ewma_alpha;
            if self.resid_primed {
                let diff = rel - self.resid_mean;
                let incr = a * diff;
                self.resid_mean += incr;
                self.resid_var = (1.0 - a) * (self.resid_var + diff * incr);
            } else {
                self.resid_mean = rel;
                self.resid_var = 0.0;
                self.resid_primed = true;
            }
        }

        self.win_count = [0; INSTRUCTION_COUNT];
        self.win_energy = [0.0; INSTRUCTION_COUNT];
        self.cycle_in_window = 0;
        WindowVerdict {
            window,
            start_cycle,
            measured_j: measured,
            predicted_j: predicted,
            flagged,
            absorbed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::ActivityMode;

    fn insn(from: ActivityMode, to: ActivityMode) -> Instruction {
        Instruction::new(from, to)
    }

    fn cfg() -> AnomalyConfig {
        AnomalyConfig::default()
            .with_window_cycles(100)
            .with_warmup_windows(3)
    }

    #[test]
    fn steady_stream_never_alarms() {
        let mut det = AnomalyDetector::new(cfg());
        let a = insn(ActivityMode::Read, ActivityMode::Read);
        let b = insn(ActivityMode::Read, ActivityMode::Write);
        for c in 0..5_000u64 {
            let (i, e) = if c % 3 == 0 {
                (a, 2.0e-12)
            } else {
                (b, 3.0e-12)
            };
            assert!(det.observe(i, e).is_none());
        }
        det.finish();
        assert!(det.events().is_empty());
        assert_eq!(det.windows(), 50);
    }

    #[test]
    fn small_noise_stays_silent() {
        let mut det = AnomalyDetector::new(cfg());
        let a = insn(ActivityMode::Write, ActivityMode::Write);
        for c in 0..10_000u64 {
            // ±2% deterministic ripple: below the 5% deviation gate.
            let ripple = 1.0 + 0.02 * ((c % 7) as f64 - 3.0) / 3.0;
            det.observe(a, 2.0e-12 * ripple);
        }
        det.finish();
        assert!(det.events().is_empty(), "{:?}", det.events());
    }

    #[test]
    fn step_change_is_flagged_within_one_window() {
        let mut det = AnomalyDetector::new(cfg());
        let a = insn(ActivityMode::Read, ActivityMode::Read);
        for _ in 0..1_000u64 {
            assert!(det.observe(a, 2.0e-12).is_none());
        }
        // Double the per-cycle energy: the very next closed window must fire.
        let mut first = None;
        for _ in 0..200u64 {
            if let Some(e) = det.observe(a, 4.0e-12) {
                first = Some(e);
                break;
            }
        }
        let e = first.expect("doubling energy must alarm");
        assert_eq!(e.window, 10, "first full window after the step");
        assert!(
            e.deviation_pct > 90.0,
            "deviation ~100%: {}",
            e.deviation_pct
        );
        assert!(e.z_score > 6.0);
        assert_eq!(det.last_event(), Some(&e));
    }

    #[test]
    fn sustained_drift_keeps_alarming() {
        let mut det = AnomalyDetector::new(cfg());
        let a = insn(ActivityMode::Read, ActivityMode::Read);
        for _ in 0..1_000u64 {
            det.observe(a, 2.0e-12);
        }
        for _ in 0..1_000u64 {
            det.observe(a, 3.0e-12);
        }
        det.finish();
        assert_eq!(
            det.events().len(),
            10,
            "anomalous windows must not be absorbed into the baseline"
        );
    }

    #[test]
    fn unseen_instruction_mix_does_not_alarm() {
        let mut det = AnomalyDetector::new(cfg());
        let a = insn(ActivityMode::Idle, ActivityMode::Idle);
        for _ in 0..1_000u64 {
            det.observe(a, 1.0e-12);
        }
        // A brand-new instruction dominates the next windows; with no
        // baseline for it, its energy is taken at face value.
        let b = insn(ActivityMode::Write, ActivityMode::Read);
        for _ in 0..500u64 {
            assert!(det.observe(b, 9.0e-12).is_none());
        }
        det.finish();
        assert!(det.events().is_empty());
    }

    #[test]
    fn partial_trailing_window_is_dropped() {
        let mut det = AnomalyDetector::new(cfg());
        let a = insn(ActivityMode::Read, ActivityMode::Read);
        for _ in 0..1_000u64 {
            det.observe(a, 2.0e-12);
        }
        // 50 cycles of doubled energy: only half a window, never judged.
        for _ in 0..50u64 {
            assert!(det.observe(a, 4.0e-12).is_none());
        }
        det.finish();
        assert!(det.events().is_empty());
        assert_eq!(det.windows(), 10);
        assert_eq!(det.cycles(), 1_050);
    }

    #[test]
    fn event_jsonl_line_is_valid_shape() {
        let e = AnomalyEvent {
            window: 12,
            start_cycle: 1_200,
            measured_j: 4.0e-9,
            predicted_j: 2.0e-9,
            deviation_pct: 100.0,
            z_score: 25.0,
        };
        let line = e.to_jsonl_line();
        assert!(line.starts_with("{\"event\":\"anomaly\",\"window\":12,"));
        assert!(line.contains("\"start_cycle\":1200"));
        assert!(line.ends_with('}'));
        let nan = AnomalyEvent {
            z_score: f64::NAN,
            ..e
        };
        assert!(nan.to_jsonl_line().contains("\"z_score\":null"));
    }

    #[test]
    fn verdicts_report_absorption_and_count_baseline_updates() {
        let mut det = AnomalyDetector::new(cfg());
        let a = insn(ActivityMode::Read, ActivityMode::Read);
        let mut verdicts = Vec::new();
        for _ in 0..1_000u64 {
            if let Some(v) = det.observe_verdict(a, 2.0e-12) {
                verdicts.push(v);
            }
        }
        assert_eq!(verdicts.len(), 10, "one verdict per closed window");
        assert!(verdicts.iter().all(|v| v.absorbed && v.flagged.is_none()));
        assert_eq!(verdicts[3].window, 3);
        assert_eq!(verdicts[3].start_cycle, 300);
        assert_eq!(det.baseline_updates(), 10);
        // A flagged window is reported but NOT absorbed.
        let mut flagged = None;
        for _ in 0..100u64 {
            if let Some(v) = det.observe_verdict(a, 4.0e-12) {
                flagged = Some(v);
            }
        }
        let v = flagged.expect("window closed");
        assert!(v.flagged.is_some());
        assert!(!v.absorbed);
        assert!(v.measured_j > v.predicted_j);
        assert_eq!(det.baseline_updates(), 10);
    }

    #[test]
    fn config_builders_clamp() {
        let c = AnomalyConfig::default()
            .with_window_cycles(0)
            .with_warmup_windows(0)
            .with_z_threshold(4.0)
            .with_min_deviation_pct(2.5);
        assert_eq!(c.window_cycles, 1);
        assert_eq!(c.warmup_windows, 1);
        assert_eq!(c.z_threshold, 4.0);
        assert_eq!(c.min_deviation_pct, 2.5);
    }
}
