//! Unified telemetry: a metrics registry, hot-loop spans, bus-performance
//! analyzers and JSONL/CSV/Prometheus exporters.
//!
//! Telemetry is **off by default** and opt-in at runtime through
//! [`TelemetryConfig`]: a disabled [`crate::PowerSession`] carries no
//! telemetry state at all and its hot loop is the same code path as before
//! this module existed (one `Option` discriminant test per run, not per
//! cycle). When enabled, the session feeds every [`BusSnapshot`] to a
//! [`BusPerfAnalyzer`] and times its own observer loop; at the end of the
//! run [`Telemetry::finalize`] folds the analyzers, the power FSM's
//! ledgers and any kernel profile into a [`MetricsRegistry`], which the
//! exporters render in three formats.
//!
//! ```
//! use ahbpower::telemetry::{Telemetry, TelemetryConfig};
//! use ahbpower::{AnalysisConfig, PowerSession};
//! use ahbpower_ahb::{AddressMap, AhbBusBuilder, MemorySlave, Op, ScriptedMaster};
//!
//! let cfg = AnalysisConfig::paper_testbench();
//! let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
//!     .master(Box::new(ScriptedMaster::new(vec![Op::write(0x0, 1), Op::read(0x0)])))
//!     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
//!     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
//!     .build()?;
//! let mut session =
//!     PowerSession::with_telemetry(&cfg, TelemetryConfig::enabled("doc_example"));
//! session.run(&mut bus, 50);
//! let telemetry = session.finish_telemetry().expect("telemetry was enabled");
//! assert!(telemetry.to_prometheus().contains("ahb_cycles_total 50"));
//! # Ok::<(), ahbpower_ahb::BuildBusError>(())
//! ```
//!
//! [`BusSnapshot`]: ahbpower_ahb::BusSnapshot

mod analyzers;
mod anomaly;
mod atomics;
mod events;
mod export;
mod observatory;
mod registry;
mod span;

pub use analyzers::{publish_bus_perf, publish_kernel, publish_power, publish_spans};
pub use anomaly::{AnomalyConfig, AnomalyDetector, AnomalyEvent, DetectorState, WindowVerdict};
pub use atomics::{AtomicBoolCell, AtomicU64Cell, Atomics, StdAtomics};
pub use events::{
    Event, EventBatch, EventBus, EventKind, EventsTap, GenericEventBus, RingMutation,
    DEFAULT_EVENT_CAPACITY,
};
pub use export::{
    events_to_jsonl, json_escape, prom_escape_label, prom_unescape_label, to_csv, to_folded,
    to_jsonl, to_prometheus, to_trace_events, ExportMeta, TraceEventMeta,
};
pub use observatory::{
    Observatory, ObservatoryConfig, QueryResult, SeriesPoint, DEFAULT_OBSERVATORY_CAPACITY,
    OBSERVATORY_LEVEL_FACTORS,
};
pub use registry::{
    is_valid_metric_name, sanitize_metric_name, Counter, CounterId, Gauge, GaugeId, Histogram,
    HistogramId, MetricMeta, MetricsRegistry,
};
pub use span::{SpanId, SpanSet};

use std::sync::Arc;
use std::time::Duration;

use ahbpower_ahb::{BusPerfAnalyzer, BusSnapshot};
use ahbpower_sim::{KernelProfile, KernelStats};

use crate::instruction::Instruction;
use crate::macromodel::BlockEnergy;
use crate::power_fsm::PowerFsm;

/// Runtime switchboard for the telemetry subsystem. Default: disabled.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Master switch; `false` means the session allocates no telemetry
    /// state whatsoever.
    pub enabled: bool,
    /// Scenario label stamped into exports.
    pub scenario: String,
    /// Workload seed stamped into exports.
    pub seed: u64,
    /// On-line anomaly detection; `None` (the default) runs none.
    pub anomaly: Option<AnomalyConfig>,
    /// Structured event ring this session publishes into; `None` (the
    /// default) attaches no event tap at all.
    pub events: Option<Arc<EventBus>>,
    /// Multi-resolution power-history retention; `None` (the default)
    /// retains nothing.
    pub observatory: Option<ObservatoryConfig>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            scenario: "default".to_string(),
            seed: 0,
            anomaly: None,
            events: None,
            observatory: None,
        }
    }
}

impl TelemetryConfig {
    /// An enabled configuration with the given scenario label.
    pub fn enabled(scenario: &str) -> Self {
        TelemetryConfig {
            enabled: true,
            scenario: scenario.to_string(),
            seed: 0,
            anomaly: None,
            events: None,
            observatory: None,
        }
    }

    /// Sets the workload seed stamped into exports.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables on-line anomaly detection with the given configuration.
    pub fn with_anomaly(mut self, cfg: AnomalyConfig) -> Self {
        self.anomaly = Some(cfg);
        self
    }

    /// Attaches a shared structured-event ring; the session's cycles,
    /// transactions, windows and anomalies are published into it as
    /// causally-linked [`Event`]s.
    pub fn with_events(mut self, bus: Arc<EventBus>) -> Self {
        self.events = Some(bus);
        self
    }

    /// Enables the multi-resolution power observatory. Its raw window
    /// length is inherited from the anomaly detector's window (or the
    /// default) so window ids line up across subsystems.
    pub fn with_observatory(mut self, cfg: ObservatoryConfig) -> Self {
        self.observatory = Some(cfg);
        self
    }
}

/// Live telemetry state for one analysis run: the bus-performance
/// analyzer fed per cycle, the span set timing the observer loop, and the
/// registry everything is published into at the end.
#[derive(Debug, Clone)]
pub struct Telemetry {
    config: TelemetryConfig,
    registry: MetricsRegistry,
    perf: BusPerfAnalyzer,
    spans: SpanSet,
    observe_span: SpanId,
    anomaly: Option<AnomalyDetector>,
    events: Option<EventsTap>,
    observatory: Option<Box<Observatory>>,
    finalized: bool,
}

impl Telemetry {
    /// Creates live telemetry for a bus with `n_masters` masters.
    pub fn new(config: TelemetryConfig, n_masters: usize) -> Self {
        let mut spans = SpanSet::new();
        let observe_span = spans.register("session_observe");
        let anomaly = config.anomaly.clone().map(AnomalyDetector::new);
        // Window ids in events must line up with the detector's windows;
        // without a detector, the tap falls back to the default window.
        let window_cycles = config.anomaly.as_ref().map_or_else(
            || AnomalyConfig::default().window_cycles,
            |a| a.window_cycles,
        );
        let events = config
            .events
            .clone()
            .map(|bus| EventsTap::new(bus, n_masters, window_cycles));
        let observatory = config
            .observatory
            .clone()
            .map(|o| Box::new(Observatory::new(o, n_masters, window_cycles)));
        Telemetry {
            config,
            registry: MetricsRegistry::new(),
            perf: BusPerfAnalyzer::new(n_masters),
            spans,
            observe_span,
            anomaly,
            events,
            observatory,
            finalized: false,
        }
    }

    /// The configuration this telemetry was created with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Feeds one cycle's wires to the bus-performance analyzer and, when
    /// an event ring is attached, the transaction-lifecycle event tap.
    #[inline]
    pub fn observe_bus(&mut self, snap: &BusSnapshot) {
        self.perf.observe(snap);
        if let Some(t) = &mut self.events {
            t.observe_bus(snap);
        }
    }

    /// Books one timed pass of the session's observer hot loop.
    #[inline]
    pub fn record_observe(&mut self, elapsed: Duration) {
        self.spans.record(self.observe_span, elapsed);
    }

    /// Feeds one cycle's instruction and per-block energy (attributed
    /// to `master`) to the anomaly detector and the observatory (each a
    /// no-op when not configured) and publishes any closed window's
    /// verdict into the event ring.
    #[inline]
    pub fn observe_power(&mut self, instruction: Instruction, energy: &BlockEnergy, master: usize) {
        let joules = energy.total();
        if let Some(o) = &mut self.observatory {
            o.observe_cycle(master, energy);
        }
        let txn_total = self.events.as_ref().map_or(0, EventsTap::transactions);
        match &mut self.anomaly {
            Some(d) => {
                if let Some(v) = d.observe_verdict(instruction, joules) {
                    if let Some(o) = &mut self.observatory {
                        o.close_window(&v, txn_total);
                    }
                    if let Some(t) = &mut self.events {
                        t.publish_window(&v);
                    }
                }
            }
            None => {
                if let Some(o) = &mut self.observatory {
                    o.close_window_if_due(txn_total);
                }
                if let Some(t) = &mut self.events {
                    t.observe_energy(joules);
                }
            }
        }
    }

    /// The anomaly detector (`None` when not configured).
    pub fn anomaly(&self) -> Option<&AnomalyDetector> {
        self.anomaly.as_ref()
    }

    /// The power observatory (`None` when not configured).
    pub fn observatory(&self) -> Option<&Observatory> {
        self.observatory.as_deref()
    }

    /// The structured-event tap (`None` when no ring is attached).
    pub fn events(&self) -> Option<&EventsTap> {
        self.events.as_ref()
    }

    /// Mutable event-tap access (e.g. to change the slice id).
    pub fn events_mut(&mut self) -> Option<&mut EventsTap> {
        self.events.as_mut()
    }

    /// Marks the start of workload slice `slice`: subsequent events
    /// carry its id and a `SliceStart` event is published. No-op without
    /// an event ring.
    pub fn begin_slice(&mut self, slice: u64) {
        if let Some(t) = &mut self.events {
            t.slice_start(slice);
        }
    }

    /// Marks the end of the current slice, stamping `energy_j` into a
    /// `SliceEnd` event. No-op without an event ring.
    pub fn end_slice(&mut self, energy_j: f64) {
        if let Some(t) = &mut self.events {
            t.slice_end(energy_j);
        }
    }

    /// The bus-performance analyzer.
    pub fn perf(&self) -> &BusPerfAnalyzer {
        &self.perf
    }

    /// The span set (register more spans for custom instrumentation).
    pub fn spans_mut(&mut self) -> &mut SpanSet {
        &mut self.spans
    }

    /// The metrics registry (populated by [`Telemetry::finalize`]).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Mutable registry access for publishing extra metrics.
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// Publishes a kernel run's statistics and optional wall-clock
    /// profile (see [`publish_kernel`]).
    pub fn record_kernel(
        &mut self,
        stats: &KernelStats,
        profile: Option<&KernelProfile>,
        process_names: &[&str],
    ) {
        publish_kernel(&mut self.registry, stats, profile, process_names);
        if let Some(t) = &mut self.events {
            t.publish_kernel(stats);
        }
    }

    /// Closes the analyzers and publishes everything into the registry.
    /// Idempotent: only the first call publishes.
    pub fn finalize(&mut self, fsm: &PowerFsm) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        self.perf.finish();
        publish_bus_perf(&mut self.registry, &self.perf);
        publish_power(&mut self.registry, fsm);
        publish_spans(&mut self.registry, &self.spans);
        if let Some(d) = &mut self.anomaly {
            d.finish();
            let windows = self.registry.counter(
                "energy_anomaly_windows_total",
                "Detection windows judged by the anomaly detector.",
                &[],
            );
            self.registry.add(windows, d.windows() as f64);
            let events = self.registry.counter(
                "energy_anomaly_events_total",
                "Windows flagged as energy anomalies.",
                &[],
            );
            self.registry.add(events, d.events().len() as f64);
            let updates = self.registry.counter(
                "energy_anomaly_baseline_updates_total",
                "Clean windows absorbed into the anomaly baseline.",
                &[],
            );
            self.registry.add(updates, d.baseline_updates() as f64);
            if let Some(last) = d.last_event() {
                let g = self.registry.gauge(
                    "energy_anomaly_last_deviation_pct",
                    "Deviation of the most recent flagged window, percent.",
                    &[],
                );
                self.registry.set(g, last.deviation_pct);
                let g = self.registry.gauge(
                    "energy_anomaly_last_window",
                    "Index of the most recent flagged window.",
                    &[],
                );
                self.registry.set(g, last.window as f64);
            }
        }
        if let Some(o) = &self.observatory {
            let c = self.registry.counter(
                "observatory_windows_total",
                "Raw windows ingested by the power observatory.",
                &[],
            );
            self.registry.add(c, o.windows_ingested() as f64);
            for level in 0..OBSERVATORY_LEVEL_FACTORS.len() {
                let label = format!("{level}");
                let labels = [("level", label.as_str())];
                let g = self.registry.gauge(
                    "observatory_ring_occupancy",
                    "Occupied observatory ring buckets per level.",
                    &labels,
                );
                self.registry.set(g, o.occupancy(level) as f64);
                let c = self.registry.counter(
                    "observatory_cascade_buckets_total",
                    "Buckets opened per observatory level (downsample cascades).",
                    &labels,
                );
                self.registry.add(c, o.cascades(level) as f64);
            }
        }
        if let Some(t) = &self.events {
            let bus = t.bus();
            let c = self.registry.counter(
                "events_published_total",
                "Structured events published into the shared ring.",
                &[],
            );
            self.registry.add(c, bus.published() as f64);
            let c = self.registry.counter(
                "events_transactions_total",
                "Transactions assigned causal ids by the event tap.",
                &[],
            );
            self.registry.add(c, t.transactions() as f64);
        }
    }

    fn export_meta(&self) -> ExportMeta {
        ExportMeta {
            scenario: self.config.scenario.clone(),
            cycles: self.perf.cycles(),
            seed: self.config.seed,
        }
    }

    /// Renders the registry as a JSONL event stream. Flagged anomaly
    /// windows are appended as `{"event":"anomaly",...}` lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = to_jsonl(&self.registry, &self.export_meta());
        if let Some(d) = &self.anomaly {
            for event in d.events() {
                out.push_str(&event.to_jsonl_line());
                out.push('\n');
            }
        }
        out
    }

    /// Renders the registry as CSV.
    pub fn to_csv(&self) -> String {
        to_csv(&self.registry)
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        to_prometheus(&self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_to_disabled() {
        let cfg = TelemetryConfig::default();
        assert!(!cfg.enabled);
        let cfg = TelemetryConfig::enabled("x").with_seed(7);
        assert!(cfg.enabled);
        assert_eq!(cfg.scenario, "x");
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn finalize_is_idempotent() {
        use crate::config::AnalysisConfig;
        use crate::model::AhbPowerModel;

        let acfg = AnalysisConfig::paper_testbench();
        let fsm = PowerFsm::new(AhbPowerModel::new(1, 1, &acfg.tech()));
        let mut t = Telemetry::new(TelemetryConfig::enabled("idem"), 1);
        t.finalize(&fsm);
        let first = t.to_prometheus();
        t.finalize(&fsm);
        assert_eq!(
            t.to_prometheus(),
            first,
            "double finalize must not double-count"
        );
    }
}
