//! Publishers: fold analysis-layer state into the metrics registry.
//!
//! Each function here takes an accumulator that was filled during the run
//! (the bus-performance analyzer, the power FSM's ledgers, span sets, the
//! kernel profile) and registers/updates the corresponding metrics. They
//! run once at the end of a session, off the hot path.

use ahbpower_ahb::BusPerfAnalyzer;
use ahbpower_sim::{KernelProfile, KernelStats};

use crate::power_fsm::PowerFsm;
use crate::telemetry::registry::MetricsRegistry;
use crate::telemetry::span::SpanSet;

/// Publishes bus-performance counters and histograms:
/// `ahb_cycles_total`, per-master grant/wait/transfer counters,
/// `ahb_arbitration_latency_cycles`, `ahb_burst_beats`,
/// `ahb_handovers_total` and the utilization/handover-rate gauges.
pub fn publish_bus_perf(reg: &mut MetricsRegistry, perf: &BusPerfAnalyzer) {
    let c = reg.counter("ahb_cycles_total", "Bus clock cycles observed.", &[]);
    reg.add(c, perf.cycles() as f64);
    let c = reg.counter("ahb_handovers_total", "Bus ownership changes.", &[]);
    reg.add(c, perf.handovers() as f64);
    let c = reg.counter(
        "ahb_idle_cycles_total",
        "Cycles with an IDLE address phase.",
        &[],
    );
    reg.add(c, perf.idle_cycles() as f64);

    for (i, m) in perf.masters().iter().enumerate() {
        let label = i.to_string();
        let labels = [("master", label.as_str())];
        let c = reg.counter(
            "ahb_master_grant_cycles_total",
            "Cycles each master owned the address phase.",
            &labels,
        );
        reg.add(c, m.grant_cycles as f64);
        let c = reg.counter(
            "ahb_master_transfers_total",
            "Data transfers each master completed with OKAY.",
            &labels,
        );
        reg.add(c, m.transfers_ok as f64);
        let c = reg.counter(
            "ahb_master_wait_cycles_total",
            "Wait-state cycles inserted into each master's data phases.",
            &labels,
        );
        reg.add(c, m.wait_cycles as f64);
        let c = reg.counter(
            "ahb_master_request_wait_cycles_total",
            "Cycles each master spent requesting the bus without owning it.",
            &labels,
        );
        reg.add(c, m.request_wait_cycles as f64);
    }

    let lat = perf.arbitration_latency();
    let h = reg.histogram(
        "ahb_arbitration_latency_cycles",
        "Cycles from HBUSREQ assertion to the first owning cycle.",
        &[],
        lat.bounds(),
    );
    reg.set_histogram(h, lat);
    let beats = perf.burst_beats();
    let h = reg.histogram(
        "ahb_burst_beats",
        "Beats per completed burst.",
        &[],
        beats.bounds(),
    );
    reg.set_histogram(h, beats);

    let g = reg.gauge(
        "ahb_bus_utilization_ratio",
        "Fraction of cycles that completed a data transfer.",
        &[],
    );
    reg.set(g, perf.utilization());
    let g = reg.gauge("ahb_handover_rate", "Bus handovers per cycle.", &[]);
    reg.set(g, perf.handover_rate());
}

/// Publishes the power FSM's ledgers: per-instruction energy totals and
/// execution counts (Table 1), per-block energy (Fig. 6), per-master
/// attribution and the grand total, all in joules.
pub fn publish_power(reg: &mut MetricsRegistry, fsm: &PowerFsm) {
    for row in fsm.ledger().rows() {
        let name = row.instruction.name();
        let labels = [("instruction", name.as_str())];
        let c = reg.counter(
            "power_instruction_energy_joules_total",
            "Energy booked per AHB instruction (Table 1).",
            &labels,
        );
        reg.add(c, row.total);
        let c = reg.counter(
            "power_instruction_executions_total",
            "Executions per AHB instruction (Table 1).",
            &labels,
        );
        reg.add(c, row.count as f64);
        let g = reg.gauge(
            "power_instruction_energy_joules_avg",
            "Average energy per execution of each AHB instruction.",
            &labels,
        );
        reg.set(g, row.average);
    }
    for (block, energy, _share) in fsm.blocks().shares() {
        let c = reg.counter(
            "power_block_energy_joules_total",
            "Energy per structural sub-block (Fig. 6).",
            &[("block", block)],
        );
        reg.add(c, energy);
    }
    for (i, &e) in fsm.per_master_energy().iter().enumerate() {
        let label = i.to_string();
        let c = reg.counter(
            "power_master_energy_joules_total",
            "Energy attributed to each master's transfers.",
            &[("master", label.as_str())],
        );
        reg.add(c, e);
    }
    let c = reg.counter(
        "power_total_energy_joules",
        "Total bus energy booked by the power FSM.",
        &[],
    );
    reg.add(c, fsm.total_energy());
}

/// Publishes a [`SpanSet`] as `telemetry_span_seconds_total` /
/// `telemetry_span_invocations_total`, labelled by span name.
pub fn publish_spans(reg: &mut MetricsRegistry, spans: &SpanSet) {
    for (name, stat) in spans.iter() {
        let labels = [("span", name)];
        let c = reg.counter(
            "telemetry_span_seconds_total",
            "Wall-clock time spent inside each instrumented span.",
            &labels,
        );
        reg.add(c, stat.total.as_secs_f64());
        let c = reg.counter(
            "telemetry_span_invocations_total",
            "Executions of each instrumented span.",
            &labels,
        );
        reg.add(c, stat.count as f64);
    }
}

/// Publishes a kernel run's statistics and (when profiling was enabled)
/// its wall-clock profile. `process_names[i]` labels process `i`; missing
/// entries fall back to `process_<i>`.
pub fn publish_kernel(
    reg: &mut MetricsRegistry,
    stats: &KernelStats,
    profile: Option<&KernelProfile>,
    process_names: &[&str],
) {
    let c = reg.counter("sim_kernel_deltas_total", "Delta cycles executed.", &[]);
    reg.add(c, stats.deltas as f64);
    let c = reg.counter(
        "sim_kernel_activations_total",
        "Process activations across the run.",
        &[],
    );
    reg.add(c, stats.activations as f64);
    let c = reg.counter(
        "sim_kernel_signal_changes_total",
        "Committed signal value changes.",
        &[],
    );
    reg.add(c, stats.signal_changes as f64);

    let Some(p) = profile else { return };
    let c = reg.counter(
        "sim_kernel_delta_seconds_total",
        "Wall-clock time inside timed delta cycles.",
        &[],
    );
    reg.add(c, p.delta.total.as_secs_f64());
    let c = reg.counter(
        "sim_kernel_update_seconds_total",
        "Wall-clock time inside update-and-notify phases.",
        &[],
    );
    reg.add(c, p.update.total.as_secs_f64());
    for (i, stat) in p.per_process.iter().enumerate() {
        if stat.count == 0 {
            continue;
        }
        let fallback;
        let name = match process_names.get(i) {
            Some(n) => *n,
            None => {
                fallback = format!("process_{i}");
                fallback.as_str()
            }
        };
        let labels = [("process", name)];
        let c = reg.counter(
            "sim_process_activations_total",
            "Activations per kernel process.",
            &labels,
        );
        reg.add(c, stat.count as f64);
        let c = reg.counter(
            "sim_process_busy_seconds_total",
            "Wall-clock time per kernel process body.",
            &labels,
        );
        reg.add(c, stat.total.as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use ahbpower_ahb::{AddressMap, AhbBusBuilder, MemorySlave, Op, ScriptedMaster};

    use crate::config::AnalysisConfig;
    use crate::model::AhbPowerModel;

    #[test]
    fn bus_perf_metrics_land_in_registry() {
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::write(0x0, 1),
                Op::read(0x0),
            ])))
            .slave(Box::new(MemorySlave::new(0x1000, 1, 0)))
            .build()
            .unwrap();
        let mut perf = BusPerfAnalyzer::new(1);
        for _ in 0..30 {
            perf.observe(bus.step());
        }
        perf.finish();
        let mut reg = MetricsRegistry::new();
        publish_bus_perf(&mut reg, &perf);
        assert_eq!(reg.counter_value("ahb_cycles_total", &[]), Some(30.0));
        assert_eq!(
            reg.counter_value("ahb_master_transfers_total", &[("master", "0")]),
            Some(2.0)
        );
        assert!(
            reg.counter_value("ahb_master_wait_cycles_total", &[("master", "0")])
                .unwrap()
                > 0.0
        );
        assert!(reg
            .histogram_by_name("ahb_arbitration_latency_cycles", &[])
            .is_some());
        assert!(reg.gauge_value("ahb_bus_utilization_ratio", &[]).unwrap() > 0.0);
    }

    #[test]
    fn power_metrics_match_fsm_totals() {
        let cfg = AnalysisConfig {
            n_masters: 1,
            n_slaves: 1,
            ..AnalysisConfig::paper_testbench()
        };
        let model = AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());
        let mut fsm = PowerFsm::new(model);
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(1, 0x1000))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::write(0x0, 0xFFFF),
                Op::read(0x0),
            ])))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .build()
            .unwrap();
        for _ in 0..30 {
            fsm.observe(bus.step());
        }
        let mut reg = MetricsRegistry::new();
        publish_power(&mut reg, &fsm);
        let total = reg.counter_value("power_total_energy_joules", &[]).unwrap();
        assert!((total - fsm.total_energy()).abs() < 1e-18);
        // Instruction totals sum to the grand total.
        let by_instruction: f64 = reg
            .counters()
            .iter()
            .filter(|c| c.meta.name == "power_instruction_energy_joules_total")
            .map(|c| c.value)
            .sum();
        assert!((by_instruction - total).abs() < 1e-15 * total.max(1e-30));
    }

    #[test]
    fn spans_and_kernel_stats_publish() {
        let mut spans = SpanSet::new();
        let id = spans.register("observe");
        spans.record(id, Duration::from_millis(2));
        let mut reg = MetricsRegistry::new();
        publish_spans(&mut reg, &spans);
        assert_eq!(
            reg.counter_value("telemetry_span_invocations_total", &[("span", "observe")]),
            Some(1.0)
        );

        let stats = KernelStats {
            deltas: 10,
            activations: 7,
            signal_changes: 4,
        };
        let mut profile = KernelProfile::new();
        profile.delta.record(Duration::from_micros(5));
        profile.process_mut(1).record(Duration::from_micros(3));
        publish_kernel(&mut reg, &stats, Some(&profile), &["ahb_bus"]);
        assert_eq!(
            reg.counter_value("sim_kernel_deltas_total", &[]),
            Some(10.0)
        );
        // Process 1 has no name supplied -> falls back to process_1.
        assert_eq!(
            reg.counter_value("sim_process_activations_total", &[("process", "process_1")]),
            Some(1.0)
        );
    }
}
