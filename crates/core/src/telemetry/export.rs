//! Exporters: render a [`MetricsRegistry`] as JSONL, CSV or Prometheus
//! text exposition, a transaction trace as Chrome trace-event JSON, and
//! an [`AttributionTable`] as folded flamegraph stacks.
//!
//! All formats are produced by hand (the workspace's vendored `serde` is
//! an offline no-op stub), which also keeps the output format under test
//! here rather than behind a derive.

use std::fmt::Write as _;

use ahbpower_ahb::SlaveId;

use crate::attribution::AttributionTable;
use crate::telemetry::events::Event;
use crate::telemetry::registry::{MetricMeta, MetricsRegistry};
use crate::trace::TracePoint;
use crate::txn::TxnRecord;

/// Run-level metadata stamped into exports.
#[derive(Debug, Clone, Default)]
pub struct ExportMeta {
    /// Scenario label (e.g. `paper_testbench`).
    pub scenario: String,
    /// Bus cycles simulated.
    pub cycles: u64,
    /// Seed the workload was generated from.
    pub seed: u64,
}

/// Escapes a string for embedding in a JSON string literal: `"`, `\`
/// and `\n` get their two-character escapes, every other control
/// character becomes a `\u00XX` escape. The output parses back to the
/// input under any RFC 8259 reader (property-tested against the bench
/// crate's hand-rolled parser).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON-compatible number (JSON has no infinities
/// or NaN; those become `null`).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_labels(meta: &MetricMeta) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in meta.labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    out.push('}');
    out
}

/// Renders the registry as a JSONL event stream: one `meta` event, then
/// one event per metric. Histogram events carry bucket bounds, per-bucket
/// counts, sum and count.
pub fn to_jsonl(reg: &MetricsRegistry, meta: &ExportMeta) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"event\":\"meta\",\"scenario\":\"{}\",\"cycles\":{},\"seed\":{}}}",
        json_escape(&meta.scenario),
        meta.cycles,
        meta.seed
    );
    for c in reg.counters() {
        let _ = writeln!(
            out,
            "{{\"event\":\"counter\",\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
            json_escape(&c.meta.name),
            json_labels(&c.meta),
            json_num(c.value)
        );
    }
    for g in reg.gauges() {
        let _ = writeln!(
            out,
            "{{\"event\":\"gauge\",\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
            json_escape(&g.meta.name),
            json_labels(&g.meta),
            json_num(g.value)
        );
    }
    for h in reg.histograms() {
        let bounds: Vec<String> = h.hist.bounds().iter().map(|b| b.to_string()).collect();
        let counts: Vec<String> = h
            .hist
            .bucket_counts()
            .iter()
            .map(|c| c.to_string())
            .collect();
        let _ = writeln!(
            out,
            "{{\"event\":\"histogram\",\"name\":\"{}\",\"labels\":{},\"bounds\":[{}],\"counts\":[{}],\"sum\":{},\"count\":{}}}",
            json_escape(&h.meta.name),
            json_labels(&h.meta),
            bounds.join(","),
            counts.join(","),
            h.hist.sum(),
            h.hist.count()
        );
    }
    out
}

/// Renders a batch of structured [`Event`]s as a JSONL document: the
/// standard `meta` line (scenario, cycles, seed — same shape as
/// [`to_jsonl`]) followed by one event object per line, oldest first.
/// This is what `repro serve` flushes to `results/events.jsonl`.
pub fn events_to_jsonl(events: &[Event], meta: &ExportMeta) -> String {
    let mut out = String::with_capacity(64 + 96 * events.len());
    let _ = writeln!(
        out,
        "{{\"event\":\"meta\",\"scenario\":\"{}\",\"cycles\":{},\"seed\":{}}}",
        json_escape(&meta.scenario),
        meta.cycles,
        meta.seed
    );
    for e in events {
        out.push_str(&e.to_json_obj());
        out.push('\n');
    }
    out
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn csv_labels(meta: &MetricMeta) -> String {
    let joined: Vec<String> = meta
        .labels
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    csv_field(&joined.join(";"))
}

/// Renders the registry as CSV with columns `kind,name,labels,field,value`.
/// Scalars emit one `value` row; histograms emit one row per bucket
/// (`field` = `le=<bound>` / `le=+Inf`, cumulative counts) plus `sum`,
/// `count`, and interpolated `p50`/`p95`/`p99` rows (see
/// [`ahbpower_ahb::CycleHistogram::quantile`]).
pub fn to_csv(reg: &MetricsRegistry) -> String {
    let mut out = String::from("kind,name,labels,field,value\n");
    for c in reg.counters() {
        let _ = writeln!(
            out,
            "counter,{},{},value,{}",
            csv_field(&c.meta.name),
            csv_labels(&c.meta),
            c.value
        );
    }
    for g in reg.gauges() {
        let _ = writeln!(
            out,
            "gauge,{},{},value,{}",
            csv_field(&g.meta.name),
            csv_labels(&g.meta),
            g.value
        );
    }
    for h in reg.histograms() {
        let name = csv_field(&h.meta.name);
        let labels = csv_labels(&h.meta);
        let cumulative = h.hist.cumulative_counts();
        for (i, cum) in cumulative.iter().enumerate() {
            let le = match h.hist.bounds().get(i) {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(out, "histogram,{name},{labels},le={le},{cum}");
        }
        let _ = writeln!(out, "histogram,{name},{labels},sum,{}", h.hist.sum());
        let _ = writeln!(out, "histogram,{name},{labels},count,{}", h.hist.count());
        for (field, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            let _ = writeln!(
                out,
                "histogram,{name},{labels},{field},{}",
                h.hist.quantile(q)
            );
        }
    }
    out
}

/// Escapes a label value for the Prometheus text exposition format:
/// backslash, double quote and newline become `\\`, `\"` and `\n`.
/// [`prom_unescape_label`] inverts it exactly.
pub fn prom_escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Inverts [`prom_escape_label`]. Unknown escape sequences and a
/// trailing lone backslash are preserved literally (the exposition
/// format defines only the three escapes).
pub fn prom_unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

fn prom_labels(meta: &MetricMeta, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = meta
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", prom_escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn prom_header(out: &mut String, seen: &mut Vec<String>, name: &str, help: &str, kind: &str) {
    if seen.iter().any(|n| n == name) {
        return;
    }
    seen.push(name.to_string());
    let _ = writeln!(out, "# HELP {name} {}", help.replace('\n', " "));
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders the registry in the Prometheus text exposition format
/// (version 0.0.4): `# HELP`/`# TYPE` headers, one sample line per
/// counter/gauge, and cumulative `_bucket{le=...}`/`_sum`/`_count`
/// series per histogram.
pub fn to_prometheus(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut seen: Vec<String> = Vec::new();
    for c in reg.counters() {
        prom_header(&mut out, &mut seen, &c.meta.name, &c.meta.help, "counter");
        let _ = writeln!(
            out,
            "{}{} {}",
            c.meta.name,
            prom_labels(&c.meta, None),
            c.value
        );
    }
    for g in reg.gauges() {
        prom_header(&mut out, &mut seen, &g.meta.name, &g.meta.help, "gauge");
        let _ = writeln!(
            out,
            "{}{} {}",
            g.meta.name,
            prom_labels(&g.meta, None),
            g.value
        );
    }
    for h in reg.histograms() {
        prom_header(&mut out, &mut seen, &h.meta.name, &h.meta.help, "histogram");
        let cumulative = h.hist.cumulative_counts();
        for (i, cum) in cumulative.iter().enumerate() {
            let le = match h.hist.bounds().get(i) {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                h.meta.name,
                prom_labels(&h.meta, Some(("le", le.as_str()))),
                cum
            );
        }
        let _ = writeln!(
            out,
            "{}_sum{} {}",
            h.meta.name,
            prom_labels(&h.meta, None),
            h.hist.sum()
        );
        let _ = writeln!(
            out,
            "{}_count{} {}",
            h.meta.name,
            prom_labels(&h.meta, None),
            h.hist.count()
        );
    }
    out
}

/// Metadata for the Chrome trace-event exporter.
#[derive(Debug, Clone)]
pub struct TraceEventMeta {
    /// Scenario label (e.g. `paper_testbench`).
    pub scenario: String,
    /// Masters on the bus (one Perfetto track each).
    pub n_masters: usize,
    /// Bus clock period in picoseconds (cycle stamps → microseconds).
    pub period_ps: u64,
    /// Seed the workload was generated from.
    pub seed: u64,
}

/// The label a transaction's slave gets in exports: `S<n>`, or `default`
/// for transfers no HSEL line claimed (and idle attribution cells).
fn slave_label(slave: Option<SlaveId>) -> String {
    match slave {
        Some(s) => format!("{s}"),
        None => "default".to_string(),
    }
}

/// Renders completed transactions plus the windowed power trace as a
/// Chrome trace-event JSON document (the format `chrome://tracing` and
/// [Perfetto](https://ui.perfetto.dev) open directly).
///
/// Layout: process 1 carries one thread ("track") per master, named
/// `M0..M<n>`, with one complete (`ph:"X"`) event per transaction —
/// timestamped in microseconds from the cycle stamps and `meta.period_ps`
/// — whose args carry slave, burst shape, wait/grant cycles and energy.
/// Process 2 carries counter (`ph:"C"`) tracks with the windowed total
/// and per-block power in milliwatts, reusing the session's
/// [`TracePoint`]s.
pub fn to_trace_events<'a>(
    records: impl IntoIterator<Item = &'a TxnRecord>,
    power: &[TracePoint],
    meta: &TraceEventMeta,
) -> String {
    let us_per_cycle = meta.period_ps as f64 / 1e6;
    let mut events: Vec<String> = Vec::new();
    events.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":\"AHB transactions ({})\"}}}}",
        json_escape(&meta.scenario)
    ));
    for m in 0..meta.n_masters {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{m},\"args\":{{\"name\":\"M{m}\"}}}}"
        ));
    }
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"args\":{\"name\":\"AHB windowed power\"}}"
            .to_string(),
    );
    for r in records {
        let name = format!(
            "{} {}",
            if r.write { "WRITE" } else { "READ" },
            slave_label(r.slave)
        );
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"txn\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"id\":{},\"addr\":\"{:#010x}\",\"burst\":\"{:?}\",\"beats\":{},\"wait_cycles\":{},\"grant_wait_cycles\":{},\"energy_pj\":{}}}}}",
            json_escape(&name),
            r.master.index(),
            json_num(r.start_cycle as f64 * us_per_cycle),
            json_num(r.occupancy_cycles() as f64 * us_per_cycle),
            r.id,
            r.addr,
            r.burst,
            r.beats,
            r.wait_cycles,
            r.grant_wait_cycles,
            json_num(r.energy.total() * 1e12)
        ));
    }
    for p in power {
        let ts = json_num(p.time_s * 1e6);
        events.push(format!(
            "{{\"name\":\"total_power_mW\",\"ph\":\"C\",\"pid\":2,\"ts\":{ts},\"args\":{{\"total\":{}}}}}",
            json_num(p.total_w * 1e3)
        ));
        events.push(format!(
            "{{\"name\":\"block_power_mW\",\"ph\":\"C\",\"pid\":2,\"ts\":{ts},\"args\":{{\"m2s\":{},\"s2m\":{},\"dec\":{},\"arb\":{}}}}}",
            json_num(p.m2s_w * 1e3),
            json_num(p.s2m_w * 1e3),
            json_num(p.dec_w * 1e3),
            json_num(p.arb_w * 1e3)
        ));
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"scenario\":\"{}\",\"seed\":{}}}}}\n",
        events.join(","),
        json_escape(&meta.scenario),
        meta.seed
    )
}

/// Renders an [`AttributionTable`] as folded stacks —
/// `master;slave;instruction;block <femtojoules>`, one line per non-zero
/// cell×block — the input format of standard flamegraph tooling
/// (`inferno-flamegraph`, `flamegraph.pl`).
///
/// The sample count is the attributed energy in **femtojoules**, rounded
/// to an integer (the tools require integer counts); cells rounding to
/// zero are dropped.
pub fn to_folded(table: &AttributionTable) -> String {
    let mut out = String::new();
    for row in table.rows() {
        let stack = format!(
            "{};{};{}",
            row.master,
            slave_label(row.slave),
            row.instruction.name()
        );
        for (block, joules) in [
            ("M2S", row.energy.m2s),
            ("DEC", row.energy.dec),
            ("ARB", row.energy.arb),
            ("S2M", row.energy.s2m),
        ] {
            let fj = (joules * 1e15).round();
            if fj >= 1.0 {
                let _ = writeln!(out, "{stack};{block} {}", fj as u64);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("ahb_cycles_total", "Bus cycles.", &[]);
        reg.add(c, 100.0);
        let c = reg.counter("ahb_master_wait_cycles_total", "Waits.", &[("master", "0")]);
        reg.add(c, 7.0);
        let c = reg.counter("ahb_master_wait_cycles_total", "Waits.", &[("master", "1")]);
        reg.add(c, 3.0);
        let g = reg.gauge("ahb_bus_utilization_ratio", "Utilization.", &[]);
        reg.set(g, 0.5);
        let h = reg.histogram("ahb_arbitration_latency_cycles", "Latency.", &[], &[1, 4]);
        reg.observe(h, 0);
        reg.observe(h, 2);
        reg.observe(h, 99);
        reg
    }

    #[test]
    fn jsonl_is_line_delimited_json() {
        let reg = sample_registry();
        let meta = ExportMeta {
            scenario: "paper_testbench".to_string(),
            cycles: 100,
            seed: 2003,
        };
        let out = to_jsonl(&reg, &meta);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines.len(),
            1 + 3 + 1 + 1,
            "meta + 3 counters + gauge + histogram"
        );
        assert_eq!(
            lines[0],
            "{\"event\":\"meta\",\"scenario\":\"paper_testbench\",\"cycles\":100,\"seed\":2003}"
        );
        assert!(lines[2].contains("\"labels\":{\"master\":\"0\"}"));
        assert!(lines[5].contains("\"bounds\":[1,4]"));
        assert!(lines[5].contains("\"counts\":[1,1,1]"));
        assert!(lines[5].contains("\"sum\":101"));
        // Every line is a standalone JSON object.
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn csv_expands_histogram_buckets() {
        let out = to_csv(&sample_registry());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "kind,name,labels,field,value");
        assert!(lines.contains(&"counter,ahb_master_wait_cycles_total,master=0,value,7"));
        assert!(lines.contains(&"histogram,ahb_arbitration_latency_cycles,,le=1,1"));
        assert!(lines.contains(&"histogram,ahb_arbitration_latency_cycles,,le=+Inf,3"));
        assert!(lines.contains(&"histogram,ahb_arbitration_latency_cycles,,sum,101"));
    }

    #[test]
    fn csv_emits_interpolated_percentiles() {
        let out = to_csv(&sample_registry());
        let lines: Vec<&str> = out.lines().collect();
        // Buckets: le=1 holds {0}, le=4 holds {2}, +Inf holds {99}.
        // p50: rank 1.5 of 3 → interpolates within (1,4].
        assert!(lines.contains(&"histogram,ahb_arbitration_latency_cycles,,p50,2.5"));
        // p95/p99: rank lands in the overflow bucket → clamped to le=4.
        assert!(lines.contains(&"histogram,ahb_arbitration_latency_cycles,,p95,4"));
        assert!(lines.contains(&"histogram,ahb_arbitration_latency_cycles,,p99,4"));
    }

    #[test]
    fn prom_label_escape_round_trips_known_cases() {
        for raw in [
            "plain",
            "back\\slash",
            "quo\"te",
            "new\nline",
            "\\\"\n",
            "trailing\\",
            "\\n literal",
        ] {
            let escaped = prom_escape_label(raw);
            assert!(!escaped.contains('\n'), "escaped form is single-line");
            assert_eq!(prom_unescape_label(&escaped), raw, "escaped: {escaped:?}");
        }
        // Unknown escapes and lone trailing backslashes survive unescape.
        assert_eq!(prom_unescape_label("\\x"), "\\x");
        assert_eq!(prom_unescape_label("end\\"), "end\\");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let out = to_prometheus(&sample_registry());
        assert!(out.contains("# HELP ahb_cycles_total Bus cycles.\n"));
        assert!(out.contains("# TYPE ahb_cycles_total counter\n"));
        assert!(out.contains("ahb_cycles_total 100\n"));
        assert!(out.contains("ahb_master_wait_cycles_total{master=\"0\"} 7\n"));
        assert!(out.contains("ahb_master_wait_cycles_total{master=\"1\"} 3\n"));
        // HELP/TYPE emitted once per family, not per labelled series.
        assert_eq!(
            out.matches("# TYPE ahb_master_wait_cycles_total").count(),
            1
        );
        assert!(out.contains("# TYPE ahb_bus_utilization_ratio gauge\n"));
        assert!(out.contains("# TYPE ahb_arbitration_latency_cycles histogram\n"));
        assert!(out.contains("ahb_arbitration_latency_cycles_bucket{le=\"1\"} 1\n"));
        assert!(out.contains("ahb_arbitration_latency_cycles_bucket{le=\"+Inf\"} 3\n"));
        assert!(out.contains("ahb_arbitration_latency_cycles_sum 101\n"));
        assert!(out.contains("ahb_arbitration_latency_cycles_count 3\n"));
    }

    #[test]
    fn trace_events_have_tracks_counters_and_valid_shape() {
        use crate::instruction::{ActivityMode, Instruction};
        use crate::macromodel::BlockEnergy;
        use ahbpower_ahb::{HBurst, MasterId};

        let mut table = AttributionTable::new();
        table.record(
            MasterId(1),
            Some(SlaveId(0)),
            Instruction::new(ActivityMode::Idle, ActivityMode::Write),
            BlockEnergy {
                dec: 1e-12,
                m2s: 3e-12,
                s2m: 0.0,
                arb: 1e-12,
            },
        );
        let txn = TxnRecord {
            id: 0,
            master: MasterId(1),
            slave: Some(SlaveId(0)),
            write: true,
            addr: 0x40,
            burst: HBurst::Incr4,
            request_cycle: Some(0),
            grant_cycle: Some(1),
            grant_wait_cycles: 1,
            start_cycle: 2,
            complete_cycle: 6,
            beats: 4,
            ok_beats: 4,
            wait_cycles: 1,
            energy: BlockEnergy {
                dec: 1e-12,
                m2s: 3e-12,
                s2m: 0.0,
                arb: 1e-12,
            },
        };
        let power = [TracePoint {
            time_s: 0.0,
            total_w: 0.002,
            dec_w: 0.0005,
            m2s_w: 0.001,
            s2m_w: 0.0,
            arb_w: 0.0005,
        }];
        let meta = TraceEventMeta {
            scenario: "unit".to_string(),
            n_masters: 2,
            period_ps: 10_000,
            seed: 7,
        };
        let out = to_trace_events([&txn], &power, &meta);
        // One thread-name track per master.
        assert!(out.contains("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"M0\"}}"));
        assert!(out.contains("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"M1\"}}"));
        // The transaction: 10 ns cycles → start 0.02 µs, 5 cycles → 0.05 µs.
        assert!(out.contains("\"name\":\"WRITE S0\""), "{out}");
        assert!(out.contains("\"ts\":0.02,\"dur\":0.05"), "{out}");
        assert!(out.contains("\"burst\":\"Incr4\""));
        assert!(out.contains("\"energy_pj\":"));
        // Counter tracks in milliwatts.
        assert!(out.contains(
            "\"name\":\"total_power_mW\",\"ph\":\"C\",\"pid\":2,\"ts\":0,\"args\":{\"total\":2}"
        ));
        assert!(out.contains("\"name\":\"block_power_mW\""));
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.trim_end().ends_with("\"seed\":7}}"));
    }

    #[test]
    fn folded_stacks_are_integer_femtojoules() {
        use crate::instruction::{ActivityMode, Instruction};
        use crate::macromodel::BlockEnergy;
        use ahbpower_ahb::MasterId;

        let mut table = AttributionTable::new();
        table.record(
            MasterId(0),
            Some(SlaveId(2)),
            Instruction::new(ActivityMode::Write, ActivityMode::Read),
            BlockEnergy {
                dec: 2e-15,
                m2s: 7.4e-15,
                s2m: 0.2e-15, // rounds to 0 fJ: dropped
                arb: 1e-15,
            },
        );
        table.record(
            MasterId(1),
            None,
            Instruction::new(ActivityMode::Idle, ActivityMode::Idle),
            BlockEnergy {
                dec: 0.0,
                m2s: 0.0,
                s2m: 0.0,
                arb: 3e-15,
            },
        );
        let out = to_folded(&table);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            vec![
                "M0;S2;WRITE_READ;M2S 7",
                "M0;S2;WRITE_READ;DEC 2",
                "M0;S2;WRITE_READ;ARB 1",
                "M1;default;IDLE_IDLE;ARB 3",
            ]
        );
        // Every line: stack frames joined by ';', space, integer count.
        for line in lines {
            let (stack, count) = line.rsplit_once(' ').expect("space separator");
            assert_eq!(stack.split(';').count(), 4);
            assert!(count.parse::<u64>().is_ok(), "{count}");
        }
    }

    #[test]
    fn escaping_is_applied() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("weird_total", "Help with \"quotes\".", &[("k", "a\"b,c")]);
        reg.add(c, 1.0);
        let jsonl = to_jsonl(&reg, &ExportMeta::default());
        assert!(jsonl.contains("\"k\":\"a\\\"b,c\""));
        let csv = to_csv(&reg);
        assert!(csv.contains("\"k=a\"\"b,c\""));
        let prom = to_prometheus(&reg);
        assert!(prom.contains("weird_total{k=\"a\\\"b,c\"} 1"));
    }
}
