//! Cross-layer structured event bus: a lock-free, bounded MPSC ring into
//! which every subsystem publishes typed [`Event`]s carrying causal ids
//! (slice → transaction → window), so one workload slice can be traced
//! from bus transaction to energy booking to anomaly verdict.
//!
//! # Design
//!
//! The workspace forbids `unsafe`, so the ring is built entirely from
//! `AtomicU64` words with a per-slot seqlock stamp instead of the usual
//! `UnsafeCell` payload:
//!
//! - Writers claim a global sequence number with one `fetch_add` on
//!   `head` (a run of numbers, for [`EventBus::publish_batch`]), then
//!   stamp their slot *writing* (`2·seq+1`), store the payload words
//!   relaxed behind a release fence, and finally stamp the slot
//!   *published* (`2·seq+2`) with release ordering. That `fetch_add` is
//!   the publish path's one cross-core round trip, which is why
//!   high-rate emitters ([`EventsTap`]) buffer completions locally and
//!   flush them as batches.
//! - Readers never block writers: [`EventBus::read_since`] checks the
//!   stamp before and after copying the payload (with an acquire fence in
//!   between) and classifies each slot as published, still in flight, or
//!   already overwritten by a lap of the ring. Overwritten events are
//!   counted as dropped, never returned torn.
//! - The whole publish path is allocation-free, and when the bus is
//!   disabled it is a single relaxed load of a cold `AtomicBool` — cheap
//!   enough to leave compiled into every hot loop.
//!
//! One caveat is inherited from every fixed-size broadcast ring: two
//! writers whose claimed sequence numbers differ by a multiple of the
//! capacity would race on one slot. With the default capacity (16 384)
//! that requires a writer to stay descheduled while the rest of the
//! system publishes a full ring of events, which the intended uses (a
//! handful of threads, a few stores per publish) cannot approach.

use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use ahbpower_ahb::{BusSnapshot, LifecycleTap, TxnEvent};
use ahbpower_sim::KernelStats;

use super::anomaly::WindowVerdict;
use super::atomics::{AtomicBoolCell, AtomicU64Cell, Atomics, StdAtomics};

/// Default ring capacity (rounded up to a power of two by the bus).
/// 16 Ki slots × 64 B = 1 MiB, small enough to stay resident in a
/// typical L2: publishing into a larger ring streams every slot store
/// through the last-level cache and measurably raises the per-event
/// cost. Consumers that read across long windows of producer activity
/// (e.g. the serve loop's per-slice drain) should size their ring
/// explicitly instead of raising this default.
pub const DEFAULT_EVENT_CAPACITY: usize = 16_384;

/// Words per ring slot: one stamp word plus the packed event payload.
const SLOT_WORDS: usize = 8;

/// One ring slot, aligned to its own cache line: with the production
/// [`StdAtomics`] words the eight words are exactly 64 bytes, and the
/// alignment keeps every publish inside a single line instead of
/// straddling two (a measurable share of the per-event cost at
/// transaction rates of ~0.7 events/cycle).
#[repr(align(64))]
struct Slot<A: Atomics>([A::U64; SLOT_WORDS]);

/// A seeded fault in the ring's seqlock write protocol, used by the
/// static analyzer's deep verification pass (`repro analyze --deep`) to
/// prove its interleaving model checker actually catches protocol bugs.
/// Production code always uses [`RingMutation::None`]; the other
/// variants deliberately break the write path in ways the checker's
/// torn-read and lost-event invariants must flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RingMutation {
    /// The correct protocol (the only variant production code uses).
    #[default]
    None,
    /// Stamp the slot *published* before storing the payload words: a
    /// reader scheduled between the stamp and the payload stores can
    /// return a torn (stale or mixed) event as if it were consistent.
    PublishBeforePayload,
    /// Omit the pre-payload *writing* stamp: a reader lapped mid-
    /// overwrite can validate an old stamp around new payload words and
    /// return a mixed event instead of counting the slot as dropped.
    NoWritingStamp,
}

/// The type of a structured event. Discriminants are stable: they are
/// what the ring stores and what `events.jsonl` readers key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A workload slice began (`slice`, `cycle` = first session cycle).
    SliceStart = 0,
    /// A workload slice ended (`a` = cumulative session energy, J).
    SliceEnd = 1,
    /// A bus transaction completed (`txn` id, `tag` = master index,
    /// `a` = beats, `b` = wait cycles).
    TxnComplete = 2,
    /// A detection window's energy was booked (`window`, `a` = measured
    /// J, `b` = predicted J).
    EnergyBooked = 3,
    /// A detection window was flagged anomalous (`a` = deviation %,
    /// `b` = z-score).
    AnomalyFlagged = 4,
    /// A clean window was absorbed into the anomaly baseline.
    BaselineUpdated = 5,
    /// A sweep point finished (`txn` = point index, `a` = energy J).
    SweepPointDone = 6,
    /// A hosted kernel run was profiled (`a` = deltas, `b` = signal
    /// changes, `tag` = activations, saturating).
    KernelRun = 7,
    /// A record/replay pass began (`txn` = trace id, `tag` = model
    /// variant count, `a` = recorded cycles).
    ReplayStart = 8,
    /// A record/replay pass finished (`txn` = trace id, `tag` = model
    /// variant count, `a` = replay throughput in cycles/s, `b` = total
    /// replayed cycles across all variants).
    ReplayDone = 9,
}

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; 10] = [
        EventKind::SliceStart,
        EventKind::SliceEnd,
        EventKind::TxnComplete,
        EventKind::EnergyBooked,
        EventKind::AnomalyFlagged,
        EventKind::BaselineUpdated,
        EventKind::SweepPointDone,
        EventKind::KernelRun,
        EventKind::ReplayStart,
        EventKind::ReplayDone,
    ];

    /// The kind's stable wire name (the `"event"` field of the JSON form).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SliceStart => "SliceStart",
            EventKind::SliceEnd => "SliceEnd",
            EventKind::TxnComplete => "TxnComplete",
            EventKind::EnergyBooked => "EnergyBooked",
            EventKind::AnomalyFlagged => "AnomalyFlagged",
            EventKind::BaselineUpdated => "BaselineUpdated",
            EventKind::SweepPointDone => "SweepPointDone",
            EventKind::KernelRun => "KernelRun",
            EventKind::ReplayStart => "ReplayStart",
            EventKind::ReplayDone => "ReplayDone",
        }
    }

    /// Decodes a stored discriminant; `None` for garbage.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::ALL.get(v as usize).copied()
    }
}

/// One structured event. Fixed-width by construction (two scalar
/// payload fields, no strings), so publishing never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Global publish sequence number (assigned by the bus).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Causal id: the workload slice this event belongs to.
    pub slice: u64,
    /// Causal id: the transaction (for [`EventKind::TxnComplete`]) or
    /// sweep-point index; 0 when not applicable.
    pub txn: u64,
    /// Causal id: the detection window active when the event fired.
    pub window: u64,
    /// Cycle stamp (meaning depends on the kind; see [`EventKind`]).
    pub cycle: u64,
    /// Small integer payload (e.g. master index).
    pub tag: u32,
    /// First scalar payload field.
    pub a: f64,
    /// Second scalar payload field.
    pub b: f64,
}

impl Event {
    /// Renders the event as one standalone JSON object (no trailing
    /// newline) — the line format of `results/events.jsonl` and the
    /// `/events` endpoint. All fields are numeric or fixed identifiers,
    /// so no escaping is required.
    pub fn to_json_obj(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"event\":\"{}\",\"seq\":{},\"slice\":{},\"txn\":{},\"window\":{},\"cycle\":{},\"tag\":{},\"a\":{},\"b\":{}}}",
            self.kind.name(),
            self.seq,
            self.slice,
            self.txn,
            self.window,
            self.cycle,
            self.tag,
            fnum(self.a),
            fnum(self.b)
        );
        out
    }
}

/// A JSON-safe float (non-finite values become `null`).
fn fnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// What [`EventBus::read_since`] returns: the readable events plus the
/// cursor bookkeeping a poller needs.
#[derive(Debug, Clone, PartialEq)]
pub struct EventBatch {
    /// Consistent events, in sequence order.
    pub events: Vec<Event>,
    /// Pass this as the next `since` to continue the stream.
    pub next: u64,
    /// Events in `[since, next)` lost to ring wraparound.
    pub dropped: u64,
    /// Total events claimed by publishers so far (the head sequence).
    pub published: u64,
}

/// How a slot read resolved.
enum SlotRead {
    Ready(Event),
    NotYet,
    Overwritten,
}

/// The lock-free, bounded, multi-producer structured event ring,
/// generic over its [`Atomics`] implementation so the analyzer's model
/// checker can drive the *same* seqlock protocol over scheduled model
/// cells. Production code uses the [`EventBus`] alias (real
/// `std::sync::atomic` words via [`StdAtomics`]).
///
/// Shared as an `Arc<EventBus>` between the simulation session, the
/// serve worker, the sweep runner's threads and any HTTP reader; see the
/// module docs for the protocol.
///
/// # Examples
///
/// ```
/// use ahbpower::telemetry::{Event, EventBus, EventKind};
///
/// let bus = EventBus::with_capacity(64);
/// bus.set_enabled(true);
/// bus.publish(Event {
///     seq: 0, kind: EventKind::SliceStart, slice: 3, txn: 0,
///     window: 0, cycle: 0, tag: 0, a: 0.0, b: 0.0,
/// });
/// let batch = bus.read_since(0, 16);
/// assert_eq!(batch.events.len(), 1);
/// assert_eq!(batch.events[0].slice, 3);
/// assert_eq!(batch.next, 1);
/// ```
pub struct GenericEventBus<A: Atomics = StdAtomics> {
    enabled: A::Bool,
    head: A::U64,
    mask: u64,
    slots: Vec<Slot<A>>,
    mutation: RingMutation,
    created: Instant,
}

/// The production event ring: [`GenericEventBus`] over [`StdAtomics`].
pub type EventBus = GenericEventBus<StdAtomics>;

impl<A: Atomics> fmt::Debug for GenericEventBus<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventBus")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.capacity())
            .field("published", &self.published())
            .finish()
    }
}

impl<A: Atomics> Default for GenericEventBus<A> {
    fn default() -> Self {
        GenericEventBus::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl<A: Atomics> GenericEventBus<A> {
    /// Creates a disabled bus whose ring holds `capacity` events
    /// (rounded up to a power of two, clamped to `[8, 2^20]`).
    pub fn with_capacity(capacity: usize) -> Self {
        GenericEventBus::build(capacity.clamp(8, 1 << 20), RingMutation::None)
    }

    /// Verification constructor: like [`GenericEventBus::with_capacity`]
    /// but with the minimum capacity relaxed to 2 (tiny rings keep
    /// wraparound interleavings model-checkable) and an optional seeded
    /// write-protocol fault for the analyzer's mutant directions.
    pub fn for_verification(capacity: usize, mutation: RingMutation) -> Self {
        GenericEventBus::build(capacity.clamp(2, 1 << 20), mutation)
    }

    fn build(capacity: usize, mutation: RingMutation) -> Self {
        let cap = capacity.next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        for _ in 0..cap {
            slots.push(Slot([0u64; SLOT_WORDS].map(<A::U64 as AtomicU64Cell>::new)));
        }
        GenericEventBus {
            enabled: <A::Bool as AtomicBoolCell>::new(false),
            head: <A::U64 as AtomicU64Cell>::new(0),
            mask: (cap - 1) as u64,
            slots,
            mutation,
            created: Instant::now(),
        }
    }

    /// Creates an enabled bus with the given capacity, already wrapped
    /// for sharing.
    pub fn shared(capacity: usize) -> Arc<Self> {
        let bus = GenericEventBus::with_capacity(capacity);
        bus.set_enabled(true);
        Arc::new(bus)
    }

    /// The ring's slot count.
    pub fn capacity(&self) -> usize {
        (self.mask + 1) as usize
    }

    /// Whether publishing is live. The disabled fast path in
    /// [`EventBus::publish`] is exactly this one relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        // relaxed: on/off gate only; event data never flows through it.
        self.enabled.load(Ordering::Relaxed)
    }

    /// Switches publishing on or off. Readers keep working either way.
    pub fn set_enabled(&self, enabled: bool) {
        // ordering: cold control-plane flip; seqcst for simplicity over speed.
        self.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Events claimed by publishers so far (monotonic; includes events
    /// already overwritten by ring wraparound).
    pub fn published(&self) -> u64 {
        // ordering: acquire keeps later slot reads from hoisting above this count.
        self.head.load(Ordering::Acquire)
    }

    /// Mean publish rate since the bus was created, events per second
    /// (monotonic clock; this is diagnostics, not simulation time).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.created.elapsed().as_secs_f64();
        if secs > 0.0 {
            self.published() as f64 / secs
        } else {
            0.0
        }
    }

    /// Publishes one event (the bus assigns `e.seq`), returning the
    /// assigned sequence number — or `None` without touching the ring
    /// when the bus is disabled. Never blocks, never allocates.
    #[inline]
    pub fn publish(&self, e: Event) -> Option<u64> {
        // relaxed: on/off gate only; event data never flows through it.
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        // relaxed: RMW claims each seq exactly once; stamps publish the payload.
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        self.write_slot(seq, &e);
        Some(seq)
    }

    /// Publishes a batch of events in order with a single sequence
    /// allocation, returning the sequence number assigned to the first —
    /// or `None` without touching the ring when the bus is disabled or
    /// the batch is empty. The `fetch_add` on the shared head is the one
    /// cross-core round trip in a publish; amortizing it over a batch is
    /// what lets per-cycle emitters (≈ 0.7 completions/cycle on the
    /// paper testbench) stay inside the events-overhead budget. A batch
    /// longer than the ring capacity overwrites its own oldest entries,
    /// exactly as the same events published one at a time would.
    #[inline]
    pub fn publish_batch(&self, events: &[Event]) -> Option<u64> {
        // relaxed: on/off gate only; event data never flows through it.
        if events.is_empty() || !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        // relaxed: RMW claims each seq exactly once; stamps publish the payload.
        let start = self.head.fetch_add(events.len() as u64, Ordering::Relaxed);
        for (i, e) in events.iter().enumerate() {
            self.write_slot(start + i as u64, e);
        }
        Some(start)
    }

    /// Seqlock write of one slot: stamp writing, fence, payload, stamp
    /// published. The mutated arms exist only for the analyzer's seeded
    /// model-checker directions (see [`RingMutation`]); production buses
    /// always take the first arm.
    #[inline]
    fn write_slot(&self, seq: u64, e: &Event) {
        let slot = &self.slots[(seq & self.mask) as usize].0;
        match self.mutation {
            RingMutation::None => {
                // relaxed: ordered before the payload by the release fence below.
                slot[0].store(2 * seq + 1, Ordering::Relaxed);
                // ordering: release fence orders the writing stamp before the payload.
                A::fence(Ordering::Release);
                self.store_payload(slot, e);
                // ordering: release publishes the payload to the reader's acquire load.
                slot[0].store(2 * seq + 2, Ordering::Release);
            }
            RingMutation::PublishBeforePayload => {
                // ordering: seeded fault — stamps published before the payload lands.
                slot[0].store(2 * seq + 2, Ordering::Release);
                self.store_payload(slot, e);
            }
            RingMutation::NoWritingStamp => {
                // ordering: seeded fault — no writing stamp guards the payload stores.
                A::fence(Ordering::Release);
                self.store_payload(slot, e);
                // ordering: release publishes the payload to the reader's acquire load.
                slot[0].store(2 * seq + 2, Ordering::Release);
            }
        }
    }

    /// The seven payload stores shared by every [`Self::write_slot`] arm.
    #[inline]
    fn store_payload(&self, slot: &[A::U64; SLOT_WORDS], e: &Event) {
        let packed = u64::from(e.kind as u8) | (u64::from(e.tag) << 8);
        // relaxed: payload words are guarded by the stamp word on both sides.
        slot[1].store(packed, Ordering::Relaxed);
        slot[2].store(e.slice, Ordering::Relaxed); // relaxed: stamp-guarded payload
        slot[3].store(e.txn, Ordering::Relaxed); // relaxed: stamp-guarded payload
        slot[4].store(e.window, Ordering::Relaxed); // relaxed: stamp-guarded payload
        slot[5].store(e.cycle, Ordering::Relaxed); // relaxed: stamp-guarded payload
        slot[6].store(e.a.to_bits(), Ordering::Relaxed); // relaxed: stamp-guarded payload
        slot[7].store(e.b.to_bits(), Ordering::Relaxed); // relaxed: stamp-guarded payload
    }

    /// Reads up to `max` events with sequence numbers `>= since`, in
    /// order. Events older than the ring window are counted in
    /// [`EventBatch::dropped`]; an event still being written ends the
    /// batch early (poll again with [`EventBatch::next`]).
    pub fn read_since(&self, since: u64, max: usize) -> EventBatch {
        // ordering: acquire keeps the slot reads below from hoisting above head.
        let head = self.head.load(Ordering::Acquire);
        let oldest = head.saturating_sub(self.mask + 1);
        let start = since.max(oldest);
        let mut dropped = start - since.min(start);
        let mut events = Vec::new();
        let mut s = start;
        while s < head && events.len() < max {
            match self.read_slot(s) {
                SlotRead::Ready(e) => {
                    events.push(e);
                    s += 1;
                }
                SlotRead::NotYet => break,
                SlotRead::Overwritten => {
                    dropped += 1;
                    s += 1;
                }
            }
        }
        EventBatch {
            events,
            next: s,
            dropped,
            published: head,
        }
    }

    /// Seqlock read of one slot: stamp check, payload copy, stamp
    /// re-check behind an acquire fence.
    fn read_slot(&self, seq: u64) -> SlotRead {
        let slot = &self.slots[(seq & self.mask) as usize].0;
        let want = 2 * seq + 2;
        // ordering: acquire pairs with the writer's release stamp store.
        let s1 = slot[0].load(Ordering::Acquire);
        if s1 < want {
            return SlotRead::NotYet;
        }
        if s1 > want {
            return SlotRead::Overwritten;
        }
        // relaxed: validated by the stamp re-check behind the acquire fence below.
        let packed = slot[1].load(Ordering::Relaxed);
        let slice = slot[2].load(Ordering::Relaxed); // relaxed: stamp-validated read
        let txn = slot[3].load(Ordering::Relaxed); // relaxed: stamp-validated read
        let window = slot[4].load(Ordering::Relaxed); // relaxed: stamp-validated read
        let cycle = slot[5].load(Ordering::Relaxed); // relaxed: stamp-validated read
        let a = slot[6].load(Ordering::Relaxed); // relaxed: stamp-validated read
        let b = slot[7].load(Ordering::Relaxed); // relaxed: stamp-validated read
                                                 // ordering: acquire fence orders the payload loads before the re-check.
        A::fence(Ordering::Acquire);
        // relaxed: the fence above already orders this re-check after the loads.
        if slot[0].load(Ordering::Relaxed) != want {
            return SlotRead::Overwritten;
        }
        let Some(kind) = EventKind::from_u8((packed & 0xff) as u8) else {
            // A stamp collision after a full-ring lap (see module docs)
            // could leave mixed words; treat anything undecodable as lost.
            return SlotRead::Overwritten;
        };
        SlotRead::Ready(Event {
            seq,
            kind,
            slice,
            txn,
            window,
            cycle,
            tag: (packed >> 8) as u32,
            a: f64::from_bits(a),
            b: f64::from_bits(b),
        })
    }
}

/// How many [`EventKind::TxnComplete`] events an [`EventsTap`] buffers
/// locally before flushing them to the ring in one
/// [`EventBus::publish_batch`] call. Small enough that consumers see
/// completions within ~100 cycles of simulated time; large enough to
/// amortize the per-publish `fetch_add` to noise.
const TXN_EVENT_BATCH: usize = 64;

/// The per-session emitter: wraps a shared [`EventBus`] with the
/// causal-id bookkeeping — a [`LifecycleTap`] assigning transaction ids,
/// the current slice id, and the cycle/window counters every emitted
/// event is stamped with.
///
/// Owned by [`crate::telemetry::Telemetry`]; the session's hot loop
/// calls [`EventsTap::observe_bus`] once per cycle, which is a single
/// cold-atomic branch when the bus is disabled.
#[derive(Debug, Clone)]
pub struct EventsTap {
    bus: Arc<EventBus>,
    tap: LifecycleTap,
    /// Beats accumulated per master for the transaction in flight.
    beats: Vec<u32>,
    /// Wait-state cycles accumulated per master, same lifetime.
    waits: Vec<u32>,
    /// Completed-transaction events not yet handed to the ring. At the
    /// paper testbench's ≈ 0.7 completions/cycle, publishing each one
    /// individually makes the ring's `fetch_add` the dominant tracing
    /// cost; buffering [`TXN_EVENT_BATCH`] of them and flushing via
    /// [`EventBus::publish_batch`] amortizes it away. Every non-txn
    /// publish flushes first, so the stream stays in causal order.
    pending: Vec<Event>,
    slice: u64,
    next_txn: u64,
    cycles: u64,
    window_cycles: u64,
    /// Window index of the current cycle, tracked incrementally so the
    /// per-completion hot path never divides; refreshed whenever
    /// `cycles` reaches `cur_window_end`.
    cur_window: u64,
    /// First cycle index beyond `cur_window`.
    cur_window_end: u64,
    // Fallback windowed energy accounting, used only when no anomaly
    // detector supplies WindowVerdicts.
    win_energy: f64,
    win_cycles: u64,
    window: u64,
}

impl EventsTap {
    /// Creates a tap publishing into `bus` for a bus with `n_masters`
    /// masters; `window_cycles` must match the anomaly detector's window
    /// so window ids line up (clamped to ≥ 1).
    pub fn new(bus: Arc<EventBus>, n_masters: usize, window_cycles: u64) -> Self {
        EventsTap {
            bus,
            tap: LifecycleTap::new(n_masters),
            beats: vec![0; n_masters],
            waits: vec![0; n_masters],
            pending: Vec::with_capacity(TXN_EVENT_BATCH),
            slice: 0,
            next_txn: 0,
            cycles: 0,
            window_cycles: window_cycles.max(1),
            cur_window: 0,
            cur_window_end: 0,
            win_energy: 0.0,
            win_cycles: 0,
            window: 0,
        }
    }

    /// The shared ring this tap publishes into.
    pub fn bus(&self) -> &Arc<EventBus> {
        &self.bus
    }

    /// The current slice id stamped into emitted events.
    pub fn slice(&self) -> u64 {
        self.slice
    }

    /// Cycles observed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Transactions completed (and assigned ids) so far.
    pub fn transactions(&self) -> u64 {
        self.next_txn
    }

    /// Sets the slice id without emitting an event.
    pub fn set_slice(&mut self, slice: u64) {
        self.slice = slice;
    }

    /// Starts slice `slice`: future events carry its id, and a
    /// [`EventKind::SliceStart`] event is published.
    pub fn slice_start(&mut self, slice: u64) {
        self.flush();
        self.slice = slice;
        self.bus.publish(Event {
            seq: 0,
            kind: EventKind::SliceStart,
            slice,
            txn: 0,
            window: self.cycles / self.window_cycles,
            cycle: self.cycles,
            tag: 0,
            a: 0.0,
            b: 0.0,
        });
    }

    /// Ends the current slice, stamping `energy_j` (typically the
    /// session's cumulative energy) into a [`EventKind::SliceEnd`] event.
    pub fn slice_end(&mut self, energy_j: f64) {
        self.flush();
        self.bus.publish(Event {
            seq: 0,
            kind: EventKind::SliceEnd,
            slice: self.slice,
            txn: 0,
            window: self.cycles / self.window_cycles,
            cycle: self.cycles,
            tag: 0,
            a: energy_j,
            b: 0.0,
        });
    }

    /// Observes one cycle's wires: advances the cycle/window counters
    /// and, when the bus is enabled, runs the lifecycle tap and publishes
    /// a [`EventKind::TxnComplete`] event for any transaction that
    /// finished this cycle. Allocation-free; a cold-atomic branch when
    /// the bus is disabled.
    #[inline]
    pub fn observe_bus(&mut self, snap: &BusSnapshot) {
        let cycle_index = self.cycles;
        self.cycles += 1;
        if !self.bus.is_enabled() {
            return;
        }
        if cycle_index >= self.cur_window_end {
            // One division per window boundary instead of one per
            // completed transaction (~0.7/cycle on the paper testbench).
            self.cur_window = cycle_index / self.window_cycles;
            self.cur_window_end = (self.cur_window + 1) * self.window_cycles;
        }
        let mut completed = None;
        let beats = &mut self.beats;
        let waits = &mut self.waits;
        // Transfer-phase tap only: the request/grant scan would emit
        // events this match discards anyway.
        self.tap.observe_transfers(snap, |e| match e {
            TxnEvent::Stalled { master } => {
                if let Some(w) = waits.get_mut(master.index()) {
                    *w += 1;
                }
            }
            TxnEvent::BeatDone { master, .. } => {
                if let Some(b) = beats.get_mut(master.index()) {
                    *b += 1;
                }
            }
            TxnEvent::Completed { master } => completed = Some(master),
            TxnEvent::Requested { .. } | TxnEvent::Granted { .. } | TxnEvent::Started { .. } => {}
        });
        if let Some(master) = completed {
            let m = master.index();
            let beats_n = self.beats.get_mut(m).map_or(0, std::mem::take);
            let waits_n = self.waits.get_mut(m).map_or(0, std::mem::take);
            let txn = self.next_txn;
            self.next_txn += 1;
            self.pending.push(Event {
                seq: 0,
                kind: EventKind::TxnComplete,
                slice: self.slice,
                txn,
                window: self.cur_window,
                cycle: snap.cycle,
                tag: m as u32,
                a: f64::from(beats_n),
                b: f64::from(waits_n),
            });
            if self.pending.len() >= TXN_EVENT_BATCH {
                self.flush();
            }
        }
    }

    /// Hands any buffered [`EventKind::TxnComplete`] events to the ring.
    /// Called automatically when the buffer fills and before every
    /// non-transaction publish (slice, window, kernel events), so
    /// consumers never observe a window verdict before the transactions
    /// that fed it.
    #[inline]
    pub fn flush(&mut self) {
        if !self.pending.is_empty() {
            self.bus.publish_batch(&self.pending);
            self.pending.clear();
        }
    }

    /// Publishes the event train for one closed detection window: always
    /// [`EventKind::EnergyBooked`], plus [`EventKind::AnomalyFlagged`]
    /// when flagged and [`EventKind::BaselineUpdated`] when the window
    /// was absorbed into the baseline.
    pub fn publish_window(&mut self, v: &WindowVerdict) {
        if !self.bus.is_enabled() {
            return;
        }
        self.flush();
        self.bus.publish(Event {
            seq: 0,
            kind: EventKind::EnergyBooked,
            slice: self.slice,
            txn: 0,
            window: v.window,
            cycle: v.start_cycle,
            tag: 0,
            a: v.measured_j,
            b: v.predicted_j,
        });
        if let Some(f) = &v.flagged {
            self.bus.publish(Event {
                seq: 0,
                kind: EventKind::AnomalyFlagged,
                slice: self.slice,
                txn: 0,
                window: v.window,
                cycle: v.start_cycle,
                tag: 0,
                a: f.deviation_pct,
                b: f.z_score,
            });
        }
        if v.absorbed {
            self.bus.publish(Event {
                seq: 0,
                kind: EventKind::BaselineUpdated,
                slice: self.slice,
                txn: 0,
                window: v.window,
                cycle: v.start_cycle,
                tag: 0,
                a: v.measured_j,
                b: v.predicted_j,
            });
        }
    }

    /// Fallback windowed energy accounting for sessions without an
    /// anomaly detector: accumulates per-cycle energy and publishes an
    /// [`EventKind::EnergyBooked`] event (predicted = measured) whenever
    /// a window's worth of cycles has been booked.
    #[inline]
    pub fn observe_energy(&mut self, joules: f64) {
        if !self.bus.is_enabled() {
            return;
        }
        self.win_energy += joules;
        self.win_cycles += 1;
        if self.win_cycles >= self.window_cycles {
            let window = self.window;
            self.window += 1;
            self.flush();
            self.bus.publish(Event {
                seq: 0,
                kind: EventKind::EnergyBooked,
                slice: self.slice,
                txn: 0,
                window,
                cycle: window * self.window_cycles,
                tag: 0,
                a: self.win_energy,
                b: self.win_energy,
            });
            self.win_energy = 0.0;
            self.win_cycles = 0;
        }
    }

    /// Publishes an [`EventKind::KernelRun`] event for a hosted kernel
    /// run's statistics.
    pub fn publish_kernel(&mut self, stats: &KernelStats) {
        self.flush();
        self.bus.publish(Event {
            seq: 0,
            kind: EventKind::KernelRun,
            slice: self.slice,
            txn: 0,
            window: self.cycles / self.window_cycles,
            cycle: self.cycles,
            tag: stats.activations.min(u64::from(u32::MAX)) as u32,
            a: stats.deltas as f64,
            b: stats.signal_changes as f64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn ev(kind: EventKind, slice: u64) -> Event {
        Event {
            seq: 0,
            kind,
            slice,
            txn: 0,
            window: 0,
            cycle: 0,
            tag: 0,
            a: 1.5,
            b: -2.0,
        }
    }

    #[test]
    fn kind_discriminants_round_trip() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(EventKind::from_u8(200), None);
        // Names are distinct identifiers (the wire format keys on them).
        let mut names: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::ALL.len());
    }

    #[test]
    fn disabled_bus_publishes_nothing() {
        let bus = EventBus::with_capacity(16);
        assert!(!bus.is_enabled());
        assert_eq!(bus.publish(ev(EventKind::SliceStart, 0)), None);
        assert_eq!(bus.published(), 0);
        assert!(bus.read_since(0, 10).events.is_empty());
    }

    #[test]
    fn publish_read_round_trips_payload() {
        let bus = EventBus::with_capacity(16);
        bus.set_enabled(true);
        let e = Event {
            seq: 0,
            kind: EventKind::TxnComplete,
            slice: 7,
            txn: 42,
            window: 3,
            cycle: 1_234,
            tag: 2,
            a: 4.0,
            b: 1.0,
        };
        assert_eq!(bus.publish(e), Some(0));
        let batch = bus.read_since(0, 10);
        assert_eq!(batch.events, vec![Event { seq: 0, ..e }]);
        assert_eq!(batch.next, 1);
        assert_eq!(batch.dropped, 0);
        assert_eq!(batch.published, 1);
    }

    #[test]
    fn wraparound_drops_oldest_and_reports_it() {
        let bus = EventBus::with_capacity(8);
        bus.set_enabled(true);
        for i in 0..20 {
            bus.publish(ev(EventKind::SliceStart, i));
        }
        let batch = bus.read_since(0, 100);
        // Capacity rounds to 8: only the last 8 survive.
        assert_eq!(batch.dropped, 12);
        assert_eq!(batch.events.len(), 8);
        assert_eq!(batch.events[0].slice, 12);
        assert_eq!(batch.next, 20);
        // Resuming from the cursor yields nothing new and no drops.
        let again = bus.read_since(batch.next, 100);
        assert!(again.events.is_empty());
        assert_eq!(again.dropped, 0);
    }

    #[test]
    fn read_since_respects_max_and_resumes() {
        let bus = EventBus::with_capacity(64);
        bus.set_enabled(true);
        for i in 0..10 {
            bus.publish(ev(EventKind::EnergyBooked, i));
        }
        let first = bus.read_since(0, 4);
        assert_eq!(first.events.len(), 4);
        assert_eq!(first.next, 4);
        let rest = bus.read_since(first.next, 100);
        assert_eq!(rest.events.len(), 6);
        assert_eq!(rest.events[0].slice, 4);
    }

    #[test]
    fn concurrent_publishers_produce_every_sequence_once() {
        let bus = EventBus::shared(1 << 12);
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 500;
        thread::scope(|s| {
            for w in 0..WRITERS {
                let bus = Arc::clone(&bus);
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        bus.publish(Event {
                            seq: 0,
                            kind: EventKind::SweepPointDone,
                            slice: w,
                            txn: i,
                            window: 0,
                            cycle: 0,
                            tag: w as u32,
                            a: i as f64,
                            b: w as f64,
                        });
                    }
                });
            }
        });
        let batch = bus.read_since(0, usize::MAX);
        assert_eq!(bus.published(), WRITERS * PER_WRITER);
        assert_eq!(batch.events.len(), (WRITERS * PER_WRITER) as usize);
        assert_eq!(batch.dropped, 0);
        // Sequence numbers are the natural numbers, each exactly once.
        for (i, e) in batch.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        // Each writer's events arrive in its program order.
        for w in 0..WRITERS {
            let txns: Vec<u64> = batch
                .events
                .iter()
                .filter(|e| e.slice == w)
                .map(|e| e.txn)
                .collect();
            assert_eq!(txns, (0..PER_WRITER).collect::<Vec<u64>>());
            // And the payload words stayed attached to their event.
            assert!(batch
                .events
                .iter()
                .filter(|e| e.slice == w)
                .all(|e| e.b == w as f64 && e.tag == w as u32));
        }
    }

    #[test]
    fn json_object_shape_is_stable() {
        let e = Event {
            seq: 9,
            kind: EventKind::AnomalyFlagged,
            slice: 1,
            txn: 0,
            window: 27,
            cycle: 27_000,
            tag: 0,
            a: 96.5,
            b: 31.2,
        };
        let line = e.to_json_obj();
        assert_eq!(
            line,
            "{\"event\":\"AnomalyFlagged\",\"seq\":9,\"slice\":1,\"txn\":0,\"window\":27,\"cycle\":27000,\"tag\":0,\"a\":96.5,\"b\":31.2}"
        );
        let nan = Event { a: f64::NAN, ..e };
        assert!(nan.to_json_obj().contains("\"a\":null"));
    }

    #[test]
    fn capacity_is_clamped_and_rounded() {
        assert_eq!(EventBus::with_capacity(0).capacity(), 8);
        assert_eq!(EventBus::with_capacity(100).capacity(), 128);
        assert_eq!(EventBus::with_capacity(1 << 16).capacity(), 1 << 16);
        // The verification constructor relaxes only the lower clamp.
        let tiny = EventBus::for_verification(0, RingMutation::None);
        assert_eq!(tiny.capacity(), 2);
        assert_eq!(tiny.mutation, RingMutation::None);
    }

    #[test]
    fn payload_floats_round_trip_bit_exactly() {
        // The ring stores f64 payloads as raw bits; NaN payloads (and any
        // other bit pattern) must come back bit-identical, which also
        // pins that the genericization kept the store/load paths exact.
        let bus = EventBus::with_capacity(8);
        bus.set_enabled(true);
        let quiet_nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let neg_zero = -0.0_f64;
        bus.publish(Event {
            a: quiet_nan,
            b: neg_zero,
            ..ev(EventKind::KernelRun, 1)
        });
        let got = bus.read_since(0, 4).events;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].a.to_bits(), 0x7ff8_0000_dead_beef);
        assert_eq!(got[0].b.to_bits(), (-0.0_f64).to_bits());
    }

    #[test]
    fn seeded_mutations_are_invisible_without_concurrency() {
        // The mutated write paths break the protocol only under an
        // adversarial schedule; single-threaded use still round-trips,
        // which keeps the mutant directions honest (the model checker,
        // not a broken serial path, is what flags them).
        for mutation in [
            RingMutation::PublishBeforePayload,
            RingMutation::NoWritingStamp,
        ] {
            let bus = EventBus::for_verification(4, mutation);
            bus.set_enabled(true);
            for i in 0..6 {
                bus.publish(ev(EventKind::SliceStart, i));
            }
            let batch = bus.read_since(0, 16);
            assert_eq!(batch.events.len(), 4, "{mutation:?}");
            assert_eq!(batch.dropped, 2, "{mutation:?}");
            assert_eq!(batch.events[0].slice, 2, "{mutation:?}");
        }
    }

    #[test]
    fn batch_publish_interleaves_with_singles() {
        let bus = EventBus::with_capacity(64);
        bus.set_enabled(true);
        assert_eq!(bus.publish_batch(&[]), None, "empty batch is a no-op");

        assert_eq!(bus.publish(ev(EventKind::SliceStart, 0)), Some(0));
        let batch: Vec<Event> = (0..7)
            .map(|i| Event {
                txn: i,
                ..ev(EventKind::TxnComplete, 0)
            })
            .collect();
        assert_eq!(
            bus.publish_batch(&batch),
            Some(1),
            "batch starts after the single"
        );
        assert_eq!(bus.publish(ev(EventKind::SliceEnd, 0)), Some(8));

        let got = bus.read_since(0, 64);
        assert_eq!(got.events.len(), 9);
        assert_eq!(got.dropped, 0);
        for (i, e) in got.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "sequence numbers are contiguous");
        }
        assert_eq!(got.events[0].kind, EventKind::SliceStart);
        for (i, e) in got.events[1..8].iter().enumerate() {
            assert_eq!(e.kind, EventKind::TxnComplete);
            assert_eq!(e.txn, i as u64, "batch order is preserved");
        }
        assert_eq!(got.events[8].kind, EventKind::SliceEnd);

        bus.set_enabled(false);
        assert_eq!(
            bus.publish_batch(&batch),
            None,
            "disabled bus drops batches"
        );
        assert_eq!(bus.published(), 9);
    }

    #[test]
    fn tap_buffers_completions_and_flushes_before_slice_events() {
        use ahbpower_ahb::{HBurst, HResp, HSize, HTrans, MasterId};
        let snap = |cycle: u64, htrans: HTrans| BusSnapshot {
            cycle,
            haddr: 0x10,
            htrans,
            hwrite: true,
            hsize: HSize::Word,
            hburst: HBurst::Single,
            hwdata: 0,
            hrdata: 0,
            hready: true,
            hresp: HResp::Okay,
            hmaster: MasterId(0),
            hmastlock: false,
            hbusreq: 1,
            hgrant: 1,
            hsel: 1,
        };
        let bus = EventBus::shared(256);
        bus.set_enabled(true);
        let mut tap = EventsTap::new(Arc::clone(&bus), 1, 1_000);
        tap.slice_start(0);
        tap.observe_bus(&snap(0, HTrans::NonSeq));
        tap.observe_bus(&snap(1, HTrans::Idle));
        assert_eq!(tap.transactions(), 1, "the single-beat write completed");
        assert_eq!(
            bus.published(),
            1,
            "the completion stays buffered in the tap until a flush point"
        );
        tap.slice_end(1.0);
        let kinds: Vec<EventKind> = bus
            .read_since(0, 64)
            .events
            .iter()
            .map(|e| e.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::SliceStart,
                EventKind::TxnComplete,
                EventKind::SliceEnd
            ],
            "buffered completions land before the slice-end marker"
        );
    }

    #[test]
    fn batch_longer_than_capacity_keeps_newest() {
        let bus = EventBus::with_capacity(8);
        bus.set_enabled(true);
        let batch: Vec<Event> = (0..20)
            .map(|i| Event {
                txn: i,
                ..ev(EventKind::TxnComplete, 0)
            })
            .collect();
        assert_eq!(bus.publish_batch(&batch), Some(0));
        let got = bus.read_since(0, 64);
        assert_eq!(got.dropped, 12, "overwritten entries count as dropped");
        let txns: Vec<u64> = got.events.iter().map(|e| e.txn).collect();
        assert_eq!(txns, (12..20).collect::<Vec<u64>>(), "newest survive");
    }
}
