//! A small, allocation-conscious metrics registry.
//!
//! Metrics are registered once (idempotently, keyed by name + label set)
//! and updated through integer handles, so steady-state updates touch a
//! `Vec` slot and nothing else. The registry is a passive store: the
//! exporters in [`crate::telemetry::export`] render its contents.

use ahbpower_ahb::CycleHistogram;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub(crate) usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(pub(crate) usize);

/// Name, help text and label set shared by every metric kind.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricMeta {
    /// Metric name in Prometheus style (`ahb_master_wait_cycles_total`).
    pub name: String,
    /// One-line human description, exported as `# HELP`.
    pub help: String,
    /// Label key/value pairs (`[("master", "1")]`).
    pub labels: Vec<(String, String)>,
}

impl MetricMeta {
    fn matches(&self, name: &str, labels: &[(&str, &str)]) -> bool {
        self.name == name
            && self.labels.len() == labels.len()
            && self
                .labels
                .iter()
                .zip(labels)
                .all(|((k, v), (lk, lv))| k == lk && v == lv)
    }
}

/// A monotonically increasing value (cycle counts, energy totals).
#[derive(Debug, Clone, PartialEq)]
pub struct Counter {
    /// Identity of the metric.
    pub meta: MetricMeta,
    /// Current value. Energy totals make this an `f64` rather than `u64`.
    pub value: f64,
}

/// A point-in-time value (utilization ratios, rates).
#[derive(Debug, Clone, PartialEq)]
pub struct Gauge {
    /// Identity of the metric.
    pub meta: MetricMeta,
    /// Current value.
    pub value: f64,
}

/// A fixed-bucket distribution (latencies, burst lengths).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Identity of the metric.
    pub meta: MetricMeta,
    /// The underlying bucket store.
    pub hist: CycleHistogram,
}

impl Histogram {
    /// Folds another histogram of the same bucket layout into this one
    /// (see [`CycleHistogram::merge`]). The metric identity (`meta`) of
    /// `self` wins; only the sample population merges.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        self.hist.merge(&other.hist);
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn label_refs(labels: &[(String, String)]) -> Vec<(&str, &str)> {
    labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect()
}

/// Whether `name` is a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Rewrites an arbitrary string into a valid metric name: every invalid
/// character becomes `_`, and a leading digit gains a `_` prefix. An
/// empty input becomes `"_"`. Use this for names built from untrusted
/// input (scenario labels, file names) before registering them.
pub fn sanitize_metric_name(name: &str) -> String {
    if name.is_empty() {
        return "_".to_string();
    }
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Rejects an invalid metric name with an error naming the offender.
fn check_metric_name(name: &str) {
    assert!(
        is_valid_metric_name(name),
        "invalid metric name {name:?}: must match [a-zA-Z_:][a-zA-Z0-9_:]* \
         (sanitize_metric_name() rewrites arbitrary strings)"
    );
}

/// The registry: flat stores per metric kind, addressed by typed handles.
///
/// # Examples
///
/// ```
/// use ahbpower::telemetry::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// let c = reg.counter("ahb_cycles_total", "Bus cycles simulated.", &[]);
/// reg.add(c, 100.0);
/// reg.add(c, 20.0);
/// assert_eq!(reg.counters()[0].value, 120.0);
/// // Registration is idempotent: same name + labels, same handle.
/// assert_eq!(reg.counter("ahb_cycles_total", "", &[]), c);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<Counter>,
    gauges: Vec<Gauge>,
    histograms: Vec<Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or finds) a counter for `name` + `labels`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid Prometheus metric name
    /// ([`is_valid_metric_name`]); pass untrusted names through
    /// [`sanitize_metric_name`] first.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> CounterId {
        check_metric_name(name);
        if let Some(i) = self
            .counters
            .iter()
            .position(|c| c.meta.matches(name, labels))
        {
            return CounterId(i);
        }
        self.counters.push(Counter {
            meta: MetricMeta {
                name: name.to_string(),
                help: help.to_string(),
                labels: owned_labels(labels),
            },
            value: 0.0,
        });
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) a gauge for `name` + `labels`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid (see [`MetricsRegistry::counter`]).
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> GaugeId {
        check_metric_name(name);
        if let Some(i) = self
            .gauges
            .iter()
            .position(|g| g.meta.matches(name, labels))
        {
            return GaugeId(i);
        }
        self.gauges.push(Gauge {
            meta: MetricMeta {
                name: name.to_string(),
                help: help.to_string(),
                labels: owned_labels(labels),
            },
            value: 0.0,
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) a histogram with the given bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid (see [`MetricsRegistry::counter`])
    /// or `bounds` is empty / not strictly increasing.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> HistogramId {
        check_metric_name(name);
        if let Some(i) = self
            .histograms
            .iter()
            .position(|h| h.meta.matches(name, labels))
        {
            return HistogramId(i);
        }
        self.histograms.push(Histogram {
            meta: MetricMeta {
                name: name.to_string(),
                help: help.to_string(),
                labels: owned_labels(labels),
            },
            hist: CycleHistogram::new(bounds),
        });
        HistogramId(self.histograms.len() - 1)
    }

    /// Increments a counter by 1.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].value += 1.0;
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: f64) {
        self.counters[id.0].value += delta;
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].value = value;
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].hist.observe(value);
    }

    /// Replaces a histogram's contents with an externally accumulated one
    /// (used to publish analyzer histograms without re-observing).
    pub fn set_histogram(&mut self, id: HistogramId, hist: &CycleHistogram) {
        self.histograms[id.0].hist = hist.clone();
    }

    /// All counters, in registration order.
    pub fn counters(&self) -> &[Counter] {
        &self.counters
    }

    /// All gauges, in registration order.
    pub fn gauges(&self) -> &[Gauge] {
        &self.gauges
    }

    /// All histograms, in registration order.
    pub fn histograms(&self) -> &[Histogram] {
        &self.histograms
    }

    /// Total number of registered metrics across all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a counter's value by name and labels (test/report helper).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.counters
            .iter()
            .find(|c| c.meta.matches(name, labels))
            .map(|c| c.value)
    }

    /// Looks up a gauge's value by name and labels (test/report helper).
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.meta.matches(name, labels))
            .map(|g| g.value)
    }

    /// Folds another registry into this one, metric by metric, keyed by
    /// (name, label set): counter and gauge values *add*, histograms
    /// merge bucket-wise ([`Histogram::merge`]). Metrics absent here are
    /// registered first (help text and bucket bounds copied from
    /// `other`), so merging N per-shard registries into an empty one
    /// yields the fleet-wide aggregate. Gauges add because every gauge
    /// this workspace exports is an extensive per-shard quantity (ring
    /// occupancy, cursor lag, degraded count); callers that want a
    /// different composition (max, last) overwrite those gauges after
    /// the merge.
    ///
    /// # Panics
    ///
    /// Panics if a histogram exists on both sides with different bucket
    /// bounds.
    pub fn merge_sum(&mut self, other: &MetricsRegistry) {
        for c in &other.counters {
            let refs = label_refs(&c.meta.labels);
            let id = self.counter(&c.meta.name, &c.meta.help, &refs);
            self.counters[id.0].value += c.value;
        }
        for g in &other.gauges {
            let refs = label_refs(&g.meta.labels);
            let id = self.gauge(&g.meta.name, &g.meta.help, &refs);
            self.gauges[id.0].value += g.value;
        }
        for h in &other.histograms {
            let refs = label_refs(&h.meta.labels);
            let id = self.histogram(&h.meta.name, &h.meta.help, &refs, h.hist.bounds());
            self.histograms[id.0].hist.merge(&h.hist);
        }
    }

    /// Copies every metric of `other` into this registry with one extra
    /// label appended (e.g. `("shard", "3")`), preserving values and
    /// bucket contents. This is the per-shard *breakdown* companion to
    /// [`MetricsRegistry::merge_sum`]: the aggregate keeps the plain
    /// names, the breakdown keeps per-shard identity side by side.
    pub fn merge_labeled(&mut self, other: &MetricsRegistry, key: &str, value: &str) {
        for c in &other.counters {
            let mut refs = label_refs(&c.meta.labels);
            refs.push((key, value));
            let id = self.counter(&c.meta.name, &c.meta.help, &refs);
            self.counters[id.0].value += c.value;
        }
        for g in &other.gauges {
            let mut refs = label_refs(&g.meta.labels);
            refs.push((key, value));
            let id = self.gauge(&g.meta.name, &g.meta.help, &refs);
            self.gauges[id.0].value = g.value;
        }
        for h in &other.histograms {
            let mut refs = label_refs(&h.meta.labels);
            refs.push((key, value));
            let id = self.histogram(&h.meta.name, &h.meta.help, &refs, h.hist.bounds());
            self.histograms[id.0].hist.merge(&h.hist);
        }
    }

    /// Looks up a histogram by name and labels (test/report helper).
    pub fn histogram_by_name(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&CycleHistogram> {
        self.histograms
            .iter()
            .find(|h| h.meta.matches(name, labels))
            .map(|h| &h.hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_name_validation() {
        assert!(is_valid_metric_name("ahb_cycles_total"));
        assert!(is_valid_metric_name("_private:scoped"));
        assert!(!is_valid_metric_name(""));
        assert!(!is_valid_metric_name("9lives"));
        assert!(!is_valid_metric_name("has space"));
        assert!(!is_valid_metric_name("has-dash"));
        assert!(!is_valid_metric_name("unicode_µ"));
    }

    #[test]
    fn sanitize_rewrites_into_valid_names() {
        for raw in ["", "9lives", "paper testbench", "a-b.c/d", "µW", "ok_name"] {
            let cleaned = sanitize_metric_name(raw);
            assert!(
                is_valid_metric_name(&cleaned),
                "{raw:?} -> {cleaned:?} must be valid"
            );
        }
        assert_eq!(sanitize_metric_name("a-b.c/d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("ok_name"), "ok_name");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn registering_an_invalid_name_is_rejected() {
        let mut reg = MetricsRegistry::new();
        reg.counter("has space", "nope", &[]);
    }

    #[test]
    fn counters_register_idempotently() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("x_total", "X.", &[("master", "0")]);
        let b = reg.counter("x_total", "X.", &[("master", "1")]);
        let a2 = reg.counter("x_total", "ignored on re-registration", &[("master", "0")]);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        reg.inc(a);
        reg.add(b, 2.5);
        assert_eq!(reg.counter_value("x_total", &[("master", "0")]), Some(1.0));
        assert_eq!(reg.counter_value("x_total", &[("master", "1")]), Some(2.5));
        assert_eq!(reg.counter_value("x_total", &[]), None);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn gauges_overwrite() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("ratio", "A ratio.", &[]);
        reg.set(g, 0.25);
        reg.set(g, 0.5);
        assert_eq!(reg.gauge_value("ratio", &[]), Some(0.5));
    }

    #[test]
    fn histograms_observe_and_import() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat", "Latency.", &[], &[1, 4]);
        reg.observe(h, 0);
        reg.observe(h, 9);
        let stored = reg.histogram_by_name("lat", &[]).unwrap();
        assert_eq!(stored.count(), 2);
        assert_eq!(stored.bucket_counts(), &[1, 0, 1]);

        let mut external = CycleHistogram::new(&[2]);
        external.observe(1);
        reg.set_histogram(h, &external);
        assert_eq!(reg.histogram_by_name("lat", &[]).unwrap().count(), 1);
    }

    fn shard_registry(energy: f64, lag: f64, latencies: &[u64]) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("power_total_energy_joules", "Energy.", &[]);
        reg.add(c, energy);
        let g = reg.gauge("serve_events_cursor_lag", "Lag.", &[]);
        reg.set(g, lag);
        let h = reg.histogram(
            "serve_stage_duration_microseconds",
            "Stage.",
            &[],
            &[10, 100],
        );
        for &v in latencies {
            reg.observe(h, v);
        }
        reg
    }

    #[test]
    fn merge_sum_aggregates_counters_gauges_and_histograms() {
        let a = shard_registry(1.5, 2.0, &[5, 50]);
        let b = shard_registry(2.25, 3.0, &[5, 500]);
        let mut merged = MetricsRegistry::new();
        merged.merge_sum(&a);
        merged.merge_sum(&b);
        assert_eq!(
            merged.counter_value("power_total_energy_joules", &[]),
            Some(3.75)
        );
        assert_eq!(
            merged.gauge_value("serve_events_cursor_lag", &[]),
            Some(5.0)
        );
        let hist = merged
            .histogram_by_name("serve_stage_duration_microseconds", &[])
            .unwrap();
        assert_eq!(hist.count(), 4);
        assert_eq!(hist.bucket_counts(), &[2, 1, 1]);
        assert_eq!(hist.sum(), 560);
        // Quantiles of the merged histogram describe the union population.
        assert_eq!(hist.quantile(1.0), 100.0);
        // Merging is label-aware: a labelled twin stays separate.
        let mut labelled = MetricsRegistry::new();
        let c = labelled.counter("power_total_energy_joules", "Energy.", &[("master", "0")]);
        labelled.add(c, 9.0);
        merged.merge_sum(&labelled);
        assert_eq!(
            merged.counter_value("power_total_energy_joules", &[]),
            Some(3.75),
            "unlabelled aggregate must not absorb the labelled twin"
        );
        assert_eq!(
            merged.counter_value("power_total_energy_joules", &[("master", "0")]),
            Some(9.0)
        );
    }

    #[test]
    fn merge_labeled_keeps_per_shard_breakdowns() {
        let a = shard_registry(1.0, 1.0, &[5]);
        let b = shard_registry(2.0, 4.0, &[50]);
        let mut plane = MetricsRegistry::new();
        plane.merge_sum(&a);
        plane.merge_sum(&b);
        plane.merge_labeled(&a, "shard", "0");
        plane.merge_labeled(&b, "shard", "1");
        assert_eq!(
            plane.counter_value("power_total_energy_joules", &[]),
            Some(3.0)
        );
        assert_eq!(
            plane.counter_value("power_total_energy_joules", &[("shard", "0")]),
            Some(1.0)
        );
        assert_eq!(
            plane.counter_value("power_total_energy_joules", &[("shard", "1")]),
            Some(2.0)
        );
        // Labelled gauges keep the shard's own value, not a sum.
        assert_eq!(
            plane.gauge_value("serve_events_cursor_lag", &[("shard", "1")]),
            Some(4.0)
        );
        assert_eq!(
            plane
                .histogram_by_name("serve_stage_duration_microseconds", &[("shard", "0")])
                .unwrap()
                .count(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_sum_rejects_mismatched_histogram_bounds() {
        let mut a = MetricsRegistry::new();
        a.histogram("lat", "L.", &[], &[1, 2]);
        let mut b = MetricsRegistry::new();
        b.histogram("lat", "L.", &[], &[1, 3]);
        a.merge_sum(&b);
    }
}
