//! Atomics shim: the small trait surface the structured event ring's
//! seqlock protocol is written against, so the *same* protocol code can
//! run over real `std::sync::atomic` words in production and over the
//! analyzer's model-checked cells (`repro analyze --deep`) during
//! verification.
//!
//! The shim is deliberately minimal — exactly the operations the ring
//! uses (`load`, `store`, `fetch_add`, fences, and a bool flag) and
//! nothing more, so a model implementation has a small, closed set of
//! yield points to schedule around. [`StdAtomics`] is the production
//! implementation: every method is an `#[inline]` delegation to the
//! corresponding `std` intrinsic wrapper, so the generic ring
//! monomorphizes to exactly the code it replaced (pinned by the
//! allocation-free and bit-identity tests in `crates/bench`).

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};

/// One 64-bit atomic word, as used by the ring's stamp/payload slots and
/// head cursor. Implementations must be shareable across threads.
pub trait AtomicU64Cell: Send + Sync {
    /// Creates a cell holding `v`.
    fn new(v: u64) -> Self;
    /// Atomic load with the given ordering.
    fn load(&self, order: Ordering) -> u64;
    /// Atomic store with the given ordering.
    fn store(&self, v: u64, order: Ordering);
    /// Atomic fetch-and-add with the given ordering, returning the
    /// previous value.
    fn fetch_add(&self, v: u64, order: Ordering) -> u64;
}

/// One boolean atomic flag, as used by the ring's cold `enabled` gate.
pub trait AtomicBoolCell: Send + Sync {
    /// Creates a flag holding `v`.
    fn new(v: bool) -> Self;
    /// Atomic load with the given ordering.
    fn load(&self, order: Ordering) -> bool;
    /// Atomic store with the given ordering.
    fn store(&self, v: bool, order: Ordering);
}

/// The atomics family a [`crate::telemetry::GenericEventBus`] is generic
/// over: a 64-bit word type, a boolean flag type, and a memory fence.
pub trait Atomics: 'static {
    /// The 64-bit atomic word type.
    type U64: AtomicU64Cell;
    /// The boolean atomic flag type.
    type Bool: AtomicBoolCell;
    /// A memory fence with the given ordering.
    fn fence(order: Ordering);
}

/// The production [`Atomics`] implementation: plain `std::sync::atomic`
/// types, zero-cost by monomorphization.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdAtomics;

impl AtomicU64Cell for AtomicU64 {
    #[inline]
    fn new(v: u64) -> Self {
        AtomicU64::new(v)
    }

    #[inline]
    fn load(&self, order: Ordering) -> u64 {
        AtomicU64::load(self, order)
    }

    #[inline]
    fn store(&self, v: u64, order: Ordering) {
        AtomicU64::store(self, v, order)
    }

    #[inline]
    fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        AtomicU64::fetch_add(self, v, order)
    }
}

impl AtomicBoolCell for AtomicBool {
    #[inline]
    fn new(v: bool) -> Self {
        AtomicBool::new(v)
    }

    #[inline]
    fn load(&self, order: Ordering) -> bool {
        AtomicBool::load(self, order)
    }

    #[inline]
    fn store(&self, v: bool, order: Ordering) {
        AtomicBool::store(self, v, order)
    }
}

impl Atomics for StdAtomics {
    type U64 = AtomicU64;
    type Bool = AtomicBool;

    #[inline]
    fn fence(order: Ordering) {
        fence(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_cells_behave_like_their_std_types() {
        let w = <AtomicU64 as AtomicU64Cell>::new(5);
        assert_eq!(AtomicU64Cell::load(&w, Ordering::SeqCst), 5);
        AtomicU64Cell::store(&w, 9, Ordering::SeqCst);
        assert_eq!(AtomicU64Cell::fetch_add(&w, 2, Ordering::SeqCst), 9);
        assert_eq!(AtomicU64Cell::load(&w, Ordering::SeqCst), 11);

        let f = <AtomicBool as AtomicBoolCell>::new(false);
        assert!(!AtomicBoolCell::load(&f, Ordering::SeqCst));
        AtomicBoolCell::store(&f, true, Ordering::SeqCst);
        assert!(AtomicBoolCell::load(&f, Ordering::SeqCst));
        StdAtomics::fence(Ordering::SeqCst);
    }
}
