//! Named wall-clock spans for instrumented hot loops.
//!
//! [`SpanSet`] is the analysis-layer sibling of the kernel's
//! [`ahbpower_sim::KernelProfile`]: a flat table of [`SpanStat`]
//! accumulators addressed by [`SpanId`] handles, so timing a span on the
//! hot path costs two `Instant::now()` calls and a few additions.

use std::time::{Duration, Instant};

use ahbpower_sim::SpanStat;

/// Handle to a registered span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// A set of named span accumulators.
///
/// # Examples
///
/// ```
/// use ahbpower::telemetry::SpanSet;
///
/// let mut spans = SpanSet::new();
/// let work = spans.register("observe");
/// let t = spans.start();
/// // ... hot work ...
/// spans.stop(work, t);
/// assert_eq!(spans.stat(work).count, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpanSet {
    names: Vec<String>,
    stats: Vec<SpanStat>,
}

impl SpanSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SpanSet::default()
    }

    /// Registers (or finds) a span by name.
    pub fn register(&mut self, name: &str) -> SpanId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return SpanId(i);
        }
        self.names.push(name.to_string());
        self.stats.push(SpanStat::default());
        SpanId(self.names.len() - 1)
    }

    /// Captures the current instant; pair with [`SpanSet::stop`].
    #[inline]
    pub fn start(&self) -> Instant {
        Instant::now()
    }

    /// Closes a span opened by [`SpanSet::start`].
    #[inline]
    pub fn stop(&mut self, id: SpanId, started: Instant) {
        self.stats[id.0].record(started.elapsed());
    }

    /// Folds an externally measured duration into a span.
    #[inline]
    pub fn record(&mut self, id: SpanId, elapsed: Duration) {
        self.stats[id.0].record(elapsed);
    }

    /// The accumulator for one span.
    pub fn stat(&self, id: SpanId) -> &SpanStat {
        &self.stats[id.0]
    }

    /// `(name, stat)` rows in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SpanStat)> {
        self.names.iter().map(String::as_str).zip(self.stats.iter())
    }

    /// Number of registered spans.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no spans are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_register_idempotently_and_accumulate() {
        let mut s = SpanSet::new();
        let a = s.register("observe");
        assert_eq!(s.register("observe"), a);
        let b = s.register("export");
        assert_ne!(a, b);
        s.record(a, Duration::from_micros(3));
        s.record(a, Duration::from_micros(1));
        assert_eq!(s.stat(a).count, 2);
        assert_eq!(s.stat(a).total, Duration::from_micros(4));
        assert_eq!(s.stat(b).count, 0);
        let names: Vec<&str> = s.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["observe", "export"]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn start_stop_measures_something() {
        let mut s = SpanSet::new();
        let id = s.register("tick");
        let t = s.start();
        s.stop(id, t);
        assert_eq!(s.stat(id).count, 1);
    }
}
