//! Running the bus + instrumentation on the discrete-event kernel.
//!
//! The paper's executable specification lives inside SystemC; this adapter
//! plays the same role with `ahbpower-sim`: the AHB system becomes a clocked
//! process, the power monitor a second process sensitive to the same clock —
//! mirroring the paper's "further specific module" (global model) topology.

use std::cell::RefCell;
use std::rc::Rc;

use ahbpower_ahb::AhbBus;
use ahbpower_sim::{Kernel, SimError, SimTime};

use crate::session::PowerSession;

/// The result of a kernel-hosted run.
#[derive(Debug)]
pub struct KernelRun {
    /// The kernel (inspect time/stats or continue running).
    pub kernel: Kernel,
    /// The bus, extracted back out of the kernel processes.
    pub bus: Rc<RefCell<AhbBus>>,
    /// The power session, if instrumentation was attached.
    pub session: Option<Rc<RefCell<PowerSession>>>,
}

/// Mounts `bus` as a clocked process on a fresh kernel and runs it for
/// `cycles` clock cycles of `period`. When `session` is provided, a second
/// process — the paper's separate power-analysis module — observes every
/// cycle's snapshot.
///
/// # Errors
///
/// Propagates [`SimError`] from the kernel (delta-cycle overflow).
///
/// # Examples
///
/// ```
/// use ahbpower::{run_on_kernel, AnalysisConfig, PowerSession};
/// use ahbpower_ahb::{AddressMap, AhbBusBuilder, MemorySlave, Op, ScriptedMaster};
/// use ahbpower_sim::SimTime;
///
/// let bus = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
///     .master(Box::new(ScriptedMaster::new(vec![Op::write(0x0, 1)])))
///     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
///     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
///     .build()?;
/// let cfg = AnalysisConfig { n_masters: 1, n_slaves: 2, ..AnalysisConfig::paper_testbench() };
/// let run = run_on_kernel(bus, Some(PowerSession::new(&cfg)), 20, SimTime::from_ns(10))?;
/// assert_eq!(run.kernel.now(), SimTime::from_ns(200));
/// assert!(run.session.unwrap().borrow().total_energy() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_on_kernel(
    bus: AhbBus,
    session: Option<PowerSession>,
    cycles: u64,
    period: SimTime,
) -> Result<KernelRun, SimError> {
    run_on_kernel_profiled(bus, session, cycles, period, false)
}

/// Like [`run_on_kernel`], with opt-in wall-clock profiling of the kernel
/// hot loop: when `profile` is true, the returned kernel carries a
/// [`ahbpower_sim::KernelProfile`] (see [`ahbpower_sim::Kernel::profile`])
/// with per-delta-cycle and per-process timing, ready to publish through
/// [`crate::telemetry::Telemetry::record_kernel`].
///
/// # Errors
///
/// Propagates [`SimError`] from the kernel (delta-cycle overflow).
pub fn run_on_kernel_profiled(
    bus: AhbBus,
    session: Option<PowerSession>,
    cycles: u64,
    period: SimTime,
    profile: bool,
) -> Result<KernelRun, SimError> {
    let mut kernel = Kernel::new();
    if profile {
        kernel.enable_profiling();
    }
    let clk = kernel.clock("hclk", period);
    let bus = Rc::new(RefCell::new(bus));
    let session = session.map(|s| Rc::new(RefCell::new(s)));
    // A broadcast "snapshot ready" signal: the bus process bumps it each
    // cycle; the monitor process is sensitive to it (global-model topology).
    let snap_seq = kernel.signal("snapshot_seq", 0u64);
    {
        let bus = Rc::clone(&bus);
        kernel.process("ahb_bus", &[clk.id()], move |ctx| {
            if ctx.posedge(clk) {
                bus.borrow_mut().step();
                let n = ctx.read(snap_seq);
                ctx.write(snap_seq, n + 1);
            }
        });
    }
    if let Some(sess) = &session {
        let bus = Rc::clone(&bus);
        let sess = Rc::clone(sess);
        kernel.process("power_monitor", &[snap_seq.id()], move |ctx| {
            if ctx.changed(snap_seq) {
                let b = bus.borrow();
                sess.borrow_mut().observe(b.snapshot());
            }
        });
    }
    kernel.run_until(period * cycles)?;
    Ok(KernelRun {
        kernel,
        bus,
        session,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use ahbpower_ahb::{AddressMap, AhbBusBuilder, MemorySlave, Op, ScriptedMaster};

    fn bus() -> AhbBus {
        AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::write(0x0, 0xAAAA_5555),
                Op::read(0x0),
            ])))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .build()
            .unwrap()
    }

    #[test]
    fn kernel_run_executes_cycles() {
        let run = run_on_kernel(bus(), None, 50, SimTime::from_ns(10)).unwrap();
        assert_eq!(run.kernel.now(), SimTime::from_ns(500));
        // 50 posedges -> 50 bus cycles.
        assert_eq!(run.bus.borrow().stats().cycles, 50);
        assert!(run.session.is_none());
    }

    #[test]
    fn profiled_kernel_run_carries_a_profile() {
        let run = run_on_kernel_profiled(bus(), None, 20, SimTime::from_ns(10), true).unwrap();
        let p = run.kernel.profile().expect("profiling was requested");
        assert!(p.delta.count > 0);
        let unprofiled = run_on_kernel(bus(), None, 20, SimTime::from_ns(10)).unwrap();
        assert!(unprofiled.kernel.profile().is_none());
    }

    #[test]
    fn kernel_run_with_monitor_matches_direct_run() {
        let cfg = AnalysisConfig {
            n_masters: 1,
            n_slaves: 2,
            ..AnalysisConfig::paper_testbench()
        };
        let run = run_on_kernel(
            bus(),
            Some(PowerSession::new(&cfg)),
            30,
            SimTime::from_ns(10),
        )
        .unwrap();
        let kernel_energy = run.session.as_ref().unwrap().borrow().total_energy();
        // Direct (kernel-less) execution of the same system.
        let mut direct_bus = bus();
        let mut direct = PowerSession::new(&cfg);
        direct.run(&mut direct_bus, 30);
        let direct_energy = direct.total_energy();
        assert!(kernel_energy > 0.0);
        assert!(
            (kernel_energy - direct_energy).abs() < 1e-12 * direct_energy.max(1e-30),
            "kernel-hosted and direct runs must agree: {kernel_energy} vs {direct_energy}"
        );
    }
}
