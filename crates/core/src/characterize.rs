//! Macromodel characterization against gate level (paper Section 5.1).
//!
//! The authors validated their macromodels with SIS gate-level simulations;
//! here the `ahbpower-gate` crate plays SIS: each sub-block is synthesized,
//! swept over Hamming distances, and the macromodel coefficients are fitted
//! by least squares. The returned [`ModelValidation`] compares *measured*
//! energy to both the paper-form (analytic) and the fitted model.

use ahbpower_gate::{
    measure_arbiter, priority_arbiter, sweep_decoder, sweep_mux_data, sweep_mux_select, LogicSim,
    SplitMix64,
};

use crate::macromodel::{fit_linear, ArbiterModel, DecoderModel, LinearFit, MuxModel, TechParams};

/// One point of a validation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationPoint {
    /// The swept quantity (input HD for decoder/mux sweeps; request
    /// probability for the arbiter sweep).
    pub x: f64,
    /// Gate-level measured energy, joules.
    pub measured: f64,
    /// Paper-form (analytic) prediction, joules.
    pub paper: f64,
    /// Fitted-model prediction, joules.
    pub fitted: f64,
}

/// Outcome of characterizing one sub-block.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelValidation {
    /// Which block was characterized.
    pub block: String,
    /// The sweep points.
    pub points: Vec<ValidationPoint>,
    /// The least-squares fit used for the fitted model.
    pub fit: LinearFit,
    /// Mean |relative error| of the paper-form model.
    pub mean_rel_err_paper: f64,
    /// Mean |relative error| of the fitted model.
    pub mean_rel_err_fit: f64,
}

fn mean_rel_err(points: &[ValidationPoint], pick: impl Fn(&ValidationPoint) -> f64) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for p in points {
        if p.measured > 0.0 {
            sum += ((pick(p) - p.measured) / p.measured).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Characterizes a one-hot decoder with `n_outputs` outputs: exhaustive
/// gate-level sweep, linear fit of energy vs. HD_IN, and comparison with
/// the paper's closed-form model.
///
/// # Panics
///
/// Panics if `n_outputs < 2`.
///
/// # Examples
///
/// ```
/// use ahbpower::{fit_decoder_model, TechParams};
///
/// let (model, validation) = fit_decoder_model(4, &TechParams::default());
/// assert!(validation.mean_rel_err_fit < 0.25);
/// assert!(model.energy(1) > 0.0);
/// ```
pub fn fit_decoder_model(n_outputs: usize, tech: &TechParams) -> (DecoderModel, ModelValidation) {
    let sweep = sweep_decoder(n_outputs, tech);
    let xy: Vec<(f64, f64)> = sweep
        .iter()
        .map(|p| (f64::from(p.hd_in), p.energy))
        .collect();
    let fit = fit_linear(&xy);
    let fitted = DecoderModel::from_fit(n_outputs, fit.slope, fit.intercept.max(0.0));
    let paper = DecoderModel::from_paper(n_outputs, tech);
    let points: Vec<ValidationPoint> = sweep
        .iter()
        .map(|p| ValidationPoint {
            x: f64::from(p.hd_in),
            measured: p.energy,
            paper: paper.energy(p.hd_in),
            fitted: fitted.energy(p.hd_in),
        })
        .collect();
    let validation = ModelValidation {
        block: format!("decoder (n_O = {n_outputs})"),
        mean_rel_err_paper: mean_rel_err(&points, |p| p.paper),
        mean_rel_err_fit: mean_rel_err(&points, |p| p.fitted),
        points,
        fit,
    };
    (fitted, validation)
}

/// Characterizes a `width` × `n_inputs` multiplexer: the data path is swept
/// over HD_IN (select held), the select path over channel switches; both
/// feed the fitted [`MuxModel`].
///
/// # Panics
///
/// Panics if `width == 0 || width > 64` or `n_inputs < 2`.
pub fn fit_mux_model(
    width: usize,
    n_inputs: usize,
    samples_per_hd: u64,
    seed: u64,
    tech: &TechParams,
) -> (MuxModel, ModelValidation) {
    let data_sweep = sweep_mux_data(width, n_inputs, samples_per_hd, tech, seed);
    let xy: Vec<(f64, f64)> = data_sweep
        .iter()
        .map(|p| (f64::from(p.hd_in), p.energy))
        .collect();
    let fit = fit_linear(&xy);
    // The slope blends internal and output-node energy; attribute the
    // analytic output share and leave the rest as internal.
    let a_out = tech.energy_per_toggle(tech.c_output).min(fit.slope);
    let a_data = (fit.slope - a_out).max(0.0);
    let sel_sweep = sweep_mux_select(width, n_inputs, samples_per_hd.max(1), tech, seed ^ 0xABCD);
    let b_sel = {
        let total: f64 = sel_sweep.iter().map(|p| p.energy * p.samples as f64).sum();
        let n: u64 = sel_sweep.iter().map(|p| p.samples).sum();
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    };
    let fitted = MuxModel::from_fit(width as u32, n_inputs, a_data, a_out, b_sel);
    let paper = MuxModel::from_paper_form(width as u32, n_inputs, tech);
    let points: Vec<ValidationPoint> = data_sweep
        .iter()
        .map(|p| ValidationPoint {
            x: f64::from(p.hd_in),
            measured: p.energy,
            paper: paper.energy(p.hd_in, false),
            fitted: fitted.energy(p.hd_in, false),
        })
        .collect();
    let validation = ModelValidation {
        block: format!("mux (w = {width}, n = {n_inputs})"),
        mean_rel_err_paper: mean_rel_err(&points, |p| p.paper),
        mean_rel_err_fit: mean_rel_err(&points, |p| p.fitted),
        points,
        fit,
    };
    (fitted, validation)
}

/// Characterizes an `n_masters` arbiter with two designed experiments
/// (request toggling without handover; forced handover every cycle) and
/// validates against random traffic at several request probabilities.
///
/// # Panics
///
/// Panics if `n_masters < 2`.
pub fn fit_arbiter_model(n_masters: usize, tech: &TechParams) -> (ArbiterModel, ModelValidation) {
    // Gather per-cycle (HD_req, handover, energy) samples under random
    // traffic at several request intensities, then solve the two-feature
    // least-squares system  E ≈ a_req·HD + b_grant·HO  (no intercept).
    let arb = priority_arbiter(n_masters);
    let mut sxx = 0.0;
    let mut sxz = 0.0;
    let mut szz = 0.0;
    let mut sxy = 0.0;
    let mut szy = 0.0;
    for &prob in &[32u32, 96, 192] {
        let mut rng = SplitMix64::new(9000 + u64::from(prob));
        let mut sim = LogicSim::new(&arb.netlist);
        let mut prev_req = 0u64;
        let mut prev_grant = {
            sim.step();
            sim.bus_value(&arb.grant)
        };
        for _ in 0..256 {
            let mut req = 0u64;
            for (i, &r) in arb.req.iter().enumerate() {
                let bit = rng.below(256) < u64::from(prob);
                sim.set_input(r, bit);
                req |= u64::from(bit) << i;
            }
            sim.reset_counters();
            sim.step();
            let y = ahbpower_gate::switching_energy(&sim, tech);
            let grant = sim.bus_value(&arb.grant);
            let x = f64::from((req ^ prev_req).count_ones());
            let z = if grant != prev_grant { 1.0 } else { 0.0 };
            sxx += x * x;
            sxz += x * z;
            szz += z * z;
            sxy += x * y;
            szy += z * y;
            prev_req = req;
            prev_grant = grant;
        }
    }
    let det = sxx * szz - sxz * sxz;
    let (a_req, b_grant) = if det.abs() > 1e-30 {
        (
            ((szz * sxy - sxz * szy) / det).max(0.0),
            ((sxx * szy - sxz * sxy) / det).max(0.0),
        )
    } else {
        // Degenerate traffic: fall back to the analytic form.
        let p = ArbiterModel::from_paper_form(n_masters, tech);
        (p.a_req, p.b_grant)
    };
    let e_clock = ArbiterModel::from_paper_form(n_masters, tech).e_clock;
    let fitted = ArbiterModel::from_fit(n_masters, a_req, b_grant, e_clock);
    let paper = ArbiterModel::from_paper_form(n_masters, tech);
    // Validation: random traffic at several request probabilities; the
    // models are evaluated on the *counted* per-cycle features.
    let mut points = Vec::new();
    for &prob in &[16u32, 64, 128, 224] {
        let measured = measure_arbiter(n_masters, 512, prob, tech, 1234 + u64::from(prob));
        let (hd_per_cycle, ho_per_cycle) =
            arbiter_feature_rates(n_masters, 512, prob, 1234 + u64::from(prob));
        let predict = |m: &ArbiterModel| hd_per_cycle * m.a_req + ho_per_cycle * m.b_grant;
        points.push(ValidationPoint {
            x: f64::from(prob) / 256.0,
            measured,
            paper: predict(&paper),
            fitted: predict(&fitted),
        });
    }
    let fit = LinearFit {
        slope: a_req,
        intercept: b_grant,
        r2: f64::NAN,
    };
    let validation = ModelValidation {
        block: format!("arbiter (n = {n_masters})"),
        mean_rel_err_paper: mean_rel_err(&points, |p| p.paper),
        mean_rel_err_fit: mean_rel_err(&points, |p| p.fitted),
        points,
        fit,
    };
    (fitted, validation)
}

/// Replays the same random request stream `measure_arbiter` uses and counts
/// the macromodel features: mean request-bit toggles and handovers per
/// cycle.
fn arbiter_feature_rates(n_masters: usize, cycles: u64, prob_256: u32, seed: u64) -> (f64, f64) {
    let arb = priority_arbiter(n_masters);
    let mut rng = SplitMix64::new(seed);
    let mut sim = LogicSim::new(&arb.netlist);
    let mut prev_req = 0u64;
    let mut prev_grant = sim.bus_value(&arb.grant);
    let mut hd_total = 0u64;
    let mut handovers = 0u64;
    for _ in 0..cycles {
        let mut req = 0u64;
        for (i, &r) in arb.req.iter().enumerate() {
            let bit = rng.below(256) < u64::from(prob_256);
            sim.set_input(r, bit);
            req |= u64::from(bit) << i;
        }
        sim.step();
        hd_total += u64::from((req ^ prev_req).count_ones());
        let grant = sim.bus_value(&arb.grant);
        if grant != prev_grant {
            handovers += 1;
        }
        prev_req = req;
        prev_grant = grant;
    }
    (
        hd_total as f64 / cycles as f64,
        handovers as f64 / cycles as f64,
    )
}

/// Characterizes all four AHB sub-blocks and assembles a fitted
/// [`crate::AhbPowerModel`].
pub fn fit_ahb_power_model(
    n_masters: usize,
    n_slaves: usize,
    tech: &TechParams,
) -> (crate::AhbPowerModel, Vec<ModelValidation>) {
    let (dec, v1) = fit_decoder_model(n_slaves.max(2), tech);
    let (m2s, v2) = fit_mux_model(
        (crate::model::ADDR_BITS + crate::model::CTRL_BITS) as usize,
        n_masters.max(2),
        24,
        2003,
        tech,
    );
    let (s2m, v3) = fit_mux_model(
        (crate::model::RDATA_BITS + crate::model::RESP_BITS) as usize,
        n_slaves + 1,
        24,
        2004,
        tech,
    );
    let (arb, v4) = fit_arbiter_model(n_masters.max(2), tech);
    // The fitted M2S mux characterized the addr+ctrl path; widen to include
    // the write-data path, which shares the same per-bit coefficients.
    let m2s = MuxModel::from_fit(
        crate::model::ADDR_BITS + crate::model::CTRL_BITS + crate::model::WDATA_BITS,
        n_masters.max(2),
        m2s.a_data,
        m2s.a_out,
        m2s.b_sel
            * (f64::from(
                crate::model::ADDR_BITS + crate::model::CTRL_BITS + crate::model::WDATA_BITS,
            ) / f64::from(crate::model::ADDR_BITS + crate::model::CTRL_BITS)),
    );
    (
        crate::AhbPowerModel::with_models(dec, m2s, s2m, arb),
        vec![v1, v2, v3, v4],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_fit_is_tight() {
        let (model, v) = fit_decoder_model(4, &TechParams::default());
        assert!(v.fit.r2 > 0.9, "r2 = {}", v.fit.r2);
        assert!(v.mean_rel_err_fit < 0.2, "fit err {}", v.mean_rel_err_fit);
        assert!(
            v.mean_rel_err_fit <= v.mean_rel_err_paper + 1e-12,
            "fit ({}) must beat or match the analytic form ({})",
            v.mean_rel_err_fit,
            v.mean_rel_err_paper
        );
        assert!(model.alpha > 0.0);
    }

    #[test]
    fn mux_fit_is_tight_on_data_path() {
        let (model, v) = fit_mux_model(16, 4, 16, 7, &TechParams::default());
        assert!(v.fit.r2 > 0.95, "r2 = {}", v.fit.r2);
        assert!(v.mean_rel_err_fit < 0.25, "fit err {}", v.mean_rel_err_fit);
        assert!(model.a_data > 0.0);
        assert!(model.b_sel > 0.0, "select changes must cost energy");
    }

    #[test]
    fn arbiter_fit_predicts_random_traffic() {
        let (model, v) = fit_arbiter_model(3, &TechParams::default());
        assert!(model.a_req > 0.0);
        assert!(model.b_grant > 0.0);
        assert!(
            v.mean_rel_err_fit < 0.6,
            "arbiter fit err {} (coarse two-point fit)",
            v.mean_rel_err_fit
        );
        assert_eq!(v.points.len(), 4);
    }

    #[test]
    fn full_model_fits() {
        let (model, validations) = fit_ahb_power_model(2, 3, &TechParams::default());
        assert_eq!(validations.len(), 4);
        assert_eq!(model.m2s.width, 73);
        assert!(model.decoder.alpha > 0.0);
        assert!(model.s2m.a_data > 0.0);
    }
}
