//! The composed AHB power model: the paper's structural decomposition
//! (arbiter + decoder + M2S mux + S2M mux) driven by per-cycle bus
//! snapshots.

use ahbpower_ahb::BusSnapshot;

use crate::activity::hamming;
use crate::macromodel::{ArbiterModel, BlockEnergy, DecoderModel, MuxModel, TechParams};

/// Bit width of the HADDR path through the M2S mux.
pub const ADDR_BITS: u32 = 32;
/// Bit width of the HWDATA path through the M2S mux.
pub const WDATA_BITS: u32 = 32;
/// Bit width of the control bundle (HTRANS+HWRITE+HSIZE+HBURST).
pub const CTRL_BITS: u32 = 9;
/// Bit width of the HRDATA path through the S2M mux.
pub const RDATA_BITS: u32 = 32;
/// Bit width of the response bundle (HRESP+HREADY).
pub const RESP_BITS: u32 = 3;

/// Names one of the four characterized AHB sub-blocks, for operations
/// that address a single block (coefficient scaling, reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubBlock {
    /// Address decoder.
    Dec,
    /// Masters-to-slaves multiplexer.
    M2s,
    /// Slaves-to-masters multiplexer.
    S2m,
    /// Arbiter FSM.
    Arb,
}

impl SubBlock {
    /// Every sub-block, in ledger order.
    pub const ALL: [SubBlock; 4] = [SubBlock::Dec, SubBlock::M2s, SubBlock::S2m, SubBlock::Arb];

    /// The short lowercase name used in CLIs and exports.
    pub fn name(self) -> &'static str {
        match self {
            SubBlock::Dec => "dec",
            SubBlock::M2s => "m2s",
            SubBlock::S2m => "s2m",
            SubBlock::Arb => "arb",
        }
    }

    /// Parses a short name produced by [`SubBlock::name`].
    pub fn from_name(name: &str) -> Option<SubBlock> {
        match name {
            "dec" => Some(SubBlock::Dec),
            "m2s" => Some(SubBlock::M2s),
            "s2m" => Some(SubBlock::S2m),
            "arb" => Some(SubBlock::Arb),
            _ => None,
        }
    }
}

impl core::fmt::Display for SubBlock {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The four characterized sub-blocks of the AHB, with per-cycle energy
/// evaluation from consecutive [`BusSnapshot`]s.
///
/// # Examples
///
/// ```
/// use ahbpower::{AhbPowerModel, TechParams};
///
/// let model = AhbPowerModel::new(3, 3, &TechParams::default());
/// assert_eq!(model.m2s.n_inputs, 3);
/// assert_eq!(model.decoder.n_outputs, 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AhbPowerModel {
    /// Address decoder model.
    pub decoder: DecoderModel,
    /// Masters-to-slaves multiplexer (address + control + write data).
    pub m2s: MuxModel,
    /// Slaves-to-masters multiplexer (read data + response).
    pub s2m: MuxModel,
    /// Arbiter FSM model.
    pub arbiter: ArbiterModel,
}

impl AhbPowerModel {
    /// Builds the paper-form models for a bus with `n_masters` masters and
    /// `n_slaves` slaves. Counts below 2 are clamped to 2 (the mux/decoder
    /// macromodels need at least two alternatives).
    pub fn new(n_masters: usize, n_slaves: usize, tech: &TechParams) -> Self {
        let n_masters = n_masters.max(2);
        let n_slaves = n_slaves.max(2);
        AhbPowerModel {
            decoder: DecoderModel::from_paper(n_slaves, tech),
            m2s: MuxModel::from_paper_form(ADDR_BITS + CTRL_BITS + WDATA_BITS, n_masters, tech),
            // The S2M mux also selects the built-in default slave.
            s2m: MuxModel::from_paper_form(RDATA_BITS + RESP_BITS, n_slaves + 1, tech),
            arbiter: ArbiterModel::from_paper_form(n_masters, tech),
        }
    }

    /// Replaces the sub-models with fitted variants (same shape).
    pub fn with_models(
        decoder: DecoderModel,
        m2s: MuxModel,
        s2m: MuxModel,
        arbiter: ArbiterModel,
    ) -> Self {
        AhbPowerModel {
            decoder,
            m2s,
            s2m,
            arbiter,
        }
    }

    /// Scales every coefficient of one sub-block's macromodel by
    /// `factor`. This is the anomaly-injection hook: it emulates a
    /// localized energy drift that the on-line detector should flag.
    pub fn scale_block(&mut self, block: SubBlock, factor: f64) {
        match block {
            SubBlock::Dec => self.decoder.scale(factor),
            SubBlock::M2s => self.m2s.scale(factor),
            SubBlock::S2m => self.s2m.scale(factor),
            SubBlock::Arb => self.arbiter.scale(factor),
        }
    }

    /// The energy the bus dissipated during `cur`, given the previous
    /// cycle's wires (all macromodels are driven by Hamming distances
    /// between consecutive values, per the paper).
    pub fn cycle_energy(&self, prev: &BusSnapshot, cur: &BusSnapshot) -> BlockEnergy {
        let handover = cur.hmaster != prev.hmaster;
        let addr_hd = hamming(u64::from(prev.haddr), u64::from(cur.haddr));
        let dec = self.decoder.energy(addr_hd);
        let m2s_hd = addr_hd
            + hamming(
                u64::from(prev.control_bits()),
                u64::from(cur.control_bits()),
            )
            + hamming(u64::from(prev.hwdata), u64::from(cur.hwdata));
        let m2s = self.m2s.energy(m2s_hd, handover);
        let s2m_hd = hamming(u64::from(prev.hrdata), u64::from(cur.hrdata))
            + hamming(u64::from(resp_bits(prev)), u64::from(resp_bits(cur)));
        let s2m_sel = cur.hsel_bits() != prev.hsel_bits();
        let s2m = self.s2m.energy(s2m_hd, s2m_sel);
        let hd_req = hamming(u64::from(busreq_bits(prev)), u64::from(busreq_bits(cur)));
        let arb = self.arbiter.energy(hd_req, handover);
        BlockEnergy { dec, m2s, s2m, arb }
    }
}

/// Packs HRESP and HREADY into a small integer for Hamming distances.
/// Crate-visible so the activity recorder observes the identical bundle.
pub(crate) fn resp_bits(s: &BusSnapshot) -> u32 {
    u32::from(s.hresp.bits()) | (u32::from(s.hready) << 2)
}

/// Packs HBUSREQx into an integer (already packed in the snapshot).
fn busreq_bits(s: &BusSnapshot) -> u32 {
    s.hbusreq
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahbpower_ahb::{HBurst, HResp, HSize, HTrans, MasterId};

    fn snap() -> BusSnapshot {
        BusSnapshot {
            cycle: 0,
            haddr: 0,
            htrans: HTrans::Idle,
            hwrite: false,
            hsize: HSize::Word,
            hburst: HBurst::Single,
            hwdata: 0,
            hrdata: 0,
            hready: true,
            hresp: HResp::Okay,
            hmaster: MasterId(0),
            hmastlock: false,
            hbusreq: 0b00,
            hgrant: 0b01,
            hsel: 0b000,
        }
    }

    #[test]
    fn identical_cycles_cost_only_the_clock() {
        let m = AhbPowerModel::new(2, 3, &TechParams::default());
        let s = snap();
        let e = m.cycle_energy(&s, &s);
        assert_eq!(e.dec + e.m2s + e.s2m, 0.0, "combinational blocks quiet");
        assert_eq!(e.arb, m.arbiter.e_clock, "clocked arbiter keeps ticking");
    }

    #[test]
    fn address_change_charges_decoder_and_m2s() {
        let m = AhbPowerModel::new(2, 3, &TechParams::default());
        let a = snap();
        let mut b = snap();
        b.haddr = 0xFF;
        let e = m.cycle_energy(&a, &b);
        assert!(e.dec > 0.0);
        assert!(e.m2s > 0.0);
        assert_eq!(e.s2m, 0.0);
        assert_eq!(e.arb, m.arbiter.e_clock);
    }

    #[test]
    fn write_data_charges_m2s_only() {
        let m = AhbPowerModel::new(2, 3, &TechParams::default());
        let a = snap();
        let mut b = snap();
        b.hwdata = 0xFFFF_FFFF;
        let e = m.cycle_energy(&a, &b);
        assert_eq!(e.dec, 0.0);
        assert!(e.m2s > 0.0);
        assert_eq!(e.s2m, 0.0);
    }

    #[test]
    fn read_data_charges_s2m_only() {
        let m = AhbPowerModel::new(2, 3, &TechParams::default());
        let a = snap();
        let mut b = snap();
        b.hrdata = 0xAAAA_AAAA;
        let e = m.cycle_energy(&a, &b);
        assert_eq!(e.dec, 0.0);
        assert_eq!(e.m2s, 0.0);
        assert!(e.s2m > 0.0);
    }

    #[test]
    fn handover_charges_arbiter_and_m2s_select() {
        let m = AhbPowerModel::new(2, 3, &TechParams::default());
        let a = snap();
        let mut b = snap();
        b.hmaster = MasterId(1);
        let e = m.cycle_energy(&a, &b);
        assert!(e.arb > m.arbiter.e_clock, "grant register toggles");
        assert!(e.m2s > 0.0, "M2S select re-path");
    }

    #[test]
    fn request_activity_charges_arbiter() {
        let m = AhbPowerModel::new(2, 3, &TechParams::default());
        let a = snap();
        let mut b = snap();
        b.hbusreq = 0b11;
        let e = m.cycle_energy(&a, &b);
        assert!(e.arb > m.arbiter.e_clock, "request activity adds energy");
        assert_eq!(e.m2s, 0.0);
    }

    #[test]
    fn hsel_change_charges_s2m_select() {
        let m = AhbPowerModel::new(2, 3, &TechParams::default());
        let mut a = snap();
        a.hsel = 0b001;
        let mut b = snap();
        b.hsel = 0b010;
        let e = m.cycle_energy(&a, &b);
        assert!(e.s2m > 0.0);
    }

    #[test]
    fn scale_block_touches_only_the_named_block() {
        let base = AhbPowerModel::new(2, 3, &TechParams::default());
        let a = snap();
        let mut b = snap();
        b.haddr = 0xFF;
        b.hwdata = 0xF0;
        b.hrdata = 0x0F;
        b.hbusreq = 0b11;
        let before = base.cycle_energy(&a, &b);
        for block in SubBlock::ALL {
            let mut m = base.clone();
            m.scale_block(block, 2.0);
            let after = m.cycle_energy(&a, &b);
            let pairs = [
                (SubBlock::Dec, before.dec, after.dec),
                (SubBlock::M2s, before.m2s, after.m2s),
                (SubBlock::S2m, before.s2m, after.s2m),
                (SubBlock::Arb, before.arb, after.arb),
            ];
            for (which, was, now) in pairs {
                if which == block {
                    assert!((now - 2.0 * was).abs() < 1e-18, "{block} should double");
                } else {
                    assert_eq!(now, was, "{which} must not move when {block} scales");
                }
            }
        }
    }

    #[test]
    fn sub_block_names_round_trip() {
        for block in SubBlock::ALL {
            assert_eq!(SubBlock::from_name(block.name()), Some(block));
        }
        assert_eq!(SubBlock::from_name("cpu"), None);
    }

    #[test]
    fn more_flipped_bits_cost_more() {
        let m = AhbPowerModel::new(2, 3, &TechParams::default());
        let a = snap();
        let mut one = snap();
        one.hwdata = 0x1;
        let mut many = snap();
        many.hwdata = 0xFFFF_FFFF;
        assert!(m.cycle_energy(&a, &many).m2s > m.cycle_energy(&a, &one).m2s);
    }
}
