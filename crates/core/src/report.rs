//! Rendering of experiment artifacts (text tables and CSV).

use std::fmt::Write as _;

use crate::characterize::ModelValidation;
use crate::ledger::{BlockLedger, InstructionLedger};
use crate::trace::TracePoint;

/// Renders the paper's Table 1 as text (same columns: instruction, average
/// energy, total energy, share).
pub fn table1_text(ledger: &InstructionLedger) -> String {
    ledger.to_string()
}

/// Renders Table 1 as CSV: `instruction,count,avg_pj,total_uj,share_pct`.
pub fn table1_csv(ledger: &InstructionLedger) -> String {
    let mut out = String::from("instruction,count,avg_pj,total_uj,share_pct\n");
    for r in ledger.rows() {
        let _ = writeln!(
            out,
            "{},{},{:.4},{:.4},{:.3}",
            r.instruction.name(),
            r.count,
            r.average * 1e12,
            r.total * 1e6,
            r.share * 100.0
        );
    }
    out
}

/// Renders a power trace as CSV: `time_us,total_mw,dec_mw,m2s_mw,s2m_mw,arb_mw`.
pub fn trace_csv(points: &[TracePoint]) -> String {
    let mut out = String::from("time_us,total_mw,dec_mw,m2s_mw,s2m_mw,arb_mw\n");
    for p in points {
        let _ = writeln!(
            out,
            "{:.4},{:.6},{:.6},{:.6},{:.6},{:.6}",
            p.time_s * 1e6,
            p.total_w * 1e3,
            p.dec_w * 1e3,
            p.m2s_w * 1e3,
            p.s2m_w * 1e3,
            p.arb_w * 1e3
        );
    }
    out
}

/// Renders Fig. 6's sub-block shares as CSV: `block,energy_uj,share_pct`.
pub fn fig6_csv(blocks: &BlockLedger) -> String {
    let mut out = String::from("block,energy_uj,share_pct\n");
    for (name, e, share) in blocks.shares() {
        let _ = writeln!(out, "{},{:.4},{:.3}", name, e * 1e6, share * 100.0);
    }
    out
}

/// Renders an ASCII bar chart of a power trace (for terminal inspection of
/// Figs. 3-5 without a plotting stack).
pub fn trace_ascii(
    points: &[TracePoint],
    pick: impl Fn(&TracePoint) -> f64,
    width: usize,
) -> String {
    let max = points.iter().map(&pick).fold(0.0f64, f64::max);
    let mut out = String::new();
    for p in points {
        let v = pick(p);
        let bar = if max > 0.0 {
            (v / max * width as f64).round() as usize
        } else {
            0
        };
        let _ = writeln!(
            out,
            "{:>8.3} us |{:<width$}| {:.4} mW",
            p.time_s * 1e6,
            "#".repeat(bar),
            v * 1e3,
            width = width
        );
    }
    out
}

/// Renders macromodel-validation results as text.
pub fn validation_text(validations: &[ModelValidation]) -> String {
    let mut out = String::new();
    for v in validations {
        let _ = writeln!(out, "== {} ==", v.block);
        let _ = writeln!(
            out,
            "  fit: slope {:.4e} J, intercept {:.4e} J, r2 {:.4}",
            v.fit.slope, v.fit.intercept, v.fit.r2
        );
        let _ = writeln!(
            out,
            "  mean |rel err|: paper-form {:.1}%  fitted {:.1}%",
            v.mean_rel_err_paper * 100.0,
            v.mean_rel_err_fit * 100.0
        );
        let _ = writeln!(
            out,
            "  {:>8} {:>12} {:>12} {:>12}",
            "x", "measured", "paper", "fitted"
        );
        for p in &v.points {
            let _ = writeln!(
                out,
                "  {:>8.3} {:>9.3} pJ {:>9.3} pJ {:>9.3} pJ",
                p.x,
                p.measured * 1e12,
                p.paper * 1e12,
                p.fitted * 1e12
            );
        }
    }
    out
}

/// Renders validation results as CSV:
/// `block,x,measured_pj,paper_pj,fitted_pj`.
pub fn validation_csv(validations: &[ModelValidation]) -> String {
    let mut out = String::from("block,x,measured_pj,paper_pj,fitted_pj\n");
    for v in validations {
        for p in &v.points {
            let _ = writeln!(
                out,
                "{},{:.3},{:.5},{:.5},{:.5}",
                v.block,
                p.x,
                p.measured * 1e12,
                p.paper * 1e12,
                p.fitted * 1e12
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::{ActivityMode, Instruction};
    use crate::macromodel::{BlockEnergy, LinearFit};

    #[test]
    fn table1_csv_has_header_and_rows() {
        let mut l = InstructionLedger::new();
        l.record(
            Instruction::new(ActivityMode::Write, ActivityMode::Read),
            14.7e-12,
        );
        let csv = table1_csv(&l);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("instruction,count,avg_pj,total_uj,share_pct")
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("WRITE_READ,1,14.7"));
    }

    #[test]
    fn trace_csv_formats_units() {
        let pts = [TracePoint {
            time_s: 2e-6,
            total_w: 1e-3,
            dec_w: 1e-4,
            m2s_w: 5e-4,
            s2m_w: 3e-4,
            arb_w: 1e-4,
        }];
        let csv = trace_csv(&pts);
        assert!(csv.contains("2.0000,1.000000"));
    }

    #[test]
    fn fig6_csv_lists_four_blocks() {
        let mut b = BlockLedger::new();
        b.record(BlockEnergy {
            dec: 1e-6,
            m2s: 5e-6,
            s2m: 3e-6,
            arb: 1e-6,
        });
        let csv = fig6_csv(&b);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.contains("M2S,5.0000,50.000"));
    }

    #[test]
    fn ascii_chart_scales_bars() {
        let pts = [
            TracePoint {
                time_s: 0.0,
                total_w: 1e-3,
                dec_w: 0.0,
                m2s_w: 0.0,
                s2m_w: 0.0,
                arb_w: 0.0,
            },
            TracePoint {
                time_s: 1e-6,
                total_w: 2e-3,
                dec_w: 0.0,
                m2s_w: 0.0,
                s2m_w: 0.0,
                arb_w: 0.0,
            },
        ];
        let chart = trace_ascii(&pts, |p| p.total_w, 20);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].matches('#').count() == 20);
        assert!(lines[0].matches('#').count() == 10);
    }

    #[test]
    fn validation_renderers() {
        let v = ModelValidation {
            block: "decoder (n_O = 4)".into(),
            points: vec![crate::characterize::ValidationPoint {
                x: 1.0,
                measured: 1e-12,
                paper: 1.1e-12,
                fitted: 1.05e-12,
            }],
            fit: LinearFit {
                slope: 1e-12,
                intercept: 0.0,
                r2: 0.99,
            },
            mean_rel_err_paper: 0.1,
            mean_rel_err_fit: 0.05,
        };
        let txt = validation_text(std::slice::from_ref(&v));
        assert!(txt.contains("decoder"));
        assert!(txt.contains("10.0%"));
        let csv = validation_csv(std::slice::from_ref(&v));
        assert!(csv.starts_with("block,x,"));
        assert!(csv.contains("decoder (n_O = 4),1.000"));
    }
}
