//! The AHB instruction set — the paper's behavioural decomposition.
//!
//! > "four main activity modes were identified: IDLE, READ, WRITE and IDLE
//! > with bus handover; the instruction set is made of all the permissible
//! > transitions between one of these states and the others" — Section 5.2.

use std::fmt;

use ahbpower_ahb::BusSnapshot;

/// One of the paper's four activity modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ActivityMode {
    /// No data transfer, no bus handover.
    #[default]
    Idle,
    /// No data transfer, bus ownership moved to another master.
    IdleHo,
    /// A read transfer is on the bus.
    Read,
    /// A write transfer is on the bus.
    Write,
}

impl ActivityMode {
    /// All four modes, in index order.
    pub const ALL: [ActivityMode; 4] = [
        ActivityMode::Idle,
        ActivityMode::IdleHo,
        ActivityMode::Read,
        ActivityMode::Write,
    ];

    /// A stable index in `0..4`.
    pub fn index(self) -> usize {
        match self {
            ActivityMode::Idle => 0,
            ActivityMode::IdleHo => 1,
            ActivityMode::Read => 2,
            ActivityMode::Write => 3,
        }
    }

    /// The mode with the given [`index`](Self::index), or `None` if `i`
    /// is out of range.
    pub fn from_index(i: usize) -> Option<ActivityMode> {
        ActivityMode::ALL.get(i).copied()
    }

    /// The paper's spelling of the mode.
    pub fn name(self) -> &'static str {
        match self {
            ActivityMode::Idle => "IDLE",
            ActivityMode::IdleHo => "IDLE_HO",
            ActivityMode::Read => "READ",
            ActivityMode::Write => "WRITE",
        }
    }
}

impl fmt::Display for ActivityMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Classifies one bus cycle into an activity mode.
///
/// A cycle with a NONSEQ/SEQ address phase is READ or WRITE according to
/// HWRITE. BUSY and IDLE cycles are idle; they classify as
/// **IDLE-with-handover** while the bus is owned by a different master than
/// the one that performed the most recent data transfer
/// (`last_transfer_master`) — i.e. for the whole parked period following a
/// bus handover, which is how the paper's testbench produces long
/// `IDLE_HO_IDLE_HO` runs.
///
/// # Examples
///
/// ```
/// use ahbpower::{classify_mode, ActivityMode};
/// use ahbpower_ahb::MasterId;
/// # use ahbpower_ahb::{BusSnapshot, HBurst, HResp, HSize, HTrans};
/// # let mut snap = BusSnapshot { cycle: 0, haddr: 0, htrans: HTrans::NonSeq,
/// #   hwrite: true, hsize: HSize::Word, hburst: HBurst::Single, hwdata: 0,
/// #   hrdata: 0, hready: true, hresp: HResp::Okay, hmaster: MasterId(0),
/// #   hmastlock: false, hbusreq: 0, hgrant: 0, hsel: 0 };
/// assert_eq!(classify_mode(&snap, None), ActivityMode::Write);
/// snap.htrans = HTrans::Idle;
/// // Bus parked with master 0 after master 1 transferred: handover idle.
/// assert_eq!(classify_mode(&snap, Some(MasterId(1))), ActivityMode::IdleHo);
/// assert_eq!(classify_mode(&snap, Some(MasterId(0))), ActivityMode::Idle);
/// ```
pub fn classify_mode(
    snap: &BusSnapshot,
    last_transfer_master: Option<ahbpower_ahb::MasterId>,
) -> ActivityMode {
    if snap.htrans.is_transfer() {
        if snap.hwrite {
            ActivityMode::Write
        } else {
            ActivityMode::Read
        }
    } else if last_transfer_master.is_some_and(|m| m != snap.hmaster) {
        ActivityMode::IdleHo
    } else {
        ActivityMode::Idle
    }
}

/// One instruction: a transition between activity modes, e.g. `WRITE_READ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// The mode the bus was in.
    pub from: ActivityMode,
    /// The mode the bus entered.
    pub to: ActivityMode,
}

/// Number of distinct instructions (4 × 4 transitions).
pub const INSTRUCTION_COUNT: usize = 16;

impl Instruction {
    /// Creates an instruction.
    pub fn new(from: ActivityMode, to: ActivityMode) -> Self {
        Instruction { from, to }
    }

    /// A stable index in `0..INSTRUCTION_COUNT`.
    pub fn index(self) -> usize {
        self.from.index() * 4 + self.to.index()
    }

    /// The instruction at a given index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= INSTRUCTION_COUNT`.
    pub fn from_index(i: usize) -> Self {
        assert!(i < INSTRUCTION_COUNT, "instruction index out of range");
        Instruction {
            from: ActivityMode::ALL[i / 4],
            to: ActivityMode::ALL[i % 4],
        }
    }

    /// All sixteen instructions in index order.
    pub fn all() -> impl Iterator<Item = Instruction> {
        (0..INSTRUCTION_COUNT).map(Instruction::from_index)
    }

    /// The paper's spelling, e.g. `IDLE_HO_WRITE` or `WRITE_READ`.
    pub fn name(self) -> String {
        format!("{}_{}", self.from.name(), self.to.name())
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahbpower_ahb::{HBurst, HResp, HSize, HTrans, MasterId};

    fn snap(trans: HTrans, write: bool) -> BusSnapshot {
        BusSnapshot {
            cycle: 0,
            haddr: 0,
            htrans: trans,
            hwrite: write,
            hsize: HSize::Word,
            hburst: HBurst::Single,
            hwdata: 0,
            hrdata: 0,
            hready: true,
            hresp: HResp::Okay,
            hmaster: MasterId(0),
            hmastlock: false,
            hbusreq: 0,
            hgrant: 0,
            hsel: 0,
        }
    }

    #[test]
    fn classification_covers_all_modes() {
        let other = Some(MasterId(5));
        let same = Some(MasterId(0));
        assert_eq!(
            classify_mode(&snap(HTrans::NonSeq, true), None),
            ActivityMode::Write
        );
        assert_eq!(
            classify_mode(&snap(HTrans::Seq, false), other),
            ActivityMode::Read,
            "a transfer cycle is READ/WRITE even if ownership moved"
        );
        assert_eq!(
            classify_mode(&snap(HTrans::Idle, false), same),
            ActivityMode::Idle
        );
        assert_eq!(
            classify_mode(&snap(HTrans::Idle, false), None),
            ActivityMode::Idle,
            "no transfer yet: the bus has not handed over"
        );
        assert_eq!(
            classify_mode(&snap(HTrans::Idle, false), other),
            ActivityMode::IdleHo
        );
        assert_eq!(
            classify_mode(&snap(HTrans::Busy, false), same),
            ActivityMode::Idle,
            "BUSY carries no transfer"
        );
    }

    #[test]
    fn instruction_names_match_paper() {
        use ActivityMode::*;
        assert_eq!(Instruction::new(Write, Read).name(), "WRITE_READ");
        assert_eq!(Instruction::new(Read, Write).name(), "READ_WRITE");
        assert_eq!(Instruction::new(IdleHo, IdleHo).name(), "IDLE_HO_IDLE_HO");
        assert_eq!(Instruction::new(IdleHo, Write).name(), "IDLE_HO_WRITE");
        assert_eq!(Instruction::new(Read, IdleHo).name(), "READ_IDLE_HO");
        assert_eq!(Instruction::new(Idle, Idle).name(), "IDLE_IDLE");
    }

    #[test]
    fn indices_round_trip() {
        for (k, instr) in Instruction::all().enumerate() {
            assert_eq!(instr.index(), k);
            assert_eq!(Instruction::from_index(k), instr);
        }
        assert_eq!(Instruction::all().count(), INSTRUCTION_COUNT);
    }

    #[test]
    fn mode_indices_are_stable() {
        for (k, m) in ActivityMode::ALL.iter().enumerate() {
            assert_eq!(m.index(), k);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let _ = Instruction::from_index(16);
    }
}
