//! Signal-activity monitoring — the paper's `Activity` class.
//!
//! > "a specialized object class was added for the dynamic monitoring and
//! > the storage of the activity of the I/O signals of the different
//! > blocks" — Section 5.3.
//!
//! [`SignalActivity`] tracks one signal; [`ActivityMonitor`] tracks a set of
//! named signals and is what the bus probes feed every cycle (the paper's
//! `get_activity` / `bit_change_count` / `store_activity`).

use std::fmt;

/// Hamming distance between two consecutive words — the macromodels' main
/// input parameter.
///
/// # Examples
///
/// ```
/// use ahbpower::hamming;
///
/// assert_eq!(hamming(0b1010, 0b0110), 2);
/// assert_eq!(hamming(0, u64::MAX), 64);
/// assert_eq!(hamming(7, 7), 0);
/// ```
pub fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

/// Running activity statistics of one signal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SignalActivity {
    width: u32,
    last: Option<u64>,
    samples: u64,
    bit_changes: u64,
    word_changes: u64,
    ones_accum: u64,
}

impl SignalActivity {
    /// Creates statistics for a `width`-bit signal.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        SignalActivity {
            width,
            ..SignalActivity::default()
        }
    }

    /// Records one sample (the paper's `store_activity`).
    pub fn sample(&mut self, value: u64) {
        let masked = if self.width == 64 {
            value
        } else {
            value & ((1u64 << self.width) - 1)
        };
        if let Some(prev) = self.last {
            let hd = hamming(prev, masked) as u64;
            self.bit_changes += hd;
            if hd > 0 {
                self.word_changes += 1;
            }
        }
        self.ones_accum += u64::from(masked.count_ones());
        self.last = Some(masked);
        self.samples += 1;
    }

    /// The Hamming distance the *next* sample would contribute.
    pub fn hd_to(&self, value: u64) -> u32 {
        match self.last {
            Some(prev) => hamming(prev, value),
            None => 0,
        }
    }

    /// The signal's bit width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Total bit toggles (the paper's `bit_change_count`).
    pub fn bit_changes(&self) -> u64 {
        self.bit_changes
    }

    /// Samples on which at least one bit changed.
    pub fn word_changes(&self) -> u64 {
        self.word_changes
    }

    /// Average toggles per bit per sample transition — the classical
    /// *switching activity* α.
    pub fn switching_activity(&self) -> f64 {
        if self.samples < 2 {
            return 0.0;
        }
        self.bit_changes as f64 / ((self.samples - 1) as f64 * f64::from(self.width))
    }

    /// Average fraction of bits at logic 1 — the *signal probability*.
    pub fn signal_probability(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.ones_accum as f64 / (self.samples as f64 * f64::from(self.width))
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<u64> {
        self.last
    }
}

/// A registry of monitored signals.
///
/// # Examples
///
/// ```
/// use ahbpower::ActivityMonitor;
///
/// let mut mon = ActivityMonitor::new();
/// let haddr = mon.track("HADDR", 32);
/// mon.sample(haddr, 0x0000_0000);
/// mon.sample(haddr, 0x0000_00FF);
/// assert_eq!(mon.stats(haddr).bit_changes(), 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ActivityMonitor {
    names: Vec<String>,
    signals: Vec<SignalActivity>,
}

/// Handle to a signal tracked by an [`ActivityMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProbeId(usize);

impl ActivityMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        ActivityMonitor::default()
    }

    /// Registers a signal by name.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 64.
    pub fn track(&mut self, name: &str, width: u32) -> ProbeId {
        self.names.push(name.to_string());
        self.signals.push(SignalActivity::new(width));
        ProbeId(self.signals.len() - 1)
    }

    /// Records one sample for a signal.
    pub fn sample(&mut self, id: ProbeId, value: u64) {
        self.signals[id.0].sample(value);
    }

    /// Statistics of one signal.
    pub fn stats(&self, id: ProbeId) -> &SignalActivity {
        &self.signals[id.0]
    }

    /// The name a signal was registered with.
    pub fn name(&self, id: ProbeId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over `(name, stats)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SignalActivity)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.signals.iter())
    }

    /// Number of tracked signals.
    pub fn len(&self) -> usize {
        self.signals.len()
    }

    /// True if no signals are tracked.
    pub fn is_empty(&self) -> bool {
        self.signals.is_empty()
    }
}

impl fmt::Display for ActivityMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>5} {:>12} {:>10} {:>8}",
            "signal", "width", "bit-changes", "alpha", "P(1)"
        )?;
        for (name, s) in self.iter() {
            writeln!(
                f,
                "{:<12} {:>5} {:>12} {:>10.4} {:>8.4}",
                name,
                s.width(),
                s.bit_changes(),
                s.switching_activity(),
                s.signal_probability()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming(0, 0), 0);
        assert_eq!(hamming(0xFF, 0x00), 8);
        assert_eq!(hamming(0b101, 0b010), 3);
    }

    #[test]
    fn first_sample_contributes_no_changes() {
        let mut s = SignalActivity::new(8);
        s.sample(0xFF);
        assert_eq!(s.bit_changes(), 0);
        assert_eq!(s.samples(), 1);
        assert_eq!(s.last(), Some(0xFF));
    }

    #[test]
    fn bit_and_word_changes_accumulate() {
        let mut s = SignalActivity::new(8);
        s.sample(0b0000_0000);
        s.sample(0b0000_1111); // 4 bits
        s.sample(0b0000_1111); // 0 bits
        s.sample(0b1111_1111); // 4 bits
        assert_eq!(s.bit_changes(), 8);
        assert_eq!(s.word_changes(), 2);
        assert_eq!(s.samples(), 4);
    }

    #[test]
    fn switching_activity_is_normalized() {
        let mut s = SignalActivity::new(4);
        s.sample(0b0000);
        s.sample(0b1111);
        s.sample(0b0000);
        // 8 toggles over 2 transitions of a 4-bit bus = alpha 1.0
        assert!((s.switching_activity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn signal_probability() {
        let mut s = SignalActivity::new(4);
        s.sample(0b1111);
        s.sample(0b0000);
        assert!((s.signal_probability() - 0.5).abs() < 1e-12);
        let empty = SignalActivity::new(4);
        assert_eq!(empty.signal_probability(), 0.0);
        assert_eq!(empty.switching_activity(), 0.0);
    }

    #[test]
    fn values_masked_to_width() {
        let mut s = SignalActivity::new(4);
        s.sample(0xF0); // low 4 bits = 0
        s.sample(0xFF); // low 4 bits = F
        assert_eq!(s.bit_changes(), 4);
    }

    #[test]
    fn hd_to_previews_distance() {
        let mut s = SignalActivity::new(8);
        assert_eq!(s.hd_to(0xAA), 0, "no previous sample");
        s.sample(0xAA);
        assert_eq!(s.hd_to(0xAB), 1);
        assert_eq!(s.bit_changes(), 0, "hd_to must not mutate");
    }

    #[test]
    fn monitor_tracks_named_signals() {
        let mut m = ActivityMonitor::new();
        let a = m.track("a", 8);
        let b = m.track("b", 16);
        m.sample(a, 1);
        m.sample(a, 2);
        m.sample(b, 0xFFFF);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert_eq!(m.name(a), "a");
        assert_eq!(m.stats(a).bit_changes(), 2);
        assert_eq!(m.stats(b).samples(), 1);
        let table = m.to_string();
        assert!(table.contains("bit-changes"));
        assert!(table.contains('a'));
    }

    #[test]
    fn width_64_signal_works() {
        let mut s = SignalActivity::new(64);
        s.sample(0);
        s.sample(u64::MAX);
        assert_eq!(s.bit_changes(), 64);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn zero_width_panics() {
        let _ = SignalActivity::new(0);
    }
}
