//! Time-resolved power traces (the paper's Figs. 3-5).
//!
//! Per-cycle energies are accumulated over fixed windows and divided by the
//! window duration, yielding instantaneous power series for the whole bus
//! and for each sub-block.

use crate::macromodel::BlockEnergy;

/// One point of a power trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Start time of the window, seconds.
    pub time_s: f64,
    /// Total bus power over the window, watts.
    pub total_w: f64,
    /// Decoder power, watts.
    pub dec_w: f64,
    /// M2S mux power, watts.
    pub m2s_w: f64,
    /// S2M mux power, watts.
    pub s2m_w: f64,
    /// Arbiter power, watts.
    pub arb_w: f64,
}

/// Windowed power-trace accumulator.
///
/// # Examples
///
/// ```
/// use ahbpower::{BlockEnergy, PowerTrace};
///
/// let mut trace = PowerTrace::new(10, 100e6); // 10-cycle windows at 100 MHz
/// for _ in 0..20 {
///     trace.push(BlockEnergy { dec: 1e-12, m2s: 2e-12, s2m: 1e-12, arb: 0.5e-12 });
/// }
/// let pts = trace.points();
/// assert_eq!(pts.len(), 2);
/// // 4.5 pJ/cycle at 100 MHz = 0.45 mW
/// assert!((pts[0].total_w - 0.45e-3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct PowerTrace {
    window_cycles: u64,
    clk_hz: f64,
    acc: BlockEnergy,
    in_window: u64,
    cycle: u64,
    points: Vec<TracePoint>,
}

impl PowerTrace {
    /// Creates a trace with `window_cycles`-cycle windows at `clk_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles == 0` or `clk_hz <= 0`.
    pub fn new(window_cycles: u64, clk_hz: f64) -> Self {
        assert!(window_cycles > 0, "window must span at least one cycle");
        assert!(clk_hz > 0.0, "clock frequency must be positive");
        PowerTrace {
            window_cycles,
            clk_hz,
            acc: BlockEnergy::default(),
            in_window: 0,
            cycle: 0,
            points: Vec::new(),
        }
    }

    /// Window duration in seconds.
    pub fn window_secs(&self) -> f64 {
        self.window_cycles as f64 / self.clk_hz
    }

    /// Adds one cycle's energy.
    pub fn push(&mut self, e: BlockEnergy) {
        self.acc += e;
        self.in_window += 1;
        self.cycle += 1;
        if self.in_window == self.window_cycles {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.in_window == 0 {
            return;
        }
        let dt = self.in_window as f64 / self.clk_hz;
        let start_cycle = self.cycle - self.in_window;
        self.points.push(TracePoint {
            time_s: start_cycle as f64 / self.clk_hz,
            total_w: self.acc.total() / dt,
            dec_w: self.acc.dec / dt,
            m2s_w: self.acc.m2s / dt,
            s2m_w: self.acc.s2m / dt,
            arb_w: self.acc.arb / dt,
        });
        self.acc = BlockEnergy::default();
        self.in_window = 0;
    }

    /// Flushes a partial trailing window, if any.
    pub fn finish(&mut self) {
        self.flush();
    }

    /// Clears the accumulator, cycle counter and completed points while
    /// retaining the point buffer's capacity, so a reused trace refills
    /// without reallocating (the replay engine's buffer-reuse hook).
    pub fn reset(&mut self) {
        self.acc = BlockEnergy::default();
        self.in_window = 0;
        self.cycle = 0;
        self.points.clear();
    }

    /// The completed windows so far.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Cycles pushed so far.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Peak total power over the completed windows, watts.
    pub fn peak_power(&self) -> f64 {
        self.points.iter().map(|p| p.total_w).fold(0.0, f64::max)
    }

    /// Average total power over the completed windows, watts.
    pub fn average_power(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.total_w).sum::<f64>() / self.points.len() as f64
    }

    /// Restricts the series to points whose window **starts** strictly
    /// before `t_s` **seconds** (e.g. the paper's "first 4 µs" is
    /// `points_before(4e-6)` — not a window index, not cycles).
    ///
    /// The cut is strict: a window starting exactly at `t_s` is excluded,
    /// so `points_before(window_secs())` returns exactly the first window.
    pub fn points_before(&self, t_s: f64) -> &[TracePoint] {
        let end = self.points.partition_point(|p| p.time_s < t_s);
        &self.points[..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(total_pj: f64) -> BlockEnergy {
        BlockEnergy {
            dec: total_pj * 0.1e-12,
            m2s: total_pj * 0.5e-12,
            s2m: total_pj * 0.3e-12,
            arb: total_pj * 0.1e-12,
        }
    }

    #[test]
    fn windows_aggregate_energy_to_power() {
        let mut t = PowerTrace::new(5, 100e6);
        for _ in 0..10 {
            t.push(e(10.0));
        }
        let pts = t.points();
        assert_eq!(pts.len(), 2);
        // 10 pJ per 10 ns cycle = 1 mW
        assert!((pts[0].total_w - 1e-3).abs() < 1e-9);
        assert!((pts[1].time_s - 50e-9).abs() < 1e-15);
        assert!((pts[0].m2s_w / pts[0].total_w - 0.5).abs() < 1e-9);
    }

    #[test]
    fn finish_flushes_partial_window() {
        let mut t = PowerTrace::new(10, 100e6);
        for _ in 0..13 {
            t.push(e(1.0));
        }
        assert_eq!(t.points().len(), 1);
        t.finish();
        assert_eq!(t.points().len(), 2);
        // Partial window power equals full window power for constant input.
        let p = t.points();
        assert!((p[0].total_w - p[1].total_w).abs() < 1e-12);
        assert_eq!(t.cycles(), 13);
        t.finish();
        assert_eq!(t.points().len(), 2, "double finish is a no-op");
    }

    #[test]
    fn peak_and_average() {
        let mut t = PowerTrace::new(1, 1e9);
        t.push(e(1.0));
        t.push(e(3.0));
        t.push(e(2.0));
        assert!(t.peak_power() > t.average_power());
        let expected_avg = (1.0 + 3.0 + 2.0) / 3.0 * 1e-12 * 1e9;
        assert!((t.average_power() - expected_avg).abs() < 1e-9);
    }

    #[test]
    fn points_before_cuts_series() {
        let mut t = PowerTrace::new(1, 1e6); // 1 us windows
        for _ in 0..10 {
            t.push(e(1.0));
        }
        assert_eq!(t.points_before(4e-6).len(), 4);
        assert_eq!(t.points_before(100.0).len(), 10);
        assert_eq!(t.points_before(0.0).len(), 0);
    }

    #[test]
    fn points_before_is_strict_at_exact_window_edges() {
        // 5-cycle windows at 100 MHz start at 0 ns, 50 ns, 100 ns. A cut
        // placed exactly on a window's start time excludes that window:
        // the argument is seconds of elapsed time, and the comparison is
        // a strict `<`.
        let mut t = PowerTrace::new(5, 100e6);
        for _ in 0..15 {
            t.push(e(1.0));
        }
        assert_eq!(t.points().len(), 3);
        let first = t.points_before(50e-9);
        assert_eq!(first.len(), 1, "window starting at the cut is excluded");
        assert!((first[0].time_s - 0.0).abs() < 1e-15);
        assert_eq!(t.points_before(t.window_secs()).len(), 1);
        assert_eq!(t.points_before(100e-9).len(), 2);
        // Just past the edge the boundary window is included again.
        assert_eq!(t.points_before(100e-9 + 1e-12).len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_window_panics() {
        let _ = PowerTrace::new(0, 1e6);
    }

    #[test]
    #[should_panic(expected = "clock frequency must be positive")]
    fn zero_clock_panics() {
        let _ = PowerTrace::new(10, 0.0);
    }

    #[test]
    #[should_panic(expected = "clock frequency must be positive")]
    fn negative_clock_panics() {
        let _ = PowerTrace::new(10, -100e6);
    }

    #[test]
    fn finish_on_empty_trace_emits_nothing() {
        let mut t = PowerTrace::new(10, 100e6);
        t.finish();
        assert!(t.points().is_empty());
        assert_eq!(t.cycles(), 0);
        assert_eq!(t.peak_power(), 0.0);
        assert_eq!(t.average_power(), 0.0);
    }

    #[test]
    fn partial_window_power_uses_actual_duration() {
        // 3 trailing cycles of 2 pJ each: the partial window must divide
        // by 3 cycles' worth of time, not the nominal 10, or its power
        // would be understated by 10/3.
        let mut t = PowerTrace::new(10, 100e6);
        for _ in 0..3 {
            t.push(e(2.0));
        }
        t.finish();
        let pts = t.points();
        assert_eq!(pts.len(), 1);
        // 2 pJ per 10 ns cycle = 0.2 mW regardless of window fill.
        assert!((pts[0].total_w - 0.2e-3).abs() < 1e-9, "{}", pts[0].total_w);
    }

    #[test]
    fn window_boundary_energy_attribution() {
        // Cycles 0-4 carry 1 pJ, cycles 5-9 carry 3 pJ, window = 5: each
        // window must contain exactly its own cycles' energy — no bleed
        // across the boundary.
        let mut t = PowerTrace::new(5, 100e6);
        for _ in 0..5 {
            t.push(e(1.0));
        }
        for _ in 0..5 {
            t.push(e(3.0));
        }
        let pts = t.points();
        assert_eq!(pts.len(), 2);
        // 1 pJ / 10 ns = 0.1 mW; 3 pJ / 10 ns = 0.3 mW.
        assert!((pts[0].total_w - 0.1e-3).abs() < 1e-9, "{}", pts[0].total_w);
        assert!((pts[1].total_w - 0.3e-3).abs() < 1e-9, "{}", pts[1].total_w);
        // Window start times align to the boundary cycle.
        assert!((pts[0].time_s - 0.0).abs() < 1e-15);
        assert!((pts[1].time_s - 50e-9).abs() < 1e-15);
        // Energy reconstructed from the two windows equals what was pushed.
        let window = t.window_secs();
        let total: f64 = pts.iter().map(|p| p.total_w * window).sum();
        assert!((total - 20.0e-12).abs() < 1e-20, "{total}");
    }
}
