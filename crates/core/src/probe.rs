//! The three power-model integration styles of the paper's Fig. 1.
//!
//! - **Inline** (the paper's "private model"): every cycle, every sub-block
//!   macromodel is evaluated on exact Hamming distances. Most accurate and
//!   most intrusive.
//! - **FSM** (the "local model"): a characterization pass first assigns each
//!   *instruction* a mean energy; during analysis the probe only classifies
//!   the instruction per cycle and adds its mean. Cheaper per cycle, pays
//!   with accuracy whenever activity deviates from the calibration run.
//! - **Global** (the "global model"): a separate monitor module that keeps
//!   only aggregate switching statistics and evaluates the macromodels once
//!   at the end. Least intrusive; produces totals but no per-cycle or
//!   per-instruction detail.

use ahbpower_ahb::{BusSnapshot, MasterId};

use crate::activity::SignalActivity;
use crate::instruction::{classify_mode, ActivityMode, Instruction, INSTRUCTION_COUNT};
use crate::ledger::InstructionLedger;
use crate::model::AhbPowerModel;
use crate::power_fsm::PowerFsm;

/// A per-cycle bus power probe.
pub trait PowerProbe {
    /// Processes one cycle's wires.
    fn observe(&mut self, snap: &BusSnapshot);

    /// Total energy attributed so far, joules.
    fn total_energy(&self) -> f64;

    /// The style's name.
    fn style(&self) -> &'static str;
}

/// The inline (exact, per-cycle) probe — a thin wrapper over [`PowerFsm`].
#[derive(Debug, Clone)]
pub struct InlineProbe {
    fsm: PowerFsm,
}

impl InlineProbe {
    /// Creates an inline probe.
    pub fn new(model: AhbPowerModel) -> Self {
        InlineProbe {
            fsm: PowerFsm::new(model),
        }
    }

    /// Access to the full FSM (ledgers, traces).
    pub fn fsm(&self) -> &PowerFsm {
        &self.fsm
    }
}

impl PowerProbe for InlineProbe {
    fn observe(&mut self, snap: &BusSnapshot) {
        self.fsm.observe(snap);
    }

    fn total_energy(&self) -> f64 {
        self.fsm.total_energy()
    }

    fn style(&self) -> &'static str {
        "inline"
    }
}

/// The FSM-style probe: per-instruction mean energies, applied by
/// instruction recognition only.
#[derive(Debug, Clone)]
pub struct FsmProbe {
    table: [f64; INSTRUCTION_COUNT],
    state: ActivityMode,
    last_transfer_master: Option<MasterId>,
    ledger: InstructionLedger,
}

impl FsmProbe {
    /// Creates a probe from a per-instruction mean-energy table (joules),
    /// indexed by [`Instruction::index`].
    pub fn from_table(table: [f64; INSTRUCTION_COUNT]) -> Self {
        FsmProbe {
            table,
            state: ActivityMode::Idle,
            last_transfer_master: None,
            ledger: InstructionLedger::new(),
        }
    }

    /// Characterizes the table from a calibration run's exact ledger
    /// (instructions never seen calibrate to zero).
    pub fn from_calibration(calibration: &InstructionLedger) -> Self {
        let mut table = [0.0; INSTRUCTION_COUNT];
        for instr in Instruction::all() {
            let n = calibration.count(instr);
            if n > 0 {
                table[instr.index()] = calibration.energy(instr) / n as f64;
            }
        }
        FsmProbe::from_table(table)
    }

    /// The per-instruction ledger accumulated during analysis.
    pub fn ledger(&self) -> &InstructionLedger {
        &self.ledger
    }
}

impl PowerProbe for FsmProbe {
    fn observe(&mut self, snap: &BusSnapshot) {
        let mode = classify_mode(snap, self.last_transfer_master);
        let instr = Instruction::new(self.state, mode);
        self.ledger.record(instr, self.table[instr.index()]);
        if snap.htrans.is_transfer() {
            self.last_transfer_master = Some(snap.hmaster);
        }
        self.state = mode;
    }

    fn total_energy(&self) -> f64 {
        self.ledger.total_energy()
    }

    fn style(&self) -> &'static str {
        "fsm"
    }
}

/// The global monitor: aggregate switching statistics only.
#[derive(Debug, Clone)]
pub struct GlobalProbe {
    model: AhbPowerModel,
    addr: SignalActivity,
    ctrl: SignalActivity,
    wdata: SignalActivity,
    rdata: SignalActivity,
    resp: SignalActivity,
    busreq: SignalActivity,
    handovers: u64,
    s2m_sel_changes: u64,
    prev_master: Option<MasterId>,
    prev_hsel: Option<u32>,
    cycles: u64,
}

impl GlobalProbe {
    /// Creates a global probe for the given models.
    pub fn new(model: AhbPowerModel) -> Self {
        let n_masters = model.arbiter.n_masters as u32;
        GlobalProbe {
            model,
            addr: SignalActivity::new(32),
            ctrl: SignalActivity::new(9),
            wdata: SignalActivity::new(32),
            rdata: SignalActivity::new(32),
            resp: SignalActivity::new(3),
            busreq: SignalActivity::new(n_masters.max(1)),
            handovers: 0,
            s2m_sel_changes: 0,
            prev_master: None,
            prev_hsel: None,
            cycles: 0,
        }
    }

    /// Cycles observed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Bus handovers observed.
    pub fn handovers(&self) -> u64 {
        self.handovers
    }

    /// The aggregate statistics of the address bus (for reports).
    pub fn addr_activity(&self) -> &SignalActivity {
        &self.addr
    }

    /// Total HADDR bit toggles.
    pub fn addr_bit_changes(&self) -> u64 {
        self.addr.bit_changes()
    }

    /// Cycles on which HADDR changed at all.
    pub fn addr_word_changes(&self) -> u64 {
        self.addr.word_changes()
    }

    /// Total control-bundle bit toggles.
    pub fn ctrl_bit_changes(&self) -> u64 {
        self.ctrl.bit_changes()
    }

    /// Total HWDATA bit toggles.
    pub fn wdata_bit_changes(&self) -> u64 {
        self.wdata.bit_changes()
    }

    /// Total HRDATA bit toggles.
    pub fn rdata_bit_changes(&self) -> u64 {
        self.rdata.bit_changes()
    }

    /// Total response-bundle bit toggles.
    pub fn resp_bit_changes(&self) -> u64 {
        self.resp.bit_changes()
    }

    /// Total HBUSREQ bit toggles.
    pub fn busreq_bit_changes(&self) -> u64 {
        self.busreq.bit_changes()
    }

    /// S2M select (HSEL) changes observed.
    pub fn s2m_select_changes(&self) -> u64 {
        self.s2m_sel_changes
    }
}

impl PowerProbe for GlobalProbe {
    fn observe(&mut self, snap: &BusSnapshot) {
        self.addr.sample(u64::from(snap.haddr));
        self.ctrl.sample(u64::from(snap.control_bits()));
        self.wdata.sample(u64::from(snap.hwdata));
        self.rdata.sample(u64::from(snap.hrdata));
        self.resp
            .sample(u64::from(snap.hresp.bits()) | (u64::from(snap.hready) << 2));
        self.busreq.sample(u64::from(snap.hbusreq));
        if self.prev_master.is_some_and(|m| m != snap.hmaster) {
            self.handovers += 1;
        }
        if self.prev_hsel.is_some_and(|s| s != snap.hsel_bits()) {
            self.s2m_sel_changes += 1;
        }
        self.prev_master = Some(snap.hmaster);
        self.prev_hsel = Some(snap.hsel_bits());
        self.cycles += 1;
    }

    fn total_energy(&self) -> f64 {
        // The macromodels are linear in Hamming distance, so evaluating them
        // on aggregate counts is exact for the data terms; the word-change
        // counters supply the per-event terms.
        let m = &self.model;
        let dec = m.decoder.alpha * self.addr.bit_changes() as f64
            + m.decoder.beta * self.addr.word_changes() as f64;
        let m2s_bits =
            (self.addr.bit_changes() + self.ctrl.bit_changes() + self.wdata.bit_changes()) as f64;
        let m2s = m2s_bits * (m.m2s.a_data + m.m2s.a_out) + self.handovers as f64 * m.m2s.b_sel;
        let s2m_bits = (self.rdata.bit_changes() + self.resp.bit_changes()) as f64;
        let s2m =
            s2m_bits * (m.s2m.a_data + m.s2m.a_out) + self.s2m_sel_changes as f64 * m.s2m.b_sel;
        // Inline accounting books energy per *transition*, so the clock
        // term accrues from the second observed cycle onward.
        let clocked_cycles = self.cycles.saturating_sub(1) as f64;
        let arb = self.busreq.bit_changes() as f64 * m.arbiter.a_req
            + self.handovers as f64 * m.arbiter.b_grant
            + clocked_cycles * m.arbiter.e_clock;
        dec + m2s + s2m + arb
    }

    fn style(&self) -> &'static str {
        "global"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macromodel::TechParams;
    use ahbpower_ahb::{pack_wires, HBurst, HResp, HSize, HTrans};

    fn snap(i: u32) -> BusSnapshot {
        BusSnapshot {
            cycle: u64::from(i),
            haddr: i.wrapping_mul(0x0101_0105),
            htrans: if i.is_multiple_of(3) {
                HTrans::NonSeq
            } else {
                HTrans::Idle
            },
            hwrite: i.is_multiple_of(2),
            hsize: HSize::Word,
            hburst: HBurst::Single,
            hwdata: i.wrapping_mul(0xDEAD_4321),
            hrdata: i.wrapping_mul(0x5A5A_0F0F),
            hready: true,
            hresp: HResp::Okay,
            hmaster: MasterId((i % 2) as u8),
            hmastlock: false,
            hbusreq: pack_wires([i.is_multiple_of(2), i.is_multiple_of(3)]),
            hgrant: pack_wires([i.is_multiple_of(2), i % 2 == 1]),
            hsel: pack_wires([i.is_multiple_of(3), false]),
        }
    }

    fn model() -> AhbPowerModel {
        AhbPowerModel::new(2, 2, &TechParams::default())
    }

    #[test]
    fn global_matches_inline_for_linear_models() {
        let mut inline = InlineProbe::new(model());
        let mut global = GlobalProbe::new(model());
        for i in 0..200 {
            let s = snap(i);
            inline.observe(&s);
            global.observe(&s);
        }
        let a = inline.total_energy();
        let b = global.total_energy();
        assert!(a > 0.0);
        assert!(
            (a - b).abs() < 1e-9 * a,
            "inline {a} vs global {b}: linear models must agree"
        );
        assert_eq!(global.cycles(), 200);
        assert!(global.handovers() > 0);
    }

    #[test]
    fn fsm_probe_reproduces_calibration_exactly_on_same_trace() {
        let mut inline = InlineProbe::new(model());
        let trace: Vec<BusSnapshot> = (0..300).map(snap).collect();
        for s in &trace {
            inline.observe(s);
        }
        let mut fsm = FsmProbe::from_calibration(inline.fsm().ledger());
        for s in &trace {
            fsm.observe(s);
        }
        let a = inline.total_energy();
        let b = fsm.total_energy();
        // Same instruction mix as the calibration run -> identical total.
        assert!((a - b).abs() < 1e-9 * a, "inline {a} vs fsm {b}");
    }

    #[test]
    fn fsm_probe_deviates_on_different_traffic() {
        let mut inline = InlineProbe::new(model());
        for i in 0..300 {
            inline.observe(&snap(i));
        }
        let mut fsm = FsmProbe::from_calibration(inline.fsm().ledger());
        let mut inline2 = InlineProbe::new(model());
        // Different data activity: same instruction mix, all-zero payloads.
        for i in 0..300 {
            let mut s = snap(i);
            s.hwdata = 0;
            s.hrdata = 0;
            fsm.observe(&s);
            inline2.observe(&s);
        }
        let exact = inline2.total_energy();
        let approx = fsm.total_energy();
        assert!(
            (exact - approx).abs() > 0.05 * exact,
            "fsm style should be visibly off when activity changes: {exact} vs {approx}"
        );
    }

    #[test]
    fn styles_report_names() {
        assert_eq!(InlineProbe::new(model()).style(), "inline");
        assert_eq!(FsmProbe::from_table([0.0; 16]).style(), "fsm");
        assert_eq!(GlobalProbe::new(model()).style(), "global");
    }
}
