//! Energy macromodels of the AHB sub-blocks (paper Section 5.1).
//!
//! Each macromodel maps *IP parameters* (bus width, number of masters and
//! slaves) and *data activity* (Hamming distances between consecutive
//! values) to dynamic energy per bus cycle. The decoder model is the
//! paper's closed-form formula; the multiplexer and arbiter models follow
//! the same construction (the paper states only their functional form
//! `E_MUX = f(w, n, HD_IN, HD_SEL)`). All three can alternatively be
//! **fitted** to gate-level measurements from `ahbpower-gate`, reproducing
//! the SIS-based characterization step.

pub use ahbpower_gate::TechParams;

/// `ceil(log2(n))` for `n >= 2` — the paper's "first integer greater than
/// `log2(n_O - 1)`".
pub fn ceil_log2(n: usize) -> u32 {
    ahbpower_gate::addr_bits(n) as u32
}

/// Per-block energies of one bus cycle, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockEnergy {
    /// Address decoder.
    pub dec: f64,
    /// Masters-to-slaves mux (address/control/write-data path).
    pub m2s: f64,
    /// Slaves-to-masters mux (read-data/response path).
    pub s2m: f64,
    /// Arbiter.
    pub arb: f64,
}

impl BlockEnergy {
    /// Total energy across the four sub-blocks.
    pub fn total(&self) -> f64 {
        self.dec + self.m2s + self.s2m + self.arb
    }
}

impl std::ops::Add for BlockEnergy {
    type Output = BlockEnergy;
    fn add(self, rhs: BlockEnergy) -> BlockEnergy {
        BlockEnergy {
            dec: self.dec + rhs.dec,
            m2s: self.m2s + rhs.m2s,
            s2m: self.s2m + rhs.s2m,
            arb: self.arb + rhs.arb,
        }
    }
}

impl std::ops::AddAssign for BlockEnergy {
    fn add_assign(&mut self, rhs: BlockEnergy) {
        *self = *self + rhs;
    }
}

/// The paper's parametric decoder macromodel:
///
/// ```text
/// E_DEC = V_DD²/4 · (n_I · n_O · C_PD · HD_IN  +  2 · HD_OUT · C_O)
/// ```
///
/// with `HD_OUT = 1` iff `HD_IN >= 1` (a one-hot decoder moves exactly two
/// output bits whenever the selected output changes).
///
/// # Examples
///
/// ```
/// use ahbpower::{DecoderModel, TechParams};
///
/// let dec = DecoderModel::from_paper(4, &TechParams::default());
/// assert_eq!(dec.energy(0), 0.0);
/// assert!(dec.energy(2) > dec.energy(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoderModel {
    /// Number of decoder outputs (slaves).
    pub n_outputs: usize,
    /// Number of address inputs `n_I`.
    pub n_addr_bits: u32,
    /// Energy per unit of input Hamming distance (joules).
    pub alpha: f64,
    /// Energy added whenever the input changes at all (output term, joules).
    pub beta: f64,
}

impl DecoderModel {
    /// Instantiates the paper's closed-form model.
    ///
    /// # Panics
    ///
    /// Panics if `n_outputs < 2`.
    pub fn from_paper(n_outputs: usize, tech: &TechParams) -> Self {
        let n_i = ceil_log2(n_outputs);
        DecoderModel {
            n_outputs,
            n_addr_bits: n_i,
            alpha: f64::from(n_i) * n_outputs as f64 * tech.energy_per_toggle(tech.c_internal),
            beta: 2.0 * tech.energy_per_toggle(tech.c_output),
        }
    }

    /// Builds a model from fitted coefficients (see
    /// [`crate::fit_decoder_model`]).
    pub fn from_fit(n_outputs: usize, alpha: f64, beta: f64) -> Self {
        DecoderModel {
            n_outputs,
            n_addr_bits: ceil_log2(n_outputs),
            alpha,
            beta,
        }
    }

    /// Energy of one input transition with Hamming distance `hd_in`.
    pub fn energy(&self, hd_in: u32) -> f64 {
        if hd_in == 0 {
            return 0.0;
        }
        self.alpha * f64::from(hd_in) + self.beta
    }

    /// The model's named coefficients, for domain validation by static
    /// analyzers (every coefficient of a physical energy model must be
    /// finite and non-negative).
    pub fn coefficients(&self) -> [(&'static str, f64); 2] {
        [("alpha", self.alpha), ("beta", self.beta)]
    }

    /// Scales every energy coefficient by `factor` — the anomaly-injection
    /// hook: a scaled block emulates a design drift (or a fault) whose
    /// energy signature the on-line detector must notice.
    pub fn scale(&mut self, factor: f64) {
        self.alpha *= factor;
        self.beta *= factor;
    }
}

/// The multiplexer macromodel `E_MUX = f(w, n, HD_IN, HD_SEL)`.
///
/// Derived for the AND-OR-tree structure `ahbpower-gate` synthesizes:
/// a flipped bit of the *selected* channel propagates through one AND gate
/// and `ceil(log2 n)` OR levels before reaching the output; a select change
/// re-decodes the one-hot select lines and re-paths (on average) half the
/// data bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MuxModel {
    /// Data width `w` in bits.
    pub width: u32,
    /// Number of input channels `n`.
    pub n_inputs: usize,
    /// Internal energy per flipped data bit (joules).
    pub a_data: f64,
    /// Output-node energy per flipped data bit (joules).
    pub a_out: f64,
    /// Energy of one select change (joules).
    pub b_sel: f64,
}

impl MuxModel {
    /// Instantiates the analytic model for a `width`-bit, `n_inputs`-channel
    /// mux.
    ///
    /// # Panics
    ///
    /// Panics if `n_inputs < 2` or `width == 0`.
    pub fn from_paper_form(width: u32, n_inputs: usize, tech: &TechParams) -> Self {
        assert!(width > 0, "mux width must be positive");
        let levels = f64::from(ceil_log2(n_inputs));
        let e_pd = tech.energy_per_toggle(tech.c_internal);
        let e_o = tech.energy_per_toggle(tech.c_output);
        let w = f64::from(width);
        let sel_bits = f64::from(ceil_log2(n_inputs));
        MuxModel {
            width,
            n_inputs,
            a_data: e_pd * (1.0 + levels),
            a_out: e_o,
            // Select decoder (inverters + lines) + half the data bits
            // re-pathing through AND/OR levels + half the outputs moving.
            b_sel: e_pd * (sel_bits + n_inputs as f64 + w * (1.0 + levels) / 2.0) + e_o * (w / 2.0),
        }
    }

    /// Builds a model from fitted coefficients (see
    /// [`crate::fit_mux_model`]).
    pub fn from_fit(width: u32, n_inputs: usize, a_data: f64, a_out: f64, b_sel: f64) -> Self {
        MuxModel {
            width,
            n_inputs,
            a_data,
            a_out,
            b_sel,
        }
    }

    /// Energy of one cycle with `hd_in` flipped data bits and (optionally)
    /// a select change.
    pub fn energy(&self, hd_in: u32, sel_changed: bool) -> f64 {
        let data = f64::from(hd_in) * (self.a_data + self.a_out);
        let sel = if sel_changed { self.b_sel } else { 0.0 };
        data + sel
    }

    /// The model's named coefficients, for domain validation by static
    /// analyzers.
    pub fn coefficients(&self) -> [(&'static str, f64); 3] {
        [
            ("a_data", self.a_data),
            ("a_out", self.a_out),
            ("b_sel", self.b_sel),
        ]
    }

    /// Scales every energy coefficient by `factor` (anomaly-injection
    /// hook; see [`DecoderModel::scale`]).
    pub fn scale(&mut self, factor: f64) {
        self.a_data *= factor;
        self.a_out *= factor;
        self.b_sel *= factor;
    }
}

/// The arbiter macromodel — a small FSM whose energy follows request
/// activity and grant handovers ("a simple FSM was created to model the
/// energy requirement of a simplified version of the arbiter").
///
/// Unlike the purely combinational decoder/mux models, the arbiter is a
/// *clocked* block: its grant/state registers load the clock every cycle,
/// so the model carries a constant per-cycle term `e_clock`. This is what
/// gives the paper's IDLE instructions their non-zero average energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArbiterModel {
    /// Number of masters.
    pub n_masters: usize,
    /// Energy per toggled HBUSREQ bit (priority-chain activity, joules).
    pub a_req: f64,
    /// Energy per bus handover (grant register + network re-path, joules).
    pub b_grant: f64,
    /// Clock-load energy per cycle (grant + FSM register clock pins,
    /// joules). Dissipated every cycle regardless of activity.
    pub e_clock: f64,
}

impl ArbiterModel {
    /// Instantiates the analytic model for `n_masters` masters.
    ///
    /// # Panics
    ///
    /// Panics if `n_masters == 0`.
    pub fn from_paper_form(n_masters: usize, tech: &TechParams) -> Self {
        assert!(n_masters > 0, "need at least one master");
        let e_pd = tech.energy_per_toggle(tech.c_internal);
        let e_o = tech.energy_per_toggle(tech.c_output);
        ArbiterModel {
            n_masters,
            // A toggled request ripples through the OR chain (~2 nodes).
            a_req: e_pd * 2.0,
            // A handover toggles two grant lines and re-paths the chain.
            b_grant: e_pd * n_masters as f64 + e_o * 2.0,
            // n grant registers + ~2 FSM state bits, two clock-pin toggles
            // per cycle each.
            e_clock: e_pd * 2.0 * (n_masters as f64 + 2.0),
        }
    }

    /// Builds a model from fitted coefficients (see
    /// [`crate::fit_arbiter_model`]). The gate-level reference does not
    /// model clock-pin load, so `e_clock` is passed through analytically.
    pub fn from_fit(n_masters: usize, a_req: f64, b_grant: f64, e_clock: f64) -> Self {
        ArbiterModel {
            n_masters,
            a_req,
            b_grant,
            e_clock,
        }
    }

    /// Energy of one cycle with `hd_req` toggled request bits and
    /// (optionally) a handover. Includes the per-cycle clock term.
    pub fn energy(&self, hd_req: u32, handover: bool) -> f64 {
        self.e_clock + f64::from(hd_req) * self.a_req + if handover { self.b_grant } else { 0.0 }
    }

    /// The model's named coefficients, for domain validation by static
    /// analyzers.
    pub fn coefficients(&self) -> [(&'static str, f64); 3] {
        [
            ("a_req", self.a_req),
            ("b_grant", self.b_grant),
            ("e_clock", self.e_clock),
        ]
    }

    /// Scales every energy coefficient by `factor` (anomaly-injection
    /// hook; see [`DecoderModel::scale`]).
    pub fn scale(&mut self, factor: f64) {
        self.a_req *= factor;
        self.b_grant *= factor;
        self.e_clock *= factor;
    }
}

/// An ordinary-least-squares line fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination (1.0 = perfect fit).
    pub r2: f64,
}

/// Fits a line through `(x, y)` points.
///
/// # Panics
///
/// Panics with fewer than two points or when all `x` are identical.
///
/// # Examples
///
/// ```
/// use ahbpower::fit_linear;
///
/// let fit = fit_linear(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]);
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!((fit.r2 - 1.0).abs() < 1e-12);
/// ```
pub fn fit_linear(points: &[(f64, f64)]) -> LinearFit {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-30, "x values are degenerate");
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    LinearFit {
        slope,
        intercept,
        r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechParams {
        TechParams::default()
    }

    #[test]
    fn decoder_model_matches_paper_formula() {
        let t = tech();
        let m = DecoderModel::from_paper(4, &t);
        assert_eq!(m.n_addr_bits, 2);
        // Hand-evaluate: V²/4 (nI nO C_PD HD + 2 C_O)
        let v24 = t.vdd * t.vdd / 4.0;
        let hd = 2u32;
        let expect = v24 * (2.0 * 4.0 * t.c_internal * hd as f64 + 2.0 * t.c_output);
        assert!((m.energy(hd) - expect).abs() < 1e-18);
        assert_eq!(m.energy(0), 0.0);
    }

    #[test]
    fn decoder_energy_grows_with_slave_count() {
        let t = tech();
        let small = DecoderModel::from_paper(2, &t);
        let large = DecoderModel::from_paper(16, &t);
        assert!(large.energy(1) > small.energy(1));
    }

    #[test]
    fn mux_energy_scales_with_hd_and_select() {
        let t = tech();
        let m = MuxModel::from_paper_form(32, 3, &t);
        assert_eq!(m.energy(0, false), 0.0);
        assert!(m.energy(16, false) > m.energy(1, false));
        assert!(m.energy(0, true) > 0.0, "select change alone costs energy");
        assert!(
            (m.energy(5, true) - (m.energy(5, false) + m.energy(0, true))).abs() < 1e-20,
            "data and select terms are additive"
        );
    }

    #[test]
    fn wider_mux_has_costlier_select_change() {
        let t = tech();
        let narrow = MuxModel::from_paper_form(8, 3, &t);
        let wide = MuxModel::from_paper_form(64, 3, &t);
        assert!(wide.energy(0, true) > narrow.energy(0, true));
    }

    #[test]
    fn arbiter_energy_terms() {
        let t = tech();
        let a = ArbiterModel::from_paper_form(3, &t);
        assert_eq!(a.energy(0, false), a.e_clock, "idle cycles cost the clock");
        assert!(a.e_clock > 0.0);
        assert!(a.energy(2, false) > a.energy(1, false));
        assert!(a.energy(0, true) > a.energy(2, false), "handover dominates");
    }

    #[test]
    fn block_energy_arithmetic() {
        let a = BlockEnergy {
            dec: 1.0,
            m2s: 2.0,
            s2m: 3.0,
            arb: 4.0,
        };
        let b = a + a;
        assert_eq!(b.total(), 20.0);
        let mut c = a;
        c += a;
        assert_eq!(c, b);
        assert_eq!(BlockEnergy::default().total(), 0.0);
    }

    #[test]
    fn linear_fit_recovers_noiseless_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.5 * i as f64 - 2.0)).collect();
        let f = fit_linear(&pts);
        assert!((f.slope - 3.5).abs() < 1e-9);
        assert!((f.intercept + 2.0).abs() < 1e-9);
        assert!(f.r2 > 0.999_999);
    }

    #[test]
    fn linear_fit_r2_degrades_with_noise() {
        let pts = vec![(0.0, 0.0), (1.0, 2.0), (2.0, 1.0), (3.0, 5.0)];
        let f = fit_linear(&pts);
        assert!(f.r2 < 1.0);
        assert!(f.r2 > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn fit_needs_points() {
        let _ = fit_linear(&[(1.0, 1.0)]);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }
}
