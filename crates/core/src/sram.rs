//! A second application of the methodology: an SRAM slave IP.
//!
//! The paper argues the approach "could be reused for different IP
//! typologies, in order to avoid [writing] each time a new power model from
//! scratch". This module demonstrates exactly that: the same structural
//! (row decoder + cell array) and behavioural (IDLE/READ/WRITE modes and
//! their transitions) decomposition, applied to a memory slave and driven
//! by the same per-cycle [`BusSnapshot`] stream.

use ahbpower_ahb::{BusSnapshot, SlaveId};

use crate::activity::hamming;
use crate::macromodel::{ceil_log2, DecoderModel, TechParams};

/// The SRAM's activity modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SramMode {
    /// No access this cycle.
    #[default]
    Idle,
    /// A read access.
    Read,
    /// A write access.
    Write,
}

impl SramMode {
    /// All modes, in index order.
    pub const ALL: [SramMode; 3] = [SramMode::Idle, SramMode::Read, SramMode::Write];

    /// A stable index in `0..3`.
    pub fn index(self) -> usize {
        match self {
            SramMode::Idle => 0,
            SramMode::Read => 1,
            SramMode::Write => 2,
        }
    }

    /// The mode's spelling, paper-style.
    pub fn name(self) -> &'static str {
        match self {
            SramMode::Idle => "IDLE",
            SramMode::Read => "READ",
            SramMode::Write => "WRITE",
        }
    }
}

/// The SRAM energy macromodel: a row decoder (re-using the paper's decoder
/// formula) plus bitline/sense-amp terms per access and a precharge term
/// per cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramModel {
    /// Word capacity.
    pub words: usize,
    /// Data width in bits.
    pub width: u32,
    /// Row-decoder model (`n_O` = number of rows).
    pub row_decoder: DecoderModel,
    /// Energy per bitline swing during a read (sense amps), joules.
    pub e_read_bit: f64,
    /// Energy per bitline driven during a write, joules.
    pub e_write_bit: f64,
    /// Precharge/clock energy per cycle, joules.
    pub e_precharge: f64,
}

impl SramModel {
    /// Builds the analytic model for a `words` × `width` SRAM.
    ///
    /// # Panics
    ///
    /// Panics if `words < 2` or `width == 0`.
    pub fn new(words: usize, width: u32, tech: &TechParams) -> Self {
        assert!(words >= 2, "need at least two words");
        assert!(width > 0, "need a positive width");
        let e_pd = tech.energy_per_toggle(tech.c_internal);
        let e_o = tech.energy_per_toggle(tech.c_output);
        SramModel {
            words,
            width,
            row_decoder: DecoderModel::from_paper(words, tech),
            // A read swings half the bitline pair per column plus the sense
            // amplifier output.
            e_read_bit: e_pd * 0.5 + e_o * 0.5,
            // A write drives the full bitline rail on ~half the columns.
            e_write_bit: e_pd + e_o * 0.5,
            // Precharge clocking of the column circuitry.
            e_precharge: e_pd * 0.25 * f64::from(width).sqrt(),
        }
    }

    /// Address bits decoded by the row decoder.
    pub fn addr_bits(&self) -> u32 {
        ceil_log2(self.words)
    }

    /// Energy of one cycle in `mode`, given the Hamming distance of the
    /// word address vs. the previous access.
    pub fn energy(&self, mode: SramMode, hd_addr: u32) -> f64 {
        let w = f64::from(self.width);
        self.e_precharge
            + match mode {
                SramMode::Idle => 0.0,
                SramMode::Read => self.row_decoder.energy(hd_addr) + self.e_read_bit * w,
                SramMode::Write => self.row_decoder.energy(hd_addr) + self.e_write_bit * w,
            }
    }
}

/// A mode-transition energy ledger for the SRAM (the per-IP analogue of
/// [`crate::InstructionLedger`], 3×3 transitions).
#[derive(Debug, Clone, Default)]
pub struct SramLedger {
    counts: [[u64; 3]; 3],
    energy: [[f64; 3]; 3],
}

impl SramLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        SramLedger::default()
    }

    /// Records one `from -> to` transition costing `joules`.
    pub fn record(&mut self, from: SramMode, to: SramMode, joules: f64) {
        self.counts[from.index()][to.index()] += 1;
        self.energy[from.index()][to.index()] += joules;
    }

    /// Total energy, joules.
    pub fn total_energy(&self) -> f64 {
        self.energy.iter().flatten().sum()
    }

    /// `(name, count, total_energy)` rows for transitions that occurred,
    /// sorted by descending energy.
    pub fn rows(&self) -> Vec<(String, u64, f64)> {
        let mut rows = Vec::new();
        for from in SramMode::ALL {
            for to in SramMode::ALL {
                let n = self.counts[from.index()][to.index()];
                if n > 0 {
                    rows.push((
                        format!("{}_{}", from.name(), to.name()),
                        n,
                        self.energy[from.index()][to.index()],
                    ));
                }
            }
        }
        rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));
        rows
    }
}

/// Watches one slave's traffic in the [`BusSnapshot`] stream and books SRAM
/// energy per mode transition — IP-level power analysis riding on the same
/// instrumentation as the bus-level analysis.
#[derive(Debug, Clone)]
pub struct SramProbe {
    slave: SlaveId,
    model: SramModel,
    mode: SramMode,
    last_addr: Option<u32>,
    ledger: SramLedger,
}

impl SramProbe {
    /// Creates a probe for slave `slave`.
    pub fn new(slave: SlaveId, model: SramModel) -> Self {
        SramProbe {
            slave,
            model,
            mode: SramMode::Idle,
            last_addr: None,
            ledger: SramLedger::new(),
        }
    }

    /// Processes one cycle's wires.
    pub fn observe(&mut self, snap: &BusSnapshot) {
        let selected = snap.hsel_bit(self.slave.index());
        let accessed = selected && snap.htrans.is_transfer() && snap.hready;
        let (mode, hd) = if accessed {
            let word_addr = (snap.haddr / 4) % self.model.words as u32;
            let hd = self
                .last_addr
                .map(|prev| hamming(u64::from(prev), u64::from(word_addr)))
                .unwrap_or(self.model.addr_bits());
            self.last_addr = Some(word_addr);
            let mode = if snap.hwrite {
                SramMode::Write
            } else {
                SramMode::Read
            };
            (mode, hd)
        } else {
            (SramMode::Idle, 0)
        };
        let energy = self.model.energy(mode, hd);
        self.ledger.record(self.mode, mode, energy);
        self.mode = mode;
    }

    /// The accumulated ledger.
    pub fn ledger(&self) -> &SramLedger {
        &self.ledger
    }

    /// Total SRAM energy, joules.
    pub fn total_energy(&self) -> f64 {
        self.ledger.total_energy()
    }

    /// The model in use.
    pub fn model(&self) -> &SramModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahbpower_ahb::{AddressMap, AhbBusBuilder, MemorySlave, Op, ScriptedMaster};

    fn model() -> SramModel {
        SramModel::new(1024, 32, &TechParams::default())
    }

    #[test]
    fn reads_cost_less_than_writes() {
        let m = model();
        assert!(m.energy(SramMode::Write, 1) > m.energy(SramMode::Read, 1));
        assert!(m.energy(SramMode::Read, 1) > m.energy(SramMode::Idle, 0));
        assert!((m.energy(SramMode::Idle, 5) - m.e_precharge).abs() < 1e-20);
    }

    #[test]
    fn address_locality_saves_decoder_energy() {
        let m = model();
        assert!(m.energy(SramMode::Read, 1) < m.energy(SramMode::Read, 8));
    }

    #[test]
    fn probe_books_transitions_from_real_bus_traffic() {
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::write(0x10, 1),
                Op::read(0x10),
                Op::Idle(3),
                Op::write(0x1010, 2), // other slave: not booked here
            ])))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .build()
            .unwrap();
        let mut probe = SramProbe::new(SlaveId(0), model());
        for _ in 0..20 {
            probe.observe(bus.step());
        }
        let rows = probe.ledger().rows();
        let names: Vec<&str> = rows.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(names.contains(&"IDLE_WRITE"), "{names:?}");
        assert!(names.contains(&"WRITE_READ"), "{names:?}");
        assert!(names.contains(&"READ_IDLE"), "{names:?}");
        // Exactly two accesses hit slave 0.
        let accesses: u64 = rows
            .iter()
            .filter(|(n, _, _)| !n.ends_with("IDLE"))
            .map(|(_, c, _)| c)
            .sum();
        assert_eq!(accesses, 2);
        assert!(probe.total_energy() > 0.0);
    }

    #[test]
    fn unselected_slave_books_only_idle() {
        let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
            .master(Box::new(ScriptedMaster::new(vec![Op::write(0x10, 1)])))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .build()
            .unwrap();
        let mut probe = SramProbe::new(SlaveId(1), model());
        for _ in 0..10 {
            probe.observe(bus.step());
        }
        let rows = probe.ledger().rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "IDLE_IDLE");
        // Idle cycles still cost the precharge floor.
        assert!(probe.total_energy() > 0.0);
    }

    #[test]
    fn ledger_totals_are_consistent() {
        let mut l = SramLedger::new();
        l.record(SramMode::Idle, SramMode::Read, 2e-12);
        l.record(SramMode::Read, SramMode::Read, 3e-12);
        assert!((l.total_energy() - 5e-12).abs() < 1e-24);
        assert_eq!(l.rows().len(), 2);
        assert_eq!(l.rows()[0].0, "READ_READ");
    }

    #[test]
    #[should_panic(expected = "two words")]
    fn tiny_sram_panics() {
        let _ = SramModel::new(1, 32, &TechParams::default());
    }
}
