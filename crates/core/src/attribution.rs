//! Energy attribution by (master, slave, instruction).
//!
//! The power FSM books every cycle's energy against the address-phase
//! owner (`BusSnapshot::hmaster`); the [`AttributionTable`] refines that
//! booking with the slave the owner's open transaction targets and the
//! cycle's instruction, while conserving the total exactly: every cycle is
//! recorded in exactly one cell, so the table's total equals
//! `InstructionLedger::total_energy()` up to float summation order.

use std::collections::BTreeMap;

use ahbpower_ahb::{MasterId, SlaveId};

use crate::instruction::Instruction;
use crate::macromodel::BlockEnergy;

/// Cell key: `(master, slave, instruction index)`; `None` for the slave
/// marks cycles with no decoded slave (idle cycles and default-slave
/// transfers).
type CellKey = (u8, Option<u8>, usize);

/// One attribution cell, flattened for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttributionRow {
    /// The master the energy is booked to (the address-phase owner).
    pub master: MasterId,
    /// The slave its open transaction targeted, if any.
    pub slave: Option<SlaveId>,
    /// The instruction executed on the attributed cycles.
    pub instruction: Instruction,
    /// Attributed energy, split by sub-block (joules).
    pub energy: BlockEnergy,
}

/// Accumulates per-cycle energy into (master, slave, instruction) cells.
///
/// Deterministic: cells live in a [`BTreeMap`], so iteration order — and
/// therefore every export built from [`AttributionTable::rows`] — is
/// stable across runs and platforms.
///
/// # Examples
///
/// ```
/// use ahbpower::{ActivityMode, AttributionTable, BlockEnergy, Instruction};
/// use ahbpower_ahb::{MasterId, SlaveId};
///
/// let mut table = AttributionTable::new();
/// let instr = Instruction::new(ActivityMode::Idle, ActivityMode::Write);
/// let energy = BlockEnergy { dec: 1e-12, m2s: 2e-12, s2m: 0.0, arb: 1e-12 };
/// table.record(MasterId(0), Some(SlaveId(1)), instr, energy);
/// assert_eq!(table.cycles(), 1);
/// assert!((table.total_energy() - 4e-12).abs() < 1e-24);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AttributionTable {
    cells: BTreeMap<CellKey, BlockEnergy>,
    per_master: Vec<f64>,
    cycles: u64,
}

impl AttributionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        AttributionTable::default()
    }

    /// Books one cycle's energy to `(master, slave, instruction)`.
    pub fn record(
        &mut self,
        master: MasterId,
        slave: Option<SlaveId>,
        instruction: Instruction,
        energy: BlockEnergy,
    ) {
        let key = (master.0, slave.map(|s| s.0), instruction.index());
        *self.cells.entry(key).or_default() += energy;
        let idx = master.index();
        if idx >= self.per_master.len() {
            self.per_master.resize(idx + 1, 0.0);
        }
        self.per_master[idx] += energy.total();
        self.cycles += 1;
    }

    /// Cycles recorded.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of non-empty cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total attributed energy, joules. Conserves the ledger total: every
    /// observed cycle's energy lands in exactly one cell.
    pub fn total_energy(&self) -> f64 {
        // + 0.0 normalizes the empty sum, which is -0.0, so an empty
        // table doesn't report "-0.00 pJ".
        self.cells.values().map(BlockEnergy::total).sum::<f64>() + 0.0
    }

    /// Energy per master (index = master id), joules.
    pub fn per_master_energy(&self) -> &[f64] {
        &self.per_master
    }

    /// All cells in deterministic key order (master, then slave, then
    /// instruction index).
    pub fn rows(&self) -> Vec<AttributionRow> {
        self.cells
            .iter()
            .map(|(&(master, slave, instr), &energy)| AttributionRow {
                master: MasterId(master),
                slave: slave.map(SlaveId),
                instruction: Instruction::from_index(instr),
                energy,
            })
            .collect()
    }

    /// The `n` highest-energy cells, descending (ties keep key order).
    pub fn top_rows(&self, n: usize) -> Vec<AttributionRow> {
        let mut rows = self.rows();
        rows.sort_by(|a, b| {
            b.energy
                .total()
                .partial_cmp(&a.energy.total())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows.truncate(n);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::ActivityMode;

    fn e(x: f64) -> BlockEnergy {
        BlockEnergy {
            dec: x,
            m2s: 2.0 * x,
            s2m: 0.5 * x,
            arb: x,
        }
    }

    #[test]
    fn records_conserve_totals_and_split_by_key() {
        let mut t = AttributionTable::new();
        let wr = Instruction::new(ActivityMode::Write, ActivityMode::Read);
        let ii = Instruction::new(ActivityMode::Idle, ActivityMode::Idle);
        t.record(MasterId(0), Some(SlaveId(0)), wr, e(1.0));
        t.record(MasterId(0), Some(SlaveId(0)), wr, e(1.0));
        t.record(MasterId(1), None, ii, e(2.0));
        assert_eq!(t.cycles(), 3);
        assert_eq!(t.len(), 2);
        let expected = e(1.0).total() * 2.0 + e(2.0).total();
        assert!((t.total_energy() - expected).abs() < 1e-12);
        assert!((t.per_master_energy()[0] - e(1.0).total() * 2.0).abs() < 1e-12);
        assert!((t.per_master_energy()[1] - e(2.0).total()).abs() < 1e-12);
    }

    #[test]
    fn rows_are_deterministic_and_top_rows_sort_descending() {
        let mut t = AttributionTable::new();
        let wr = Instruction::new(ActivityMode::Write, ActivityMode::Read);
        t.record(MasterId(1), None, wr, e(1.0));
        t.record(MasterId(0), Some(SlaveId(2)), wr, e(3.0));
        t.record(MasterId(0), Some(SlaveId(1)), wr, e(2.0));
        let rows = t.rows();
        // Key order: master 0 slaves 1, 2, then master 1.
        assert_eq!(rows[0].slave, Some(SlaveId(1)));
        assert_eq!(rows[1].slave, Some(SlaveId(2)));
        assert_eq!(rows[2].master, MasterId(1));
        let top = t.top_rows(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].slave, Some(SlaveId(2)));
        assert_eq!(top[1].slave, Some(SlaveId(1)));
    }
}
