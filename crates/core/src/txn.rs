//! Transaction-level energy tracing.
//!
//! [`TxnTracer`] couples the AHB crate's [`LifecycleTap`] with the power
//! FSM's per-cycle output: lifecycle events assemble causally-linked
//! [`TxnRecord`]s (request → grant → address → data → completion), and
//! every cycle's [`BlockEnergy`] is added both to the owning master's open
//! transaction and to an [`AttributionTable`] keyed by (master, slave,
//! instruction). Completed records land in a bounded ring buffer — oldest
//! evicted first — so tracing stays safe at millions of cycles while the
//! attribution table (16 instructions × masters × slaves, tiny) keeps
//! exact energy totals regardless of eviction.

use std::collections::VecDeque;

use ahbpower_ahb::{BusSnapshot, HBurst, LifecycleTap, MasterId, SlaveId, TxnEvent};

use crate::attribution::AttributionTable;
use crate::macromodel::BlockEnergy;
use crate::power_fsm::CycleRecord;

/// Default ring capacity: enough for every transaction of the smoke runs,
/// bounded for the multi-million-cycle ones.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Opt-in switch for transaction tracing, mirroring
/// [`crate::telemetry::TelemetryConfig`]: default-off, so a session built
/// from a default config is byte-identical to an untraced one.
#[derive(Debug, Clone)]
pub struct TxnTracerConfig {
    /// Master switch; `false` (the default) means no tracer is attached.
    pub enabled: bool,
    /// Completed-transaction ring capacity (clamped to at least 1).
    pub ring_capacity: usize,
}

impl Default for TxnTracerConfig {
    fn default() -> Self {
        TxnTracerConfig {
            enabled: false,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

impl TxnTracerConfig {
    /// An enabled config with the given ring capacity.
    pub fn enabled(ring_capacity: usize) -> Self {
        TxnTracerConfig {
            enabled: true,
            ring_capacity: ring_capacity.max(1),
        }
    }
}

/// One causally-linked bus transaction (a whole burst).
///
/// All `*_cycle` stamps are bus-cycle numbers (`BusSnapshot::cycle`).
/// `request_cycle`/`grant_cycle` are `None` when the transaction reused a
/// grant obtained for an earlier back-to-back burst (the edges are
/// consumed by the first transaction after them) or a parked grant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxnRecord {
    /// Monotonic transaction id, in start order.
    pub id: u64,
    /// The master that issued the transaction.
    pub master: MasterId,
    /// The decoded slave (`None` = default slave / no HSEL).
    pub slave: Option<SlaveId>,
    /// `true` for a write transfer.
    pub write: bool,
    /// First beat's address.
    pub addr: u32,
    /// Burst kind announced with the address phase.
    pub burst: HBurst,
    /// Cycle the master raised HBUSREQ, when observed.
    pub request_cycle: Option<u64>,
    /// Cycle the arbiter's grant edge arrived, when observed.
    pub grant_cycle: Option<u64>,
    /// Cycles spent waiting between request and grant.
    pub grant_wait_cycles: u64,
    /// Cycle of the NONSEQ address phase.
    pub start_cycle: u64,
    /// Cycle the final data beat completed.
    pub complete_cycle: u64,
    /// Data beats completed (1 for SINGLE, up to 16 for INCR16/WRAP16).
    pub beats: u32,
    /// Beats that ended with an OKAY response.
    pub ok_beats: u32,
    /// HREADY wait-state cycles inside the data phases.
    pub wait_cycles: u64,
    /// Energy booked to the owning master while this transaction was
    /// open, split by sub-block (joules).
    pub energy: BlockEnergy,
}

impl TxnRecord {
    /// Bus-occupancy cycles, address phase through final data beat.
    pub fn occupancy_cycles(&self) -> u64 {
        self.complete_cycle.saturating_sub(self.start_cycle) + 1
    }
}

/// Per-master assembly state plus the bounded result ring.
#[derive(Debug, Clone)]
struct TxnState {
    /// In-flight transaction per master.
    open: Vec<Option<TxnRecord>>,
    /// Pending HBUSREQ edge per master, consumed by its next start.
    last_request: Vec<Option<u64>>,
    /// Pending grant edge per master: `(cycle, wait_cycles)`.
    last_grant: Vec<Option<(u64, u64)>>,
    ring: VecDeque<TxnRecord>,
    capacity: usize,
    next_id: u64,
    completed: u64,
    evicted: u64,
}

impl TxnState {
    fn ensure_master(&mut self, idx: usize) {
        if idx >= self.open.len() {
            self.open.resize(idx + 1, None);
            self.last_request.resize(idx + 1, None);
            self.last_grant.resize(idx + 1, None);
        }
    }

    fn apply(&mut self, event: TxnEvent, cycle: u64) {
        match event {
            TxnEvent::Requested { master } => {
                let m = master.index();
                self.ensure_master(m);
                self.last_request[m] = Some(cycle);
            }
            TxnEvent::Granted {
                master,
                wait_cycles,
            } => {
                let m = master.index();
                self.ensure_master(m);
                self.last_grant[m] = Some((cycle, wait_cycles));
            }
            TxnEvent::Started {
                master,
                slave,
                addr,
                write,
                burst,
            } => {
                let m = master.index();
                self.ensure_master(m);
                let id = self.next_id;
                self.next_id += 1;
                let (grant_cycle, grant_wait_cycles) = match self.last_grant[m].take() {
                    Some((c, w)) => (Some(c), w),
                    None => (None, 0),
                };
                self.open[m] = Some(TxnRecord {
                    id,
                    master,
                    slave,
                    write,
                    addr,
                    burst,
                    request_cycle: self.last_request[m].take(),
                    grant_cycle,
                    grant_wait_cycles,
                    start_cycle: cycle,
                    complete_cycle: cycle,
                    beats: 0,
                    ok_beats: 0,
                    wait_cycles: 0,
                    energy: BlockEnergy::default(),
                });
            }
            TxnEvent::Stalled { master } => {
                if let Some(Some(txn)) = self.open.get_mut(master.index()) {
                    txn.wait_cycles += 1;
                }
            }
            TxnEvent::BeatDone { master, okay } => {
                if let Some(Some(txn)) = self.open.get_mut(master.index()) {
                    txn.beats += 1;
                    txn.ok_beats += u32::from(okay);
                    txn.complete_cycle = cycle;
                }
            }
            TxnEvent::Completed { master } => {
                if let Some(slot) = self.open.get_mut(master.index()) {
                    if let Some(txn) = slot.take() {
                        self.completed += 1;
                        if self.ring.len() == self.capacity {
                            self.ring.pop_front();
                            self.evicted += 1;
                        }
                        self.ring.push_back(txn);
                    }
                }
            }
        }
    }
}

/// The transaction-attribution tracer.
///
/// Feed it every cycle's snapshot plus the power FSM's [`CycleRecord`]
/// for that same cycle; read completed transactions from
/// [`TxnTracer::records`] and the exact energy split from
/// [`TxnTracer::attribution`]. Attach it to a session with
/// [`crate::PowerSession::with_txn_tracer`].
#[derive(Debug, Clone)]
pub struct TxnTracer {
    tap: LifecycleTap,
    state: TxnState,
    attribution: AttributionTable,
    last_cycle: u64,
    finished: bool,
}

impl TxnTracer {
    /// Creates a tracer for `n_masters` masters with the given completed-
    /// transaction ring capacity (clamped to at least 1).
    pub fn new(n_masters: usize, ring_capacity: usize) -> Self {
        TxnTracer {
            tap: LifecycleTap::new(n_masters),
            state: TxnState {
                open: vec![None; n_masters],
                last_request: vec![None; n_masters],
                last_grant: vec![None; n_masters],
                ring: VecDeque::new(),
                capacity: ring_capacity.max(1),
                next_id: 0,
                completed: 0,
                evicted: 0,
            },
            attribution: AttributionTable::new(),
            last_cycle: 0,
            finished: false,
        }
    }

    /// Observes one cycle: applies the lifecycle events, then books the
    /// cycle's energy to the owning master's open transaction and to the
    /// attribution table. Every cycle is attributed (to the address-phase
    /// owner, with `slave = None` outside transactions), so the table's
    /// total conserves the instruction ledger's.
    pub fn observe(&mut self, snap: &BusSnapshot, rec: &CycleRecord) {
        self.last_cycle = snap.cycle;
        let state = &mut self.state;
        self.tap
            .observe(snap, |event| state.apply(event, snap.cycle));
        let owner = snap.hmaster;
        // The cycle's energy belongs to the owner's open transaction — or,
        // on a completion cycle (the transaction closed during the event
        // pass above), to the record that just reached the ring.
        let open_slave = state
            .open
            .get_mut(owner.index())
            .and_then(Option::as_mut)
            .map(|txn| {
                txn.energy += rec.energy;
                txn.slave
            });
        let slave = match open_slave {
            Some(slave) => slave,
            None => state
                .ring
                .back_mut()
                .filter(|txn| txn.master == owner && txn.complete_cycle == snap.cycle)
                .map(|txn| {
                    txn.energy += rec.energy;
                    txn.slave
                })
                .unwrap_or_default(),
        };
        self.attribution
            .record(owner, slave, rec.instruction, rec.energy);
    }

    /// Flushes the transaction still in flight, if any. Idempotent; call
    /// once the run is over, before exporting.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let state = &mut self.state;
        let cycle = self.last_cycle;
        self.tap.finish(|event| state.apply(event, cycle));
    }

    /// Completed transactions still in the ring, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TxnRecord> {
        self.state.ring.iter()
    }

    /// Completed transactions currently buffered.
    pub fn len(&self) -> usize {
        self.state.ring.len()
    }

    /// True when no transaction has completed yet.
    pub fn is_empty(&self) -> bool {
        self.state.ring.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.state.capacity
    }

    /// Transactions completed over the whole run (evicted ones included).
    pub fn completed(&self) -> u64 {
        self.state.completed
    }

    /// Completed transactions evicted from the ring.
    pub fn evicted(&self) -> u64 {
        self.state.evicted
    }

    /// The exact (master, slave, instruction) energy attribution.
    pub fn attribution(&self) -> &AttributionTable {
        &self.attribution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::{ActivityMode, Instruction};
    use ahbpower_ahb::{HResp, HSize, HTrans};

    fn snap(cycle: u64, trans: HTrans) -> BusSnapshot {
        BusSnapshot {
            cycle,
            haddr: 0x40 + 4 * cycle as u32,
            htrans: trans,
            hwrite: true,
            hsize: HSize::Word,
            hburst: HBurst::Single,
            hwdata: 0,
            hrdata: 0,
            hready: true,
            hresp: HResp::Okay,
            hmaster: MasterId(0),
            hmastlock: false,
            hbusreq: 0b1,
            hgrant: 0b1,
            hsel: 0b1,
        }
    }

    fn rec(x: f64) -> CycleRecord {
        CycleRecord {
            instruction: Instruction::new(ActivityMode::Idle, ActivityMode::Write),
            energy: BlockEnergy {
                dec: x,
                m2s: x,
                s2m: 0.0,
                arb: x,
            },
        }
    }

    /// Alternating NONSEQ/IDLE cycles: one single-beat write per pair.
    fn run_singles(tracer: &mut TxnTracer, n: u64) {
        for k in 0..n {
            tracer.observe(&snap(2 * k, HTrans::NonSeq), &rec(1.0));
            tracer.observe(&snap(2 * k + 1, HTrans::Idle), &rec(1.0));
        }
        tracer.finish();
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let mut tracer = TxnTracer::new(1, 2);
        run_singles(&mut tracer, 5);
        assert_eq!(tracer.completed(), 5);
        assert_eq!(tracer.evicted(), 3);
        assert_eq!(tracer.len(), 2);
        assert_eq!(tracer.capacity(), 2);
        // Oldest evicted first: ids 0, 1, 2 are gone; 3 then 4 remain.
        let ids: Vec<u64> = tracer.records().map(|t| t.id).collect();
        assert_eq!(ids, vec![3, 4]);
        // Attribution survives eviction: all 10 cycles are booked.
        assert_eq!(tracer.attribution().cycles(), 10);
        assert!((tracer.attribution().total_energy() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn records_carry_lifecycle_stamps_and_energy() {
        let mut tracer = TxnTracer::new(1, 8);
        run_singles(&mut tracer, 1);
        let txn = tracer.records().next().copied().expect("one transaction");
        assert_eq!(txn.master, MasterId(0));
        assert_eq!(txn.slave, Some(SlaveId(0)));
        assert!(txn.write);
        assert_eq!(txn.start_cycle, 0);
        assert_eq!(txn.complete_cycle, 1);
        assert_eq!(txn.occupancy_cycles(), 2);
        assert_eq!(txn.beats, 1);
        assert_eq!(txn.ok_beats, 1);
        // Both cycles were owned by master 0 with the txn open.
        assert!((txn.energy.total() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn finish_flushes_open_transaction_once() {
        let mut tracer = TxnTracer::new(1, 8);
        tracer.observe(&snap(0, HTrans::NonSeq), &rec(1.0));
        assert_eq!(tracer.len(), 0, "still open");
        tracer.finish();
        tracer.finish();
        assert_eq!(tracer.len(), 1);
        assert_eq!(tracer.completed(), 1);
    }
}
