//! Dynamic power management study — clock gating driven by the analysis.
//!
//! The paper notes the power-analysis code is normally excluded from
//! synthesis "unless it is necessary to develop a dynamic power management
//! for a run-time energy optimization of the system". This module builds
//! that bridge: a clock-gating policy evaluated over the observed snapshot
//! stream, quantifying how much of the clocked (arbiter-FSM) energy a DPM
//! controller would save, and at what wake-up latency cost.
//!
//! The study is *energy-side only*: gating decisions are derived from the
//! same wires the power FSM sees, and the report separates saved energy
//! from the latency that gating would have added (wake events × penalty),
//! so the trade-off can be judged without modifying bus behaviour.

use ahbpower_ahb::BusSnapshot;

use crate::model::AhbPowerModel;

/// A clock-gating policy for the bus's clocked logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockGatePolicy {
    /// Gate after this many consecutive quiet cycles (no transfer, no
    /// request). `0` gates immediately on the first quiet cycle.
    pub idle_threshold: u32,
    /// Cycles a wake-up would cost the first requester.
    pub wake_penalty: u32,
}

impl Default for ClockGatePolicy {
    fn default() -> Self {
        ClockGatePolicy {
            idle_threshold: 4,
            wake_penalty: 1,
        }
    }
}

/// Outcome of a clock-gating evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DpmReport {
    /// Cycles observed.
    pub cycles: u64,
    /// Cycles during which the clock would have been gated.
    pub gated_cycles: u64,
    /// Times the clock had to be re-enabled.
    pub wake_events: u64,
    /// Clocked energy without gating, joules.
    pub baseline_clock_energy: f64,
    /// Clocked energy with gating, joules.
    pub gated_clock_energy: f64,
    /// Total added latency if every wake cost the policy's penalty, cycles.
    pub added_latency_cycles: u64,
}

impl DpmReport {
    /// Fraction of the clocked energy saved (0..=1).
    pub fn savings(&self) -> f64 {
        if self.baseline_clock_energy <= 0.0 {
            return 0.0;
        }
        1.0 - self.gated_clock_energy / self.baseline_clock_energy
    }
}

/// Evaluates a clock-gating policy over the snapshot stream.
///
/// # Examples
///
/// ```
/// use ahbpower::{ClockGatePolicy, DpmProbe, AhbPowerModel, TechParams};
///
/// let model = AhbPowerModel::new(3, 3, &TechParams::default());
/// let probe = DpmProbe::new(model, ClockGatePolicy::default());
/// assert_eq!(probe.report().gated_cycles, 0);
/// ```
#[derive(Debug, Clone)]
pub struct DpmProbe {
    model: AhbPowerModel,
    policy: ClockGatePolicy,
    quiet_run: u64,
    gated: bool,
    report: DpmReport,
}

impl DpmProbe {
    /// Creates a probe for the given models and policy.
    pub fn new(model: AhbPowerModel, policy: ClockGatePolicy) -> Self {
        DpmProbe {
            model,
            policy,
            quiet_run: 0,
            gated: false,
            report: DpmReport::default(),
        }
    }

    /// Processes one cycle's wires.
    pub fn observe(&mut self, snap: &BusSnapshot) {
        let quiet = !snap.htrans.is_transfer() && snap.hbusreq == 0;
        let e_clock = self.model.arbiter.e_clock;
        self.report.cycles += 1;
        self.report.baseline_clock_energy += e_clock;
        if quiet {
            self.quiet_run += 1;
            if !self.gated && self.quiet_run > u64::from(self.policy.idle_threshold) {
                self.gated = true;
            }
        } else {
            if self.gated {
                self.gated = false;
                self.report.wake_events += 1;
                self.report.added_latency_cycles += u64::from(self.policy.wake_penalty);
            }
            self.quiet_run = 0;
        }
        if self.gated {
            self.report.gated_cycles += 1;
        } else {
            self.report.gated_clock_energy += e_clock;
        }
    }

    /// The accumulated report.
    pub fn report(&self) -> DpmReport {
        self.report
    }

    /// The policy under evaluation.
    pub fn policy(&self) -> ClockGatePolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macromodel::TechParams;
    use ahbpower_ahb::{BusSnapshot, HBurst, HResp, HSize, HTrans, MasterId};

    fn snap(trans: HTrans, busreq: bool) -> BusSnapshot {
        BusSnapshot {
            cycle: 0,
            haddr: 0,
            htrans: trans,
            hwrite: false,
            hsize: HSize::Word,
            hburst: HBurst::Single,
            hwdata: 0,
            hrdata: 0,
            hready: true,
            hresp: HResp::Okay,
            hmaster: MasterId(0),
            hmastlock: false,
            hbusreq: u32::from(busreq),
            hgrant: 0b01,
            hsel: 0b00,
        }
    }

    fn model() -> AhbPowerModel {
        AhbPowerModel::new(2, 2, &TechParams::default())
    }

    #[test]
    fn long_idle_periods_are_gated() {
        let mut p = DpmProbe::new(
            model(),
            ClockGatePolicy {
                idle_threshold: 2,
                wake_penalty: 1,
            },
        );
        // 3 busy cycles, 20 quiet, 3 busy.
        for _ in 0..3 {
            p.observe(&snap(HTrans::NonSeq, true));
        }
        for _ in 0..20 {
            p.observe(&snap(HTrans::Idle, false));
        }
        for _ in 0..3 {
            p.observe(&snap(HTrans::NonSeq, true));
        }
        let r = p.report();
        assert_eq!(r.cycles, 26);
        assert_eq!(r.gated_cycles, 18, "20 quiet - 2 threshold");
        assert_eq!(r.wake_events, 1);
        assert_eq!(r.added_latency_cycles, 1);
        assert!(r.savings() > 0.6, "{}", r.savings());
        assert!(r.gated_clock_energy < r.baseline_clock_energy);
    }

    #[test]
    fn busy_bus_saves_nothing() {
        let mut p = DpmProbe::new(model(), ClockGatePolicy::default());
        for _ in 0..50 {
            p.observe(&snap(HTrans::NonSeq, true));
        }
        let r = p.report();
        assert_eq!(r.gated_cycles, 0);
        assert_eq!(r.savings(), 0.0);
        assert_eq!(r.wake_events, 0);
    }

    #[test]
    fn pending_requests_inhibit_gating() {
        let mut p = DpmProbe::new(
            model(),
            ClockGatePolicy {
                idle_threshold: 0,
                wake_penalty: 2,
            },
        );
        // Idle trans but a master is requesting: the arbiter must stay on.
        for _ in 0..10 {
            p.observe(&snap(HTrans::Idle, true));
        }
        assert_eq!(p.report().gated_cycles, 0);
    }

    #[test]
    fn lower_threshold_saves_more_but_wakes_more() {
        let run = |threshold: u32| {
            let mut p = DpmProbe::new(
                model(),
                ClockGatePolicy {
                    idle_threshold: threshold,
                    wake_penalty: 1,
                },
            );
            for _ in 0..10 {
                for _ in 0..2 {
                    p.observe(&snap(HTrans::NonSeq, true));
                }
                for _ in 0..6 {
                    p.observe(&snap(HTrans::Idle, false));
                }
            }
            p.report()
        };
        let eager = run(0);
        let lazy = run(4);
        assert!(eager.savings() > lazy.savings());
        assert!(eager.wake_events >= lazy.wake_events);
    }

    #[test]
    fn empty_report_is_sane() {
        let p = DpmProbe::new(model(), ClockGatePolicy::default());
        assert_eq!(p.report().savings(), 0.0);
        assert_eq!(p.policy().idle_threshold, 4);
    }
}
