//! The replay kernel: a branchless, table-driven re-estimator.
//!
//! [`ReplayEngine::new`] flattens an [`AhbPowerModel`] into per-sub-block
//! energy lookup tables indexed by Hamming distance (plus the select /
//! handover flag), built by calling the very energy functions the live
//! path calls — so table entries carry the exact `f64` bits the simulator
//! would have produced. The hot loop then books each recorded cycle with
//! four table loads and a handful of multiply-adds: no branches, no
//! allocation, no wall-clock reads.

use crate::instruction::INSTRUCTION_COUNT;
use crate::ledger::{BlockLedger, InstructionLedger};
use crate::macromodel::BlockEnergy;
use crate::model::AhbPowerModel;
use crate::trace::{PowerTrace, TracePoint};

use super::{
    ActivityTrace, ADDR_HD_MASK, ADDR_HD_SHIFT, FIRST_BIT, HANDOVER_BIT, INSTR_MASK, M2S_REST_MASK,
    M2S_REST_SHIFT, MASTER_MASK, MASTER_SHIFT, REQ_HD_MASK, REQ_HD_SHIFT, S2M_HD_MASK,
    S2M_HD_SHIFT, S2M_SEL_BIT,
};

// Table strides cover every value the packed fields can carry (the fields
// are masked to these ranges), so lookups can never go out of bounds.
const DEC_LEN: usize = (ADDR_HD_MASK as usize) + 1; // 64
const M2S_STRIDE: usize = (ADDR_HD_MASK as usize) + (M2S_REST_MASK as usize) + 1; // 191
const S2M_STRIDE: usize = (S2M_HD_MASK as usize) + 1; // 64
const ARB_STRIDE: usize = (REQ_HD_MASK as usize) + 1; // 64

/// Masters the per-master accumulator can address (the packed master field
/// is 8 bits wide).
const MASTER_SLOTS: usize = (MASTER_MASK as usize) + 1;

/// Replays recorded activity traces through one [`AhbPowerModel`] variant.
///
/// Construction is cheap (a few hundred energy-function calls); reuse one
/// engine across traces. See the [module docs](crate::replay) for an
/// end-to-end example.
#[derive(Debug, Clone)]
pub struct ReplayEngine {
    dec: [f64; DEC_LEN],
    m2s: [f64; 2 * M2S_STRIDE],
    s2m: [f64; 2 * S2M_STRIDE],
    arb: [f64; 2 * ARB_STRIDE],
}

impl ReplayEngine {
    /// Builds the lookup tables for `model`.
    pub fn new(model: &AhbPowerModel) -> Self {
        let mut dec = [0.0; DEC_LEN];
        for (hd, slot) in dec.iter_mut().enumerate() {
            *slot = model.decoder.energy(hd as u32);
        }
        let mut m2s = [0.0; 2 * M2S_STRIDE];
        let mut s2m = [0.0; 2 * S2M_STRIDE];
        let mut arb = [0.0; 2 * ARB_STRIDE];
        for flag in 0..2usize {
            let sel = flag == 1;
            for hd in 0..M2S_STRIDE {
                m2s[flag * M2S_STRIDE + hd] = model.m2s.energy(hd as u32, sel);
            }
            for hd in 0..S2M_STRIDE {
                s2m[flag * S2M_STRIDE + hd] = model.s2m.energy(hd as u32, sel);
            }
            for hd in 0..ARB_STRIDE {
                arb[flag * ARB_STRIDE + hd] = model.arbiter.energy(hd as u32, sel);
            }
        }
        ReplayEngine { dec, m2s, s2m, arb }
    }

    /// Replays `trace` at full fidelity (ledgers, per-master attribution
    /// and windowed power points) into a fresh outcome.
    pub fn replay(&self, trace: &ActivityTrace) -> ReplayOutcome {
        let mut out = ReplayOutcome::with_windows();
        self.replay_into(trace, &mut out);
        out
    }

    /// Replays `trace` into a caller-owned outcome, reusing its buffers.
    /// After a warm-up replay the hot loop performs no allocation, so
    /// sweeping N model variants over one trace touches the allocator at
    /// most N times total (outcome construction), not per cycle.
    pub fn replay_into(&self, trace: &ActivityTrace, out: &mut ReplayOutcome) {
        out.reset(trace);
        if out.trace.is_some() {
            self.kernel::<true>(trace, out);
        } else {
            self.kernel::<false>(trace, out);
        }
    }

    fn kernel<const WINDOWS: bool>(&self, trace: &ActivityTrace, out: &mut ReplayOutcome) {
        for &w in trace.words() {
            let instr = (w & INSTR_MASK) as usize;
            let master = ((w >> MASTER_SHIFT) & MASTER_MASK) as usize;
            let ho = ((w >> HANDOVER_BIT) & 1) as usize;
            let sel = ((w >> S2M_SEL_BIT) & 1) as usize;
            // 1.0 for every cycle with a predecessor; 0.0 for the first
            // cycle, zeroing its energy exactly as the live path does
            // (1.0 * x == x and 0.0 * x == +0.0 for the non-negative
            // finite table entries, so bits are preserved either way).
            let live = ((w >> FIRST_BIT) & 1) as u32 as f64;
            let live = 1.0 - live;
            let addr_hd = ((w >> ADDR_HD_SHIFT) & ADDR_HD_MASK) as usize;
            let m2s_rest = ((w >> M2S_REST_SHIFT) & M2S_REST_MASK) as usize;
            let s2m_hd = ((w >> S2M_HD_SHIFT) & S2M_HD_MASK) as usize;
            let req_hd = ((w >> REQ_HD_SHIFT) & REQ_HD_MASK) as usize;
            let dec = live * self.dec[addr_hd];
            let m2s = live * self.m2s[ho * M2S_STRIDE + addr_hd + m2s_rest];
            let s2m = live * self.s2m[sel * S2M_STRIDE + s2m_hd];
            let arb = live * self.arb[ho * ARB_STRIDE + req_hd];
            // Left-associated like BlockEnergy::total(): ((dec+m2s)+s2m)+arb.
            let total = dec + m2s + s2m + arb;
            out.counts[instr] += 1;
            out.energy[instr] += total;
            out.totals.dec += dec;
            out.totals.m2s += m2s;
            out.totals.s2m += s2m;
            out.totals.arb += arb;
            out.per_master[master] += total;
            out.max_master = out.max_master.max(master);
            if WINDOWS {
                if let Some(t) = &mut out.trace {
                    t.push(BlockEnergy { dec, m2s, s2m, arb });
                }
            }
        }
        out.cycles = trace.cycles();
        if WINDOWS {
            if let Some(t) = &mut out.trace {
                t.finish();
            }
        }
    }
}

/// Everything one replay pass produces — the same artifacts a live
/// [`PowerSession`](crate::PowerSession) run yields, rebuilt from the
/// recording.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    counts: [u64; INSTRUCTION_COUNT],
    energy: [f64; INSTRUCTION_COUNT],
    totals: BlockEnergy,
    cycles: u64,
    per_master: [f64; MASTER_SLOTS],
    max_master: usize,
    windows: bool,
    trace_params: (u64, u64),
    trace: Option<PowerTrace>,
}

impl ReplayOutcome {
    /// An outcome that books ledgers and per-master energy only — the fast
    /// configuration for coefficient sweeps that need totals, not power
    /// series.
    pub fn new() -> Self {
        ReplayOutcome {
            counts: [0; INSTRUCTION_COUNT],
            energy: [0.0; INSTRUCTION_COUNT],
            totals: BlockEnergy::default(),
            cycles: 0,
            per_master: [0.0; MASTER_SLOTS],
            max_master: 0,
            windows: false,
            trace_params: (0, 0),
            trace: None,
        }
    }

    /// An outcome that additionally rebuilds the windowed power trace
    /// (Figs. 3-5), matching the live session point for point.
    pub fn with_windows() -> Self {
        let mut out = ReplayOutcome::new();
        out.windows = true;
        out
    }

    fn reset(&mut self, trace: &ActivityTrace) {
        self.counts = [0; INSTRUCTION_COUNT];
        self.energy = [0.0; INSTRUCTION_COUNT];
        self.totals = BlockEnergy::default();
        self.cycles = 0;
        self.per_master = [0.0; MASTER_SLOTS];
        self.max_master = 0;
        if self.windows {
            let params = (trace.window_cycles, trace.f_clk_hz.to_bits());
            match &mut self.trace {
                Some(t) if self.trace_params == params => t.reset(),
                _ => {
                    self.trace = Some(PowerTrace::new(trace.window_cycles, trace.f_clk_hz));
                    self.trace_params = params;
                }
            }
        } else {
            self.trace = None;
        }
    }

    /// Per-instruction ledger (Table 1), bit-identical to the live run for
    /// a same-model replay.
    pub fn ledger(&self) -> InstructionLedger {
        InstructionLedger::from_parts(self.counts, self.energy)
    }

    /// Per-block ledger (Fig. 6).
    pub fn blocks(&self) -> BlockLedger {
        BlockLedger::from_parts(self.totals, self.cycles)
    }

    /// Total energy, joules (same accumulation order as
    /// [`InstructionLedger::total_energy`]).
    pub fn total_energy(&self) -> f64 {
        self.energy.iter().sum()
    }

    /// Replayed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Per-master energy attribution, joules; the slice length matches the
    /// live session's (one past the highest observed owner), empty when
    /// nothing was replayed.
    pub fn per_master_energy(&self) -> &[f64] {
        if self.cycles == 0 {
            &[]
        } else {
            &self.per_master[..=self.max_master]
        }
    }

    /// Windowed power points; empty unless the outcome was created
    /// [`with_windows`](ReplayOutcome::with_windows).
    pub fn trace_points(&self) -> &[TracePoint] {
        self.trace.as_ref().map(PowerTrace::points).unwrap_or(&[])
    }
}

impl Default for ReplayOutcome {
    fn default() -> Self {
        ReplayOutcome::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::instruction::{ActivityMode, Instruction};
    use crate::macromodel::TechParams;
    use crate::power_fsm::PowerFsm;
    use crate::replay::ActivityRecorder;
    use ahbpower_ahb::{BusSnapshot, HBurst, HResp, HSize, HTrans, MasterId};

    fn snap(i: u32) -> BusSnapshot {
        BusSnapshot {
            cycle: u64::from(i),
            haddr: i.wrapping_mul(0x9E37_79B9),
            htrans: if i.is_multiple_of(4) {
                HTrans::Idle
            } else {
                HTrans::NonSeq
            },
            hwrite: i.is_multiple_of(2),
            hsize: HSize::Word,
            hburst: HBurst::Single,
            hwdata: i.rotate_left(7),
            hrdata: i.rotate_right(3),
            hready: !i.is_multiple_of(5),
            hresp: HResp::Okay,
            hmaster: MasterId((i % 3) as u8),
            hmastlock: false,
            hbusreq: i % 7,
            hgrant: 1 << (i % 3),
            hsel: 1 << (i % 3),
        }
    }

    fn recorded(cfg: &AnalysisConfig, cycles: u32) -> (PowerFsm, ActivityTrace) {
        let model = AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());
        let mut fsm = PowerFsm::new(model);
        let mut rec = ActivityRecorder::new(cfg);
        for i in 0..cycles {
            let s = snap(i);
            let r = fsm.observe(&s);
            rec.record(&s, r.instruction);
        }
        (fsm, rec.finish())
    }

    #[test]
    fn same_model_replay_is_bit_identical() {
        let cfg = AnalysisConfig::paper_testbench();
        let (fsm, trace) = recorded(&cfg, 500);
        let engine = ReplayEngine::new(fsm.model());
        let out = engine.replay(&trace);
        assert_eq!(out.cycles(), 500);
        assert_eq!(out.total_energy(), fsm.total_energy(), "total energy");
        for i in Instruction::all() {
            assert_eq!(out.ledger().count(i), fsm.ledger().count(i), "{i} count");
            assert_eq!(out.ledger().energy(i), fsm.ledger().energy(i), "{i} energy");
        }
        assert_eq!(out.blocks().totals(), fsm.blocks().totals());
        assert_eq!(out.blocks().cycles(), fsm.blocks().cycles());
        assert_eq!(out.per_master_energy(), fsm.per_master_energy());
    }

    #[test]
    fn variant_replay_matches_fresh_evaluation() {
        let cfg = AnalysisConfig::paper_testbench();
        let (fsm, trace) = recorded(&cfg, 300);
        // Scale the arbiter 3x and re-run the same snapshots live.
        let mut variant = fsm.model().clone();
        variant.arbiter.scale(3.0);
        let mut live = PowerFsm::new(variant.clone());
        for i in 0..300 {
            live.observe(&snap(i));
        }
        let out = ReplayEngine::new(&variant).replay(&trace);
        assert_eq!(out.total_energy(), live.total_energy());
        assert_eq!(out.blocks().totals(), live.blocks().totals());
    }

    #[test]
    fn windowed_points_match_live_trace() {
        let cfg = AnalysisConfig::paper_testbench();
        let (fsm, trace) = recorded(&cfg, 130);
        let mut live = PowerTrace::new(cfg.window_cycles, cfg.f_clk_hz);
        let mut replay_fsm = PowerFsm::new(fsm.model().clone());
        for i in 0..130 {
            let r = replay_fsm.observe(&snap(i));
            live.push(r.energy);
        }
        live.finish();
        let out = ReplayEngine::new(fsm.model()).replay(&trace);
        assert_eq!(out.trace_points(), live.points());
        assert_eq!(out.trace_points().len(), 7, "6 full windows + partial");
    }

    #[test]
    fn fast_outcome_skips_windows_and_reuses_buffers() {
        let cfg = AnalysisConfig::paper_testbench();
        let (fsm, trace) = recorded(&cfg, 100);
        let engine = ReplayEngine::new(fsm.model());
        let mut out = ReplayOutcome::new();
        engine.replay_into(&trace, &mut out);
        assert!(out.trace_points().is_empty());
        assert_eq!(out.total_energy(), fsm.total_energy());
        // Second replay over the same buffers books the same result.
        engine.replay_into(&trace, &mut out);
        assert_eq!(out.total_energy(), fsm.total_energy());
        assert_eq!(out.cycles(), 100);
    }

    #[test]
    fn empty_trace_replays_to_zero() {
        let cfg = AnalysisConfig::paper_testbench();
        let trace = ActivityTrace::new(&cfg);
        let model = AhbPowerModel::new(3, 3, &TechParams::default());
        let out = ReplayEngine::new(&model).replay(&trace);
        assert_eq!(out.cycles(), 0);
        assert_eq!(out.total_energy(), 0.0);
        assert!(out.per_master_energy().is_empty());
        assert!(out.trace_points().is_empty());
    }

    #[test]
    fn lut_matches_model_at_every_index() {
        let model = AhbPowerModel::new(3, 3, &TechParams::default());
        let e = ReplayEngine::new(&model);
        for hd in 0..DEC_LEN {
            assert_eq!(e.dec[hd], model.decoder.energy(hd as u32));
        }
        for hd in 0..M2S_STRIDE {
            assert_eq!(e.m2s[hd], model.m2s.energy(hd as u32, false));
            assert_eq!(e.m2s[M2S_STRIDE + hd], model.m2s.energy(hd as u32, true));
        }
        for hd in 0..ARB_STRIDE {
            assert_eq!(
                e.arb[ARB_STRIDE + hd],
                model.arbiter.energy(hd as u32, true)
            );
        }
    }

    #[test]
    fn default_outcome_is_fast_mode() {
        let out = ReplayOutcome::default();
        assert!(!out.windows);
        assert_eq!(out.total_energy(), 0.0);
    }

    #[test]
    fn replay_handles_idle_ho_instruction_indices() {
        // The instruction field must survive packing for all 16 indices.
        let cfg = AnalysisConfig::paper_testbench();
        let mut rec = ActivityRecorder::new(&cfg);
        for idx in 0..crate::INSTRUCTION_COUNT {
            rec.record(&snap(idx as u32), Instruction::from_index(idx));
        }
        let trace = rec.finish();
        let model = AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());
        let out = ReplayEngine::new(&model).replay(&trace);
        let ledger = out.ledger();
        for idx in 0..crate::INSTRUCTION_COUNT {
            assert_eq!(ledger.count(Instruction::from_index(idx)), 1);
        }
        let _ = Instruction::new(ActivityMode::IdleHo, ActivityMode::IdleHo);
    }
}
