//! Varint + XOR-delta codec for packed activity words.
//!
//! Consecutive bus cycles change few wires, so consecutive packed activity
//! words share most of their bits. XOR-ing each word with its predecessor
//! concentrates the information in the low bits, and LEB128 then stores
//! idle stretches in one byte per cycle. A 1M-cycle paper-testbench trace
//! lands in the low tens of MB uncompressed and single-digit MB encoded.

use super::TraceError;

/// Longest legal LEB128 encoding of a `u64` (ceil(64 / 7) bytes).
const MAX_VARINT_BYTES: usize = 10;

/// Appends the LEB128 encoding of `v`.
pub(crate) fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 value starting at `*pos`, advancing `*pos` past it.
pub(crate) fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for _ in 0..MAX_VARINT_BYTES {
        let Some(&b) = bytes.get(*pos) else {
            return Err(TraceError::Truncated);
        };
        *pos += 1;
        let payload = u64::from(b & 0x7F);
        if shift == 63 && payload > 1 {
            return Err(TraceError::Corrupt("varint overflows 64 bits"));
        }
        v |= payload << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
    Err(TraceError::Corrupt("varint runs past 10 bytes"))
}

/// Encodes `words` as XOR-deltas in LEB128, appending to `out`.
pub(crate) fn encode_words(words: &[u64], out: &mut Vec<u8>) {
    let mut prev = 0u64;
    for &w in words {
        write_varint(w ^ prev, out);
        prev = w;
    }
}

/// Decodes exactly `count` XOR-delta words; every input byte must be
/// consumed or the payload is reported corrupt.
pub(crate) fn decode_words(bytes: &[u8], count: usize) -> Result<Vec<u64>, TraceError> {
    let mut words = Vec::with_capacity(count);
    let mut pos = 0usize;
    let mut prev = 0u64;
    for _ in 0..count {
        let delta = read_varint(bytes, &mut pos)?;
        prev ^= delta;
        words.push(prev);
    }
    if pos != bytes.len() {
        return Err(TraceError::Corrupt("trailing bytes after the last word"));
    }
    Ok(words)
}

/// FNV-1a 64-bit hash — the trace payload checksum.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_representative_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn words_round_trip() {
        let words = vec![0u64, 5, 5, 5, 1 << 39, u64::MAX, 42];
        let mut buf = Vec::new();
        encode_words(&words, &mut buf);
        assert_eq!(decode_words(&buf, words.len()).unwrap(), words);
    }

    #[test]
    fn repeated_words_cost_one_byte_each() {
        let words = vec![0xDEAD_BEEFu64; 100];
        let mut buf = Vec::new();
        encode_words(&words, &mut buf);
        // First delta is the word itself; the other 99 XOR to zero.
        assert!(buf.len() < 100 + 10, "got {} bytes", buf.len());
    }

    #[test]
    fn truncated_stream_is_reported() {
        let mut buf = Vec::new();
        encode_words(&[u64::MAX, u64::MAX / 3], &mut buf);
        buf.pop();
        assert!(matches!(
            decode_words(&buf, 2),
            Err(TraceError::Truncated) | Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let mut buf = Vec::new();
        encode_words(&[1, 2, 3], &mut buf);
        buf.push(0);
        assert!(matches!(decode_words(&buf, 3), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn overlong_varint_is_reported() {
        // Eleven continuation bytes never terminate a u64.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(matches!(
            read_varint(&buf, &mut pos),
            Err(TraceError::Corrupt(_))
        ));
        // Ten bytes whose top payload overflows 64 bits.
        let mut over = [0xFFu8; 10];
        over[9] = 0x7F;
        let mut pos = 0;
        assert!(matches!(
            read_varint(&over, &mut pos),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
