//! Trace-once / estimate-many power emulation (record + replay).
//!
//! Every macromodel evaluation normally re-runs the cycle-accurate bus
//! simulation, so a design-space sweep costs `O(points × sim)`. This module
//! decouples the two phases the way hardware-accelerated power emulation
//! does: an [`ActivityRecorder`] taps a live [`PowerSession`](crate::PowerSession)
//! and captures one compact **activity trace** per workload — the
//! per-cycle instruction, bus owner and per-sub-block Hamming distances,
//! packed into one `u64` word per cycle and delta/varint encoded on disk —
//! and a [`ReplayEngine`] then re-estimates energy for
//! any [`AhbPowerModel`](crate::AhbPowerModel) variant by running a
//! branchless table-driven kernel over the recording, without touching the
//! simulator again. Sweeps become `O(sim + points × replay)` where replay
//! is orders of magnitude cheaper than simulation.
//!
//! Replaying a trace through the *same* model that recorded it reproduces
//! the live session's ledgers **bit for bit**: the engine's lookup tables
//! are built by calling the very macromodel energy functions the live path
//! calls, and the kernel accumulates in the same order.
//!
//! # Examples
//!
//! ```
//! use ahbpower::{AhbPowerModel, AnalysisConfig, PowerSession, ReplayEngine};
//! use ahbpower_ahb::{AddressMap, AhbBusBuilder, MemorySlave, Op, ScriptedMaster};
//!
//! let cfg = AnalysisConfig::paper_testbench();
//! let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
//!     .master(Box::new(ScriptedMaster::new(vec![Op::write(0x0, 0xFF), Op::read(0x0)])))
//!     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
//!     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
//!     .build()?;
//! let mut session = PowerSession::with_recorder(&cfg);
//! session.run(&mut bus, 50);
//! let trace = session.finish_recorder().expect("recorder attached");
//!
//! // Same model -> bit-identical energy, without re-simulating.
//! let model = AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());
//! let outcome = ReplayEngine::new(&model).replay(&trace);
//! assert_eq!(outcome.total_energy(), session.total_energy());
//!
//! // What-if variant -> new estimate from the same recording.
//! let mut cheap_arb = model.clone();
//! cheap_arb.arbiter.scale(0.5);
//! let variant = ReplayEngine::new(&cheap_arb).replay(&trace);
//! assert!(variant.total_energy() < outcome.total_energy());
//! # Ok::<(), ahbpower_ahb::BuildBusError>(())
//! ```

mod codec;
mod engine;

use std::fmt;

use ahbpower_ahb::BusSnapshot;

use crate::activity::hamming;
use crate::config::AnalysisConfig;
use crate::instruction::Instruction;
use crate::model::resp_bits;

pub use engine::{ReplayEngine, ReplayOutcome};

/// Current activity-trace file format version.
pub const REPLAY_TRACE_VERSION: u32 = 1;

/// Magic bytes opening every serialized activity trace.
const TRACE_MAGIC: [u8; 8] = *b"AHBREPLY";

/// Fixed byte length of the serialized header (magic through checksum).
const HEADER_LEN: usize = 8 + 4 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 8;

// Packed activity-word layout (one u64 per cycle). Field widths are chosen
// so the paper's 32-bit bus can never overflow them: addr HD <= 32, control
// HD <= 9 + write-data HD <= 32 (rest <= 41), read-data + response HD <= 35,
// request HD <= 32. Bits 40..64 are reserved and must be zero.
pub(crate) const INSTR_MASK: u64 = 0xF; // bits 0..4
pub(crate) const MASTER_SHIFT: u32 = 4; // bits 4..12
pub(crate) const MASTER_MASK: u64 = 0xFF;
pub(crate) const HANDOVER_BIT: u32 = 12;
pub(crate) const S2M_SEL_BIT: u32 = 13;
pub(crate) const FIRST_BIT: u32 = 14;
pub(crate) const ADDR_HD_SHIFT: u32 = 15; // bits 15..21
pub(crate) const ADDR_HD_MASK: u64 = 0x3F;
pub(crate) const M2S_REST_SHIFT: u32 = 21; // bits 21..28
pub(crate) const M2S_REST_MASK: u64 = 0x7F;
pub(crate) const S2M_HD_SHIFT: u32 = 28; // bits 28..34
pub(crate) const S2M_HD_MASK: u64 = 0x3F;
pub(crate) const REQ_HD_SHIFT: u32 = 34; // bits 34..40
pub(crate) const REQ_HD_MASK: u64 = 0x3F;
const RESERVED_SHIFT: u32 = 40;

/// Why an activity trace could not be decoded. Corrupt input is always a
/// clean error, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// The file does not start with the trace magic.
    BadMagic,
    /// The file's format version is newer than this library understands.
    UnsupportedVersion(u32),
    /// The file ends before the advertised content does.
    Truncated,
    /// The content is internally inconsistent (bad checksum, impossible
    /// header fields, malformed varints, reserved bits set, ...).
    Corrupt(&'static str),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not an AHB activity trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (this build reads version {REPLAY_TRACE_VERSION})"
                )
            }
            TraceError::Truncated => write!(f, "trace is truncated"),
            TraceError::Corrupt(why) => write!(f, "trace is corrupt: {why}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// One workload's recorded switching activity: everything the macromodels
/// consume, one packed word per cycle, plus the header a replay needs to
/// rebuild windows and check fidelity.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityTrace {
    /// Masters on the recorded bus (including the default master).
    pub n_masters: u32,
    /// Slaves on the recorded bus.
    pub n_slaves: u32,
    /// Power-trace window length of the recording session, cycles.
    pub window_cycles: u64,
    /// Bus clock of the recording session, hertz.
    pub f_clk_hz: f64,
    /// Total energy the live session booked, joules. Stamped by the
    /// recording side (zero until then) so any later replay of the same
    /// model can self-check against the live run without a side channel.
    pub live_total_j: f64,
    words: Vec<u64>,
}

impl ActivityTrace {
    /// Creates an empty trace with the given session parameters.
    pub(crate) fn new(cfg: &AnalysisConfig) -> Self {
        ActivityTrace {
            n_masters: cfg.n_masters as u32,
            n_slaves: cfg.n_slaves as u32,
            window_cycles: cfg.window_cycles,
            f_clk_hz: cfg.f_clk_hz,
            live_total_j: 0.0,
            words: Vec::new(),
        }
    }

    /// Recorded cycles.
    pub fn cycles(&self) -> u64 {
        self.words.len() as u64
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The packed per-cycle activity words (opaque; layout is stable only
    /// within [`REPLAY_TRACE_VERSION`]).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    pub(crate) fn push_word(&mut self, w: u64) {
        self.words.push(w);
    }

    /// Serializes the trace: a fixed header (magic, version, topology,
    /// clock, live-energy stamp, cycle count, payload length, FNV-1a
    /// checksum) followed by the XOR-delta varint payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.words.len() * 2);
        codec::encode_words(&self.words, &mut payload);
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&REPLAY_TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&self.n_masters.to_le_bytes());
        out.extend_from_slice(&self.n_slaves.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // flags, reserved
        out.extend_from_slice(&self.window_cycles.to_le_bytes());
        out.extend_from_slice(&self.f_clk_hz.to_bits().to_le_bytes());
        out.extend_from_slice(&self.live_total_j.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.words.len() as u64).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&codec::fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Deserializes a trace, validating magic, version, header sanity,
    /// payload checksum and word invariants. Never panics on bad input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.len() < HEADER_LEN {
            if bytes.len() >= 8 && bytes[..8] != TRACE_MAGIC {
                return Err(TraceError::BadMagic);
            }
            return Err(TraceError::Truncated);
        }
        if bytes[..8] != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let u32_at = |off: usize| {
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[off..off + 4]);
            u32::from_le_bytes(b)
        };
        let u64_at = |off: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[off..off + 8]);
            u64::from_le_bytes(b)
        };
        let version = u32_at(8);
        if version != REPLAY_TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let n_masters = u32_at(12);
        let n_slaves = u32_at(16);
        // bytes 20..24: flags, reserved (ignored when zero in version 1).
        if u32_at(20) != 0 {
            return Err(TraceError::Corrupt("reserved header flags set"));
        }
        let window_cycles = u64_at(24);
        let f_clk_hz = f64::from_bits(u64_at(32));
        let live_total_j = f64::from_bits(u64_at(40));
        let count = u64_at(48);
        let payload_len = u64_at(56);
        let checksum = u64_at(64);
        if n_masters == 0 || n_masters > 32 || n_slaves == 0 || n_slaves > 32 {
            return Err(TraceError::Corrupt("implausible bus topology"));
        }
        if window_cycles == 0 {
            return Err(TraceError::Corrupt("zero window length"));
        }
        if !(f_clk_hz.is_finite() && f_clk_hz > 0.0) {
            return Err(TraceError::Corrupt("non-positive clock frequency"));
        }
        if !live_total_j.is_finite() {
            return Err(TraceError::Corrupt("non-finite live energy stamp"));
        }
        let payload = &bytes[HEADER_LEN..];
        if (payload.len() as u64) < payload_len {
            return Err(TraceError::Truncated);
        }
        if payload.len() as u64 > payload_len {
            return Err(TraceError::Corrupt("trailing bytes after the payload"));
        }
        // Every word costs at least one payload byte, so a sane count can
        // never exceed the payload length (also caps the decode allocation).
        if count > payload_len {
            return Err(TraceError::Corrupt("cycle count exceeds payload size"));
        }
        if codec::fnv1a64(payload) != checksum {
            return Err(TraceError::Corrupt("payload checksum mismatch"));
        }
        let words = codec::decode_words(payload, count as usize)?;
        for &w in &words {
            if w >> RESERVED_SHIFT != 0 {
                return Err(TraceError::Corrupt("reserved word bits set"));
            }
            if (w >> MASTER_SHIFT) & MASTER_MASK >= u64::from(n_masters) {
                return Err(TraceError::Corrupt("master id out of range"));
            }
        }
        Ok(ActivityTrace {
            n_masters,
            n_slaves,
            window_cycles,
            f_clk_hz,
            live_total_j,
            words,
        })
    }
}

/// Captures one activity word per observed cycle — the tap a
/// [`PowerSession`](crate::PowerSession) drives when built
/// [`with_recorder`](crate::PowerSession::with_recorder).
///
/// The recorder keeps its own previous-snapshot copy and recomputes exactly
/// the Hamming distances
/// [`AhbPowerModel::cycle_energy`](crate::AhbPowerModel::cycle_energy)
/// consumes, so a replay sees the same model inputs the live path saw.
#[derive(Debug, Clone)]
pub struct ActivityRecorder {
    prev: Option<BusSnapshot>,
    trace: ActivityTrace,
}

impl ActivityRecorder {
    /// Creates a recorder for a session configured by `cfg`.
    pub fn new(cfg: &AnalysisConfig) -> Self {
        ActivityRecorder {
            prev: None,
            trace: ActivityTrace::new(cfg),
        }
    }

    /// Records one observed cycle: the recognized `instruction` plus the
    /// wire activity of `snap` relative to the previous cycle.
    pub fn record(&mut self, snap: &BusSnapshot, instruction: Instruction) {
        let mut w = instruction.index() as u64;
        w |= (u64::from(snap.hmaster.0) & MASTER_MASK) << MASTER_SHIFT;
        match &self.prev {
            None => {
                // First cycle: no predecessor, so the live path books zero
                // energy; the flag makes the replay kernel do the same.
                w |= 1 << FIRST_BIT;
            }
            Some(p) => {
                let addr_hd = hamming(u64::from(p.haddr), u64::from(snap.haddr));
                let m2s_rest = hamming(u64::from(p.control_bits()), u64::from(snap.control_bits()))
                    + hamming(u64::from(p.hwdata), u64::from(snap.hwdata));
                let s2m_hd = hamming(u64::from(p.hrdata), u64::from(snap.hrdata))
                    + hamming(u64::from(resp_bits(p)), u64::from(resp_bits(snap)));
                let req_hd = hamming(u64::from(p.hbusreq), u64::from(snap.hbusreq));
                w |= u64::from(snap.hmaster != p.hmaster) << HANDOVER_BIT;
                w |= u64::from(snap.hsel_bits() != p.hsel_bits()) << S2M_SEL_BIT;
                w |= u64::from(addr_hd) << ADDR_HD_SHIFT;
                w |= u64::from(m2s_rest) << M2S_REST_SHIFT;
                w |= u64::from(s2m_hd) << S2M_HD_SHIFT;
                w |= u64::from(req_hd) << REQ_HD_SHIFT;
            }
        }
        self.trace.push_word(w);
        self.prev = Some(*snap);
    }

    /// Cycles recorded so far.
    pub fn cycles(&self) -> u64 {
        self.trace.cycles()
    }

    /// Consumes the recorder and returns the finished trace.
    pub fn finish(self) -> ActivityTrace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::ActivityMode;
    use ahbpower_ahb::{HBurst, HResp, HSize, HTrans, MasterId};

    fn snap(addr: u32, master: u8) -> BusSnapshot {
        BusSnapshot {
            cycle: 0,
            haddr: addr,
            htrans: HTrans::NonSeq,
            hwrite: true,
            hsize: HSize::Word,
            hburst: HBurst::Single,
            hwdata: 0,
            hrdata: 0,
            hready: true,
            hresp: HResp::Okay,
            hmaster: MasterId(master),
            hmastlock: false,
            hbusreq: 0,
            hgrant: 1,
            hsel: 0,
        }
    }

    fn instr() -> Instruction {
        Instruction::new(ActivityMode::Idle, ActivityMode::Write)
    }

    #[test]
    fn first_cycle_is_flagged() {
        let mut r = ActivityRecorder::new(&AnalysisConfig::paper_testbench());
        r.record(&snap(0, 1), instr());
        let t = r.finish();
        let w = t.words()[0];
        assert_eq!(w & (1 << FIRST_BIT), 1 << FIRST_BIT);
        assert_eq!(w & INSTR_MASK, instr().index() as u64);
        assert_eq!((w >> MASTER_SHIFT) & MASTER_MASK, 1);
        assert_eq!(w >> ADDR_HD_SHIFT, 0, "no activity fields on cycle 0");
    }

    #[test]
    fn activity_fields_capture_hamming_distances() {
        let mut r = ActivityRecorder::new(&AnalysisConfig::paper_testbench());
        r.record(&snap(0, 0), instr());
        r.record(&snap(0xFF, 1), instr());
        let t = r.finish();
        let w = t.words()[1];
        assert_eq!((w >> ADDR_HD_SHIFT) & ADDR_HD_MASK, 8);
        assert_eq!(w & (1 << HANDOVER_BIT), 1 << HANDOVER_BIT);
        assert_eq!(w & (1 << FIRST_BIT), 0);
        assert_eq!((w >> REQ_HD_SHIFT) & REQ_HD_MASK, 0);
    }

    #[test]
    fn trace_round_trips_through_bytes() {
        let mut r = ActivityRecorder::new(&AnalysisConfig::paper_testbench());
        for i in 0..200u32 {
            r.record(&snap(i.wrapping_mul(0x9E37_79B9), (i % 3) as u8), instr());
        }
        let mut t = r.finish();
        t.live_total_j = 42.5e-12;
        let bytes = t.to_bytes();
        let back = ActivityTrace::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, t);
        assert_eq!(back.cycles(), 200);
        assert_eq!(back.live_total_j, 42.5e-12);
    }

    #[test]
    fn bad_magic_is_reported() {
        let mut r = ActivityRecorder::new(&AnalysisConfig::paper_testbench());
        r.record(&snap(0, 0), instr());
        let mut bytes = r.finish().to_bytes();
        bytes[0] = b'X';
        assert_eq!(ActivityTrace::from_bytes(&bytes), Err(TraceError::BadMagic));
        assert_eq!(
            ActivityTrace::from_bytes(b"XXXXXXXXtooshort"),
            Err(TraceError::BadMagic)
        );
    }

    #[test]
    fn unsupported_version_is_reported() {
        let mut r = ActivityRecorder::new(&AnalysisConfig::paper_testbench());
        r.record(&snap(0, 0), instr());
        let mut bytes = r.finish().to_bytes();
        bytes[8] = 99;
        assert_eq!(
            ActivityTrace::from_bytes(&bytes),
            Err(TraceError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn truncation_and_corruption_are_clean_errors() {
        let mut r = ActivityRecorder::new(&AnalysisConfig::paper_testbench());
        for i in 0..50u32 {
            r.record(&snap(i, 0), instr());
        }
        let bytes = r.finish().to_bytes();
        // Truncate at every prefix length: never a panic, always an error.
        for len in 0..bytes.len() {
            assert!(
                ActivityTrace::from_bytes(&bytes[..len]).is_err(),
                "len {len}"
            );
        }
        // Flip one payload byte: the checksum must catch it.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x55;
        assert!(matches!(
            ActivityTrace::from_bytes(&flipped),
            Err(TraceError::Corrupt(_))
        ));
        // Error values render human-readable messages.
        assert!(TraceError::Truncated.to_string().contains("truncated"));
        assert!(TraceError::UnsupportedVersion(9).to_string().contains('9'));
    }

    #[test]
    fn implausible_headers_are_corrupt() {
        let mut r = ActivityRecorder::new(&AnalysisConfig::paper_testbench());
        r.record(&snap(0, 0), instr());
        let good = r.finish().to_bytes();
        // Zero masters.
        let mut b = good.clone();
        b[12..16].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            ActivityTrace::from_bytes(&b),
            Err(TraceError::Corrupt(_))
        ));
        // Zero window.
        let mut b = good.clone();
        b[24..32].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            ActivityTrace::from_bytes(&b),
            Err(TraceError::Corrupt(_))
        ));
        // NaN clock.
        let mut b = good.clone();
        b[32..40].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(
            ActivityTrace::from_bytes(&b),
            Err(TraceError::Corrupt(_))
        ));
        // Absurd cycle count (would otherwise drive a huge allocation).
        let mut b = good;
        b[48..56].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            ActivityTrace::from_bytes(&b),
            Err(TraceError::Corrupt(_))
        ));
    }
}
