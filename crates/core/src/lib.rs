//! # ahbpower — instruction-based system-level power analysis for the AMBA AHB
//!
//! A from-scratch reproduction of *"System-Level Power Analysis Methodology
//! Applied to the AMBA AHB Bus"* (Caldari et al., DATE 2003). The
//! methodology characterizes an IP core's **instructions** (here: the
//! permissible transitions between the AHB activity modes IDLE, IDLE_HO,
//! READ, WRITE) with analytic **energy macromodels** of its structural
//! sub-blocks (arbiter, decoder, M2S/S2M multiplexers), then instruments an
//! executable bus model with a **power FSM** that books energy per
//! instruction during simulation.
//!
//! ## Layers
//!
//! - [`hamming`], [`SignalActivity`], [`ActivityMonitor`] — the paper's
//!   `Activity` class (bit-change counting, switching activity, signal
//!   probability);
//! - [`DecoderModel`], [`MuxModel`], [`ArbiterModel`] — sub-block energy
//!   macromodels (paper formula or fitted to gate level);
//! - [`fit_decoder_model`] & friends — characterization against the
//!   `ahbpower-gate` reference (the paper's SIS step);
//! - [`ActivityMode`], [`Instruction`], [`PowerFsm`] — behavioural
//!   decomposition and the `power_fsm()`;
//! - [`InstructionLedger`] (Table 1), [`BlockLedger`] (Fig. 6),
//!   [`PowerTrace`] (Figs. 3-5), [`report`] renderers;
//! - [`InlineProbe`], [`FsmProbe`], [`GlobalProbe`] — the three power-model
//!   integration styles of the paper's Fig. 1;
//! - [`PowerSession`] / [`run_on_kernel`] — turnkey analysis, optionally
//!   hosted on the `ahbpower-sim` discrete-event kernel;
//! - [`telemetry`] — opt-in (default-off) observability: a metrics
//!   registry, hot-loop spans, bus-performance analyzers, and
//!   JSONL/CSV/Prometheus exporters;
//! - [`TxnTracer`] / [`AttributionTable`] — opt-in transaction-level
//!   energy attribution: causally-linked transaction records in a bounded
//!   ring, exact (master, slave, instruction) energy split, and Chrome
//!   trace-event / folded-flamegraph exporters in [`telemetry`];
//! - [`ActivityRecorder`] / [`ReplayEngine`] — trace-once / estimate-many
//!   power emulation: record a workload's switching activity once, then
//!   re-estimate energy for any model variant from the recording at a
//!   small fraction of simulation cost (see [`replay`]).
//!
//! ## Quick start
//!
//! ```
//! use ahbpower::{AnalysisConfig, PowerSession};
//! use ahbpower_ahb::{AddressMap, AhbBusBuilder, MemorySlave, Op, ScriptedMaster};
//!
//! let cfg = AnalysisConfig::paper_testbench();
//! let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(3, 0x1000))
//!     .master(Box::new(ScriptedMaster::new(vec![
//!         Op::write(0x0, 0xCAFE_F00D),
//!         Op::read(0x0),
//!         Op::Idle(4),
//!     ])))
//!     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
//!     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
//!     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
//!     .build()?;
//! let mut session = PowerSession::new(&cfg);
//! session.run(&mut bus, 100);
//! println!("{}", ahbpower::report::table1_text(session.ledger()));
//! assert!(session.total_energy() > 0.0);
//! # Ok::<(), ahbpower_ahb::BuildBusError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod attribution;
mod characterize;
mod config;
mod dpm;
mod estimate;
mod instruction;
mod ledger;
mod macromodel;
mod model;
mod power_fsm;
mod probe;
pub mod replay;
pub mod report;
mod sc;
mod session;
mod sram;
pub mod telemetry;
mod trace;
mod txn;

pub use activity::{hamming, ActivityMonitor, ProbeId, SignalActivity};
pub use attribution::{AttributionRow, AttributionTable};
pub use characterize::{
    fit_ahb_power_model, fit_arbiter_model, fit_decoder_model, fit_mux_model, ModelValidation,
    ValidationPoint,
};
pub use config::AnalysisConfig;
pub use dpm::{ClockGatePolicy, DpmProbe, DpmReport};
pub use estimate::{estimate_cycle_energy, estimate_power, TrafficStats};
pub use instruction::{classify_mode, ActivityMode, Instruction, INSTRUCTION_COUNT};
pub use ledger::{fmt_energy, BlockLedger, InstructionLedger, InstructionRow, BLOCK_NAMES};
pub use macromodel::{
    ceil_log2, fit_linear, ArbiterModel, BlockEnergy, DecoderModel, LinearFit, MuxModel, TechParams,
};
pub use model::{AhbPowerModel, SubBlock, ADDR_BITS, CTRL_BITS, RDATA_BITS, RESP_BITS, WDATA_BITS};
pub use power_fsm::{CycleRecord, PowerFsm};
pub use probe::{FsmProbe, GlobalProbe, InlineProbe, PowerProbe};
pub use replay::{
    ActivityRecorder, ActivityTrace, ReplayEngine, ReplayOutcome, TraceError, REPLAY_TRACE_VERSION,
};
pub use sc::{run_on_kernel, run_on_kernel_profiled, KernelRun};
pub use session::PowerSession;
pub use sram::{SramLedger, SramMode, SramModel, SramProbe};
pub use trace::{PowerTrace, TracePoint};
pub use txn::{TxnRecord, TxnTracer, TxnTracerConfig, DEFAULT_RING_CAPACITY};
