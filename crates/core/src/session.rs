//! One-stop analysis session: FSM + ledgers + power trace over a bus run.

use std::time::Instant;

use ahbpower_ahb::{AhbBus, BusSnapshot};

use crate::config::AnalysisConfig;
use crate::ledger::{BlockLedger, InstructionLedger};
use crate::model::AhbPowerModel;
use crate::power_fsm::PowerFsm;
use crate::replay::{ActivityRecorder, ActivityTrace};
use crate::telemetry::{Telemetry, TelemetryConfig};
use crate::trace::{PowerTrace, TracePoint};
use crate::txn::{TxnTracer, TxnTracerConfig};

/// Couples a [`PowerFsm`] with a [`PowerTrace`] so a single observer
/// produces Table 1, Fig. 6 and Figs. 3-5 data in one pass.
///
/// # Examples
///
/// ```
/// use ahbpower::{AnalysisConfig, PowerSession};
/// use ahbpower_ahb::{AddressMap, AhbBusBuilder, MemorySlave, Op, ScriptedMaster};
///
/// let cfg = AnalysisConfig::paper_testbench();
/// let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
///     .master(Box::new(ScriptedMaster::new(vec![Op::write(0x0, 0xFF), Op::read(0x0)])))
///     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
///     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
///     .build()?;
/// let mut session = PowerSession::new(&cfg);
/// session.run(&mut bus, 50);
/// assert!(session.total_energy() > 0.0);
/// # Ok::<(), ahbpower_ahb::BuildBusError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PowerSession {
    fsm: PowerFsm,
    trace: PowerTrace,
    /// `None` unless telemetry was enabled at construction; the disabled
    /// hot path tests one `Option` discriminant per run, not per cycle.
    telemetry: Option<Box<Telemetry>>,
    /// `None` unless transaction tracing was enabled at construction;
    /// same hot-path discipline as `telemetry`.
    txn: Option<Box<TxnTracer>>,
    /// `None` unless activity recording was enabled at construction;
    /// same hot-path discipline as `telemetry`.
    recorder: Option<Box<ActivityRecorder>>,
}

impl PowerSession {
    /// Creates a session with paper-form macromodels sized from `cfg`.
    pub fn new(cfg: &AnalysisConfig) -> Self {
        let model = AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());
        PowerSession::with_model(model, cfg.window_cycles, cfg.f_clk_hz)
    }

    /// Creates a session with explicit (e.g. fitted) macromodels.
    pub fn with_model(model: AhbPowerModel, window_cycles: u64, f_clk_hz: f64) -> Self {
        PowerSession {
            fsm: PowerFsm::new(model),
            trace: PowerTrace::new(window_cycles, f_clk_hz),
            telemetry: None,
            txn: None,
            recorder: None,
        }
    }

    /// Creates a session with telemetry governed by `tcfg`. A disabled
    /// config yields a session identical to [`PowerSession::new`].
    pub fn with_telemetry(cfg: &AnalysisConfig, tcfg: TelemetryConfig) -> Self {
        let mut session = PowerSession::new(cfg);
        if tcfg.enabled {
            session.telemetry = Some(Box::new(Telemetry::new(tcfg, cfg.n_masters)));
        }
        session
    }

    /// Creates a session with transaction tracing governed by `xcfg`. A
    /// disabled config yields a session identical to [`PowerSession::new`].
    pub fn with_txn_tracer(cfg: &AnalysisConfig, xcfg: TxnTracerConfig) -> Self {
        let mut session = PowerSession::new(cfg);
        if xcfg.enabled {
            session.txn = Some(Box::new(TxnTracer::new(cfg.n_masters, xcfg.ring_capacity)));
        }
        session
    }

    /// Creates a session that additionally records every observed cycle
    /// into a compact activity trace for later replay (the
    /// trace-once / estimate-many pipeline; see [`crate::replay`]).
    /// Collect the recording with [`PowerSession::finish_recorder`].
    pub fn with_recorder(cfg: &AnalysisConfig) -> Self {
        let mut session = PowerSession::new(cfg);
        session.recorder = Some(Box::new(ActivityRecorder::new(cfg)));
        session
    }

    /// Detaches the activity recorder and returns the finished trace.
    /// `None` when recording was not enabled (or was already collected).
    /// The returned trace's `live_total_j` stamp is filled in with the
    /// session's booked total so replays can self-check fidelity.
    pub fn finish_recorder(&mut self) -> Option<ActivityTrace> {
        let total = self.fsm.total_energy();
        self.recorder.take().map(|r| {
            let mut trace = r.finish();
            trace.live_total_j = total;
            trace
        })
    }

    /// Scales one sub-block's macromodel coefficients by `factor` — the
    /// anomaly-injection hook. Calling it between two [`PowerSession::run`]
    /// calls emulates a mid-stream energy drift for detector tests.
    pub fn scale_model_block(&mut self, block: crate::model::SubBlock, factor: f64) {
        self.fsm.scale_block(block, factor);
    }

    /// Observes one cycle.
    pub fn observe(&mut self, snap: &BusSnapshot) {
        match &mut self.telemetry {
            None => {
                let rec = self.fsm.observe(snap);
                self.trace.push(rec.energy);
                if let Some(x) = &mut self.txn {
                    x.observe(snap, &rec);
                }
                if let Some(r) = &mut self.recorder {
                    r.record(snap, rec.instruction);
                }
            }
            Some(t) => {
                let t0 = Instant::now();
                let rec = self.fsm.observe(snap);
                self.trace.push(rec.energy);
                if let Some(x) = &mut self.txn {
                    x.observe(snap, &rec);
                }
                if let Some(r) = &mut self.recorder {
                    r.record(snap, rec.instruction);
                }
                t.observe_bus(snap);
                t.observe_power(rec.instruction, &rec.energy, snap.hmaster.index());
                t.record_observe(t0.elapsed());
            }
        }
    }

    /// Runs `cycles` bus cycles under observation.
    pub fn run(&mut self, bus: &mut AhbBus, cycles: u64) {
        if self.telemetry.is_none() && self.txn.is_none() && self.recorder.is_none() {
            // The pre-telemetry hot loop, untouched: sessions without
            // instrumentation pay one branch per run for the features.
            for _ in 0..cycles {
                let snap = bus.step();
                let rec = self.fsm.observe(snap);
                self.trace.push(rec.energy);
            }
        } else {
            for _ in 0..cycles {
                let snap = bus.step();
                self.observe(snap);
            }
        }
        self.trace.finish();
    }

    /// Marks the start of workload slice `slice` in the structured event
    /// stream (no-op unless telemetry carries an event ring). Serve
    /// loops and slice-based runners call this before each
    /// [`PowerSession::run`] so every event carries the right slice id.
    pub fn begin_slice(&mut self, slice: u64) {
        if let Some(t) = &mut self.telemetry {
            t.begin_slice(slice);
        }
    }

    /// Marks the end of the current slice, stamping the session's
    /// cumulative energy into a `SliceEnd` event (no-op without an event
    /// ring).
    pub fn end_slice(&mut self) {
        let energy = self.fsm.total_energy();
        if let Some(t) = &mut self.telemetry {
            t.end_slice(energy);
        }
    }

    /// Finishes the run's telemetry: closes the analyzers, publishes the
    /// power ledgers and spans into the registry, and returns the
    /// telemetry for export. `None` when telemetry is disabled.
    pub fn finish_telemetry(&mut self) -> Option<&Telemetry> {
        let fsm = &self.fsm;
        self.telemetry.as_mut().map(|t| {
            t.finalize(fsm);
            &**t
        })
    }

    /// Live telemetry access (`None` when disabled).
    pub fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        self.telemetry.as_deref_mut()
    }

    /// Shared telemetry access (`None` when disabled).
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_deref()
    }

    /// Finishes the run's transaction trace: flushes the still-open
    /// transaction (if any) into the ring and returns the tracer for
    /// export. `None` when tracing is disabled.
    pub fn finish_txn(&mut self) -> Option<&TxnTracer> {
        self.txn.as_mut().map(|x| {
            x.finish();
            &**x
        })
    }

    /// The transaction tracer (`None` when disabled).
    pub fn txn_tracer(&self) -> Option<&TxnTracer> {
        self.txn.as_deref()
    }

    /// Per-instruction ledger (Table 1).
    pub fn ledger(&self) -> &InstructionLedger {
        self.fsm.ledger()
    }

    /// Per-block ledger (Fig. 6).
    pub fn blocks(&self) -> &BlockLedger {
        self.fsm.blocks()
    }

    /// Power-trace points (Figs. 3-5).
    pub fn trace_points(&self) -> &[TracePoint] {
        self.trace.points()
    }

    /// The trace accumulator itself.
    pub fn trace(&self) -> &PowerTrace {
        &self.trace
    }

    /// Total energy, joules.
    pub fn total_energy(&self) -> f64 {
        self.fsm.total_energy()
    }

    /// Per-master energy attribution (index = master id), joules.
    pub fn per_master_energy(&self) -> &[f64] {
        self.fsm.per_master_energy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahbpower_ahb::{AddressMap, AhbBusBuilder, MemorySlave, Op, ScriptedMaster};

    fn bus() -> AhbBus {
        AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::write(0x0, 0xFFFF_FFFF),
                Op::read(0x0),
                Op::Idle(3),
                Op::write(0x1004, 0x1234_5678),
            ])))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .slave(Box::new(MemorySlave::new(0x1000, 1, 0)))
            .build()
            .unwrap()
    }

    #[test]
    fn session_collects_all_artifacts() {
        let mut cfg = AnalysisConfig::paper_testbench();
        cfg.n_masters = 2;
        cfg.n_slaves = 2;
        cfg.window_cycles = 5;
        let mut session = PowerSession::new(&cfg);
        let mut b = bus();
        session.run(&mut b, 40);
        assert!(session.total_energy() > 0.0);
        assert!(!session.ledger().rows().is_empty());
        assert_eq!(session.blocks().cycles(), 40);
        assert_eq!(session.trace_points().len(), 8);
        // Ledger and trace must account the same energy.
        let from_trace: f64 = session
            .trace_points()
            .iter()
            .map(|p| p.total_w * session.trace().window_secs())
            .sum();
        let total = session.total_energy();
        assert!((from_trace - total).abs() < 1e-9 * total.max(1e-30));
    }

    #[test]
    fn disabled_telemetry_is_absent_and_free_of_state() {
        let cfg = AnalysisConfig::paper_testbench();
        let mut session = PowerSession::with_telemetry(&cfg, TelemetryConfig::default());
        let mut b = bus();
        session.run(&mut b, 20);
        assert!(session.finish_telemetry().is_none());
        assert!(session.telemetry_mut().is_none());
    }

    #[test]
    fn txn_tracer_conserves_energy_and_records_transactions() {
        let mut cfg = AnalysisConfig::paper_testbench();
        cfg.n_masters = 2;
        cfg.n_slaves = 2;
        let mut plain = PowerSession::new(&cfg);
        let mut b = bus();
        plain.run(&mut b, 40);

        let mut traced = PowerSession::with_txn_tracer(&cfg, TxnTracerConfig::enabled(128));
        let mut b = bus();
        traced.run(&mut b, 40);
        assert_eq!(
            traced.total_energy(),
            plain.total_energy(),
            "tracing must not perturb the analysis"
        );
        let total = traced.total_energy();
        let tracer = traced.finish_txn().expect("tracer enabled");
        assert!(tracer.completed() >= 3, "the script issues 3 transfers");
        assert_eq!(tracer.evicted(), 0);
        assert_eq!(tracer.attribution().cycles(), 40);
        let attributed = tracer.attribution().total_energy();
        assert!(
            (attributed - total).abs() <= 1e-9,
            "attribution must conserve the ledger total: {attributed} vs {total}"
        );
        // Disabled config attaches nothing.
        let off = PowerSession::with_txn_tracer(&cfg, TxnTracerConfig::default());
        assert!(off.txn_tracer().is_none());
    }

    #[test]
    fn recorder_replay_reproduces_session_bit_for_bit() {
        let mut cfg = AnalysisConfig::paper_testbench();
        cfg.n_masters = 2;
        cfg.n_slaves = 2;
        cfg.window_cycles = 5;
        let mut session = PowerSession::with_recorder(&cfg);
        let mut b = bus();
        session.run(&mut b, 40);
        let trace = session.finish_recorder().expect("recorder attached");
        assert_eq!(trace.cycles(), 40);
        assert_eq!(trace.live_total_j, session.total_energy());
        let model = AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());
        let out = crate::ReplayEngine::new(&model).replay(&trace);
        assert_eq!(out.total_energy(), session.total_energy());
        assert_eq!(out.trace_points(), session.trace_points());
        assert_eq!(out.per_master_energy(), session.per_master_energy());
        assert!(
            session.finish_recorder().is_none(),
            "recorder can only be collected once"
        );
    }

    #[test]
    fn enabled_telemetry_matches_untelemetered_energy() {
        let mut cfg = AnalysisConfig::paper_testbench();
        cfg.n_masters = 2;
        cfg.n_slaves = 2;
        let mut plain = PowerSession::new(&cfg);
        let mut b = bus();
        plain.run(&mut b, 40);

        let tcfg = TelemetryConfig::enabled("session_test").with_seed(9);
        let mut telemetered = PowerSession::with_telemetry(&cfg, tcfg);
        let mut b = bus();
        telemetered.run(&mut b, 40);
        let plain_energy = plain.total_energy();
        assert_eq!(
            telemetered.total_energy(),
            plain_energy,
            "telemetry must not perturb the analysis"
        );

        let t = telemetered.finish_telemetry().expect("enabled");
        let reg = t.registry();
        assert_eq!(reg.counter_value("ahb_cycles_total", &[]), Some(40.0));
        let booked = reg.counter_value("power_total_energy_joules", &[]).unwrap();
        assert!((booked - plain_energy).abs() < 1e-18);
        // The observer span timed every cycle.
        assert_eq!(
            reg.counter_value(
                "telemetry_span_invocations_total",
                &[("span", "session_observe")]
            ),
            Some(40.0)
        );
        let jsonl = t.to_jsonl();
        assert!(jsonl.starts_with("{\"event\":\"meta\",\"scenario\":\"session_test\""));
        assert!(jsonl.contains("\"seed\":9"));
        assert!(t.to_csv().contains("ahb_master_transfers_total,master=0"));
        assert!(t
            .to_prometheus()
            .contains("# TYPE ahb_arbitration_latency_cycles histogram"));
    }
}
