//! One-stop analysis session: FSM + ledgers + power trace over a bus run.

use ahbpower_ahb::{AhbBus, BusSnapshot};

use crate::config::AnalysisConfig;
use crate::ledger::{BlockLedger, InstructionLedger};
use crate::model::AhbPowerModel;
use crate::power_fsm::PowerFsm;
use crate::trace::{PowerTrace, TracePoint};

/// Couples a [`PowerFsm`] with a [`PowerTrace`] so a single observer
/// produces Table 1, Fig. 6 and Figs. 3-5 data in one pass.
///
/// # Examples
///
/// ```
/// use ahbpower::{AnalysisConfig, PowerSession};
/// use ahbpower_ahb::{AddressMap, AhbBusBuilder, MemorySlave, Op, ScriptedMaster};
///
/// let cfg = AnalysisConfig::paper_testbench();
/// let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
///     .master(Box::new(ScriptedMaster::new(vec![Op::write(0x0, 0xFF), Op::read(0x0)])))
///     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
///     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
///     .build()?;
/// let mut session = PowerSession::new(&cfg);
/// session.run(&mut bus, 50);
/// assert!(session.total_energy() > 0.0);
/// # Ok::<(), ahbpower_ahb::BuildBusError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PowerSession {
    fsm: PowerFsm,
    trace: PowerTrace,
}

impl PowerSession {
    /// Creates a session with paper-form macromodels sized from `cfg`.
    pub fn new(cfg: &AnalysisConfig) -> Self {
        let model = AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());
        PowerSession::with_model(model, cfg.window_cycles, cfg.f_clk_hz)
    }

    /// Creates a session with explicit (e.g. fitted) macromodels.
    pub fn with_model(model: AhbPowerModel, window_cycles: u64, f_clk_hz: f64) -> Self {
        PowerSession {
            fsm: PowerFsm::new(model),
            trace: PowerTrace::new(window_cycles, f_clk_hz),
        }
    }

    /// Observes one cycle.
    pub fn observe(&mut self, snap: &BusSnapshot) {
        let rec = self.fsm.observe(snap);
        self.trace.push(rec.energy);
    }

    /// Runs `cycles` bus cycles under observation.
    pub fn run(&mut self, bus: &mut AhbBus, cycles: u64) {
        for _ in 0..cycles {
            let snap = bus.step();
            let rec = self.fsm.observe(snap);
            self.trace.push(rec.energy);
        }
        self.trace.finish();
    }

    /// Per-instruction ledger (Table 1).
    pub fn ledger(&self) -> &InstructionLedger {
        self.fsm.ledger()
    }

    /// Per-block ledger (Fig. 6).
    pub fn blocks(&self) -> &BlockLedger {
        self.fsm.blocks()
    }

    /// Power-trace points (Figs. 3-5).
    pub fn trace_points(&self) -> &[TracePoint] {
        self.trace.points()
    }

    /// The trace accumulator itself.
    pub fn trace(&self) -> &PowerTrace {
        &self.trace
    }

    /// Total energy, joules.
    pub fn total_energy(&self) -> f64 {
        self.fsm.total_energy()
    }

    /// Per-master energy attribution (index = master id), joules.
    pub fn per_master_energy(&self) -> &[f64] {
        self.fsm.per_master_energy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahbpower_ahb::{AddressMap, AhbBusBuilder, MemorySlave, Op, ScriptedMaster};

    fn bus() -> AhbBus {
        AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
            .master(Box::new(ScriptedMaster::new(vec![
                Op::write(0x0, 0xFFFF_FFFF),
                Op::read(0x0),
                Op::Idle(3),
                Op::write(0x1004, 0x1234_5678),
            ])))
            .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
            .slave(Box::new(MemorySlave::new(0x1000, 1, 0)))
            .build()
            .unwrap()
    }

    #[test]
    fn session_collects_all_artifacts() {
        let mut cfg = AnalysisConfig::paper_testbench();
        cfg.n_masters = 2;
        cfg.n_slaves = 2;
        cfg.window_cycles = 5;
        let mut session = PowerSession::new(&cfg);
        let mut b = bus();
        session.run(&mut b, 40);
        assert!(session.total_energy() > 0.0);
        assert!(!session.ledger().rows().is_empty());
        assert_eq!(session.blocks().cycles(), 40);
        assert_eq!(session.trace_points().len(), 8);
        // Ledger and trace must account the same energy.
        let from_trace: f64 = session
            .trace_points()
            .iter()
            .map(|p| p.total_w * session.trace().window_secs())
            .sum();
        let total = session.total_energy();
        assert!((from_trace - total).abs() < 1e-9 * total.max(1e-30));
    }
}
