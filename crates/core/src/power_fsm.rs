//! The paper's `power_fsm()` — instruction recognition + energy accounting.
//!
//! Fed one [`BusSnapshot`] per cycle, the FSM classifies the cycle's
//! activity mode, forms the executed instruction (the transition from the
//! previous mode), evaluates the sub-block macromodels on the observed
//! Hamming distances, and books the energy to both the per-instruction
//! ledger (Table 1) and the per-block ledger (Fig. 6).

use ahbpower_ahb::BusSnapshot;

use crate::instruction::{classify_mode, ActivityMode, Instruction};
use crate::ledger::{BlockLedger, InstructionLedger};
use crate::macromodel::BlockEnergy;
use crate::model::AhbPowerModel;

/// What one observed cycle contributed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleRecord {
    /// The instruction recognized for this cycle.
    pub instruction: Instruction,
    /// Energy booked to the cycle, split by sub-block.
    pub energy: BlockEnergy,
}

/// The power FSM.
///
/// # Examples
///
/// ```
/// use ahbpower::{AhbPowerModel, PowerFsm, TechParams};
/// use ahbpower_ahb::{AddressMap, AhbBusBuilder, MemorySlave, Op, ScriptedMaster};
///
/// let mut bus = AhbBusBuilder::new(AddressMap::evenly_spaced(2, 0x1000))
///     .master(Box::new(ScriptedMaster::new(vec![Op::write(0x0, 0xFFFF_FFFF)])))
///     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
///     .slave(Box::new(MemorySlave::new(0x1000, 0, 0)))
///     .build()?;
/// let model = AhbPowerModel::new(1, 2, &TechParams::default());
/// let mut fsm = PowerFsm::new(model);
/// for _ in 0..8 {
///     fsm.observe(bus.step());
/// }
/// assert!(fsm.total_energy() > 0.0);
/// # Ok::<(), ahbpower_ahb::BuildBusError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PowerFsm {
    model: AhbPowerModel,
    state: ActivityMode,
    prev: Option<BusSnapshot>,
    last_transfer_master: Option<ahbpower_ahb::MasterId>,
    ledger: InstructionLedger,
    blocks: BlockLedger,
    /// Energy attributed to each master (by address-phase ownership).
    per_master: Vec<f64>,
}

impl PowerFsm {
    /// Creates the FSM in the IDLE state.
    pub fn new(model: AhbPowerModel) -> Self {
        PowerFsm {
            model,
            state: ActivityMode::Idle,
            prev: None,
            last_transfer_master: None,
            ledger: InstructionLedger::new(),
            blocks: BlockLedger::new(),
            per_master: Vec::new(),
        }
    }

    /// Processes one cycle's wires.
    pub fn observe(&mut self, snap: &BusSnapshot) -> CycleRecord {
        let energy = match &self.prev {
            Some(p) => self.model.cycle_energy(p, snap),
            None => BlockEnergy::default(),
        };
        let mode = classify_mode(snap, self.last_transfer_master);
        let instruction = Instruction::new(self.state, mode);
        self.ledger.record(instruction, energy.total());
        self.blocks.record(energy);
        let owner = snap.hmaster.index();
        if self.per_master.len() <= owner {
            self.per_master.resize(owner + 1, 0.0);
        }
        self.per_master[owner] += energy.total();
        if snap.htrans.is_transfer() {
            self.last_transfer_master = Some(snap.hmaster);
        }
        self.state = mode;
        self.prev = Some(*snap);
        CycleRecord {
            instruction,
            energy,
        }
    }

    /// The FSM's current activity mode.
    pub fn state(&self) -> ActivityMode {
        self.state
    }

    /// The per-instruction ledger (Table 1 data).
    pub fn ledger(&self) -> &InstructionLedger {
        &self.ledger
    }

    /// The per-block ledger (Fig. 6 data).
    pub fn blocks(&self) -> &BlockLedger {
        &self.blocks
    }

    /// Total booked energy, joules.
    pub fn total_energy(&self) -> f64 {
        self.ledger.total_energy()
    }

    /// Energy attributed to each master by address-phase ownership, joules
    /// (index = master id; parked-idle energy lands on the parked owner).
    pub fn per_master_energy(&self) -> &[f64] {
        &self.per_master
    }

    /// The macromodels in use.
    pub fn model(&self) -> &AhbPowerModel {
        &self.model
    }

    /// Scales one sub-block's macromodel coefficients by `factor` — the
    /// anomaly-injection hook ([`AhbPowerModel::scale_block`]). Takes
    /// effect from the next observed cycle.
    pub fn scale_block(&mut self, block: crate::model::SubBlock, factor: f64) {
        self.model.scale_block(block, factor);
    }

    /// Per-instruction observation flags, indexed by
    /// [`Instruction::index`](crate::Instruction::index): `true` where the
    /// FSM has booked at least one occurrence. Static analyzers compare
    /// this against the instruction-set spec's reachable transitions.
    pub fn instruction_coverage(&self) -> [bool; crate::INSTRUCTION_COUNT] {
        let mut seen = [false; crate::INSTRUCTION_COUNT];
        for i in crate::Instruction::all() {
            seen[i.index()] = self.ledger.count(i) > 0;
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macromodel::TechParams;
    use ahbpower_ahb::{HBurst, HResp, HSize, HTrans, MasterId};

    fn snap(trans: HTrans, write: bool, master: u8) -> BusSnapshot {
        BusSnapshot {
            cycle: 0,
            haddr: 0,
            htrans: trans,
            hwrite: write,
            hsize: HSize::Word,
            hburst: HBurst::Single,
            hwdata: 0,
            hrdata: 0,
            hready: true,
            hresp: HResp::Okay,
            hmaster: MasterId(master),
            hmastlock: false,
            hbusreq: 0b00,
            hgrant: 0b01,
            hsel: 0b00,
        }
    }

    #[test]
    fn recognizes_paper_instruction_sequence() {
        let model = AhbPowerModel::new(2, 2, &TechParams::default());
        let mut fsm = PowerFsm::new(model);
        // IDLE -> WRITE -> READ -> IDLE(handover) -> IDLE(handover)
        let r1 = fsm.observe(&snap(HTrans::Idle, false, 0));
        assert_eq!(r1.instruction.name(), "IDLE_IDLE");
        let r2 = fsm.observe(&snap(HTrans::NonSeq, true, 0));
        assert_eq!(r2.instruction.name(), "IDLE_WRITE");
        let r3 = fsm.observe(&snap(HTrans::NonSeq, false, 0));
        assert_eq!(r3.instruction.name(), "WRITE_READ");
        let r4 = fsm.observe(&snap(HTrans::Idle, false, 1));
        assert_eq!(r4.instruction.name(), "READ_IDLE_HO");
        // Bus still parked with master 1 while master 0 transferred last:
        // the handover-idle mode persists (the paper's dominant idle case).
        let r5 = fsm.observe(&snap(HTrans::Idle, false, 1));
        assert_eq!(r5.instruction.name(), "IDLE_HO_IDLE_HO");
        let r6 = fsm.observe(&snap(HTrans::Idle, false, 0));
        assert_eq!(r6.instruction.name(), "IDLE_HO_IDLE");
        assert_eq!(fsm.state(), crate::ActivityMode::Idle);
        assert_eq!(fsm.ledger().total_count(), 6);
    }

    #[test]
    fn first_cycle_books_zero_energy() {
        let model = AhbPowerModel::new(2, 2, &TechParams::default());
        let mut fsm = PowerFsm::new(model);
        let r = fsm.observe(&snap(HTrans::NonSeq, true, 0));
        assert_eq!(r.energy.total(), 0.0, "no previous cycle to diff against");
    }

    #[test]
    fn ledgers_agree_on_total_energy() {
        let model = AhbPowerModel::new(2, 2, &TechParams::default());
        let mut fsm = PowerFsm::new(model);
        let mut s = snap(HTrans::NonSeq, true, 0);
        for i in 0..50u32 {
            s.haddr = i * 4;
            s.hwdata = i.wrapping_mul(0x9E37_79B9);
            s.hmaster = MasterId((i % 2) as u8);
            fsm.observe(&s);
        }
        let a = fsm.total_energy();
        let b = fsm.blocks().totals().total();
        assert!(a > 0.0);
        assert!((a - b).abs() < 1e-15 * a.max(1.0), "{a} vs {b}");
        assert_eq!(fsm.blocks().cycles(), 50);
        // Per-master attribution covers the same total.
        let per_master: f64 = fsm.per_master_energy().iter().sum();
        assert!((per_master - a).abs() < 1e-15 * a.max(1.0));
        assert!(fsm.per_master_energy().iter().all(|&e| e > 0.0));
    }

    #[test]
    fn handover_cycles_use_idle_ho_mode() {
        let model = AhbPowerModel::new(2, 2, &TechParams::default());
        let mut fsm = PowerFsm::new(model);
        fsm.observe(&snap(HTrans::NonSeq, true, 0)); // master 0 transfers
        fsm.observe(&snap(HTrans::Idle, false, 1)); // parked elsewhere
        assert_eq!(fsm.state(), crate::ActivityMode::IdleHo);
        // Idle before any transfer is plain IDLE, not handover.
        let mut fresh = PowerFsm::new(AhbPowerModel::new(2, 2, &TechParams::default()));
        fresh.observe(&snap(HTrans::Idle, false, 1));
        assert_eq!(fresh.state(), crate::ActivityMode::Idle);
    }
}
