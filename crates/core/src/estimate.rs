//! Analytic power estimation from traffic statistics — no simulation.
//!
//! The paper's instrumentation computes "the required statistical or
//! probabilistic quantities" from probed signals; this module closes the
//! loop: given only *aggregate* traffic statistics (switching activities
//! and event rates), evaluate the macromodels analytically and predict the
//! average bus power. Useful for back-of-envelope architecture sizing
//! before any executable model exists — and, because the macromodels are
//! linear, provably consistent with cycle-by-cycle accounting on the same
//! statistics.

use crate::macromodel::BlockEnergy;
use crate::model::{AhbPowerModel, ADDR_BITS, RDATA_BITS, WDATA_BITS};
use crate::probe::GlobalProbe;

/// Aggregate traffic statistics: everything the macromodels need, averaged
/// per bus cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficStats {
    /// Mean HADDR bit toggles per cycle.
    pub addr_toggles: f64,
    /// Mean control-bundle (HTRANS/HWRITE/HSIZE/HBURST) bit toggles per
    /// cycle.
    pub ctrl_toggles: f64,
    /// Mean HWDATA bit toggles per cycle.
    pub wdata_toggles: f64,
    /// Mean HRDATA bit toggles per cycle.
    pub rdata_toggles: f64,
    /// Mean response-bundle (HRESP/HREADY) bit toggles per cycle.
    pub resp_toggles: f64,
    /// Mean HBUSREQ bit toggles per cycle.
    pub busreq_toggles: f64,
    /// Fraction of cycles in which HADDR changes at all (drives the
    /// decoder's output term).
    pub addr_change_rate: f64,
    /// Bus handovers per cycle.
    pub handover_rate: f64,
    /// S2M select (HSEL) changes per cycle.
    pub s2m_select_rate: f64,
}

impl TrafficStats {
    /// First-principles statistics for a bus at `utilization` (fraction of
    /// cycles carrying a transfer), `write_fraction` of transfers being
    /// writes, uniformly random payloads and addresses within `addr_bits`
    /// active address lines, and the given handover rate.
    ///
    /// Random-data assumptions: a changing w-bit word flips w/2 bits on
    /// average; addresses of consecutive transfers are independent within
    /// the active lines.
    ///
    /// # Panics
    ///
    /// Panics if the rates are outside `[0, 1]` or `addr_bits > 32`.
    pub fn uniform_random(
        utilization: f64,
        write_fraction: f64,
        addr_bits: u32,
        handover_rate: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&utilization), "utilization in [0,1]");
        assert!(
            (0.0..=1.0).contains(&write_fraction),
            "write fraction in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&handover_rate),
            "handover rate in [0,1]"
        );
        assert!(addr_bits <= ADDR_BITS, "at most 32 address bits");
        let u = utilization;
        let w = write_fraction;
        TrafficStats {
            // A new transfer re-randomizes the active address lines.
            addr_toggles: u * f64::from(addr_bits) / 2.0,
            // HTRANS/HWRITE flip at activity boundaries; a coarse 1 bit per
            // transition between busy and idle phases.
            ctrl_toggles: 2.0 * u * (1.0 - u) + 0.5 * u,
            wdata_toggles: u * w * f64::from(WDATA_BITS) / 2.0,
            rdata_toggles: u * (1.0 - w) * f64::from(RDATA_BITS) / 2.0,
            resp_toggles: 0.1 * u,
            busreq_toggles: 2.0 * handover_rate,
            addr_change_rate: u,
            handover_rate,
            s2m_select_rate: u.min(2.0 * u * (1.0 - u) + u * 0.5),
        }
    }
}

/// Measured statistics extracted from a [`GlobalProbe`] after a run.
impl GlobalProbe {
    /// The per-cycle traffic statistics this probe accumulated.
    pub fn traffic_stats(&self) -> TrafficStats {
        let n = (self.cycles().saturating_sub(1)).max(1) as f64;
        TrafficStats {
            addr_toggles: self.addr_bit_changes() as f64 / n,
            ctrl_toggles: self.ctrl_bit_changes() as f64 / n,
            wdata_toggles: self.wdata_bit_changes() as f64 / n,
            rdata_toggles: self.rdata_bit_changes() as f64 / n,
            resp_toggles: self.resp_bit_changes() as f64 / n,
            busreq_toggles: self.busreq_bit_changes() as f64 / n,
            addr_change_rate: self.addr_word_changes() as f64 / n,
            handover_rate: self.handovers() as f64 / n,
            s2m_select_rate: self.s2m_select_changes() as f64 / n,
        }
    }
}

/// Predicted per-cycle energy, by block, joules.
pub fn estimate_cycle_energy(model: &AhbPowerModel, stats: &TrafficStats) -> BlockEnergy {
    let dec =
        model.decoder.alpha * stats.addr_toggles + model.decoder.beta * stats.addr_change_rate;
    let m2s_bits = stats.addr_toggles + stats.ctrl_toggles + stats.wdata_toggles;
    let m2s =
        m2s_bits * (model.m2s.a_data + model.m2s.a_out) + stats.handover_rate * model.m2s.b_sel;
    let s2m_bits = stats.rdata_toggles + stats.resp_toggles;
    let s2m =
        s2m_bits * (model.s2m.a_data + model.s2m.a_out) + stats.s2m_select_rate * model.s2m.b_sel;
    let arb = stats.busreq_toggles * model.arbiter.a_req
        + stats.handover_rate * model.arbiter.b_grant
        + model.arbiter.e_clock;
    BlockEnergy { dec, m2s, s2m, arb }
}

/// Predicted average bus power in watts at clock frequency `f_clk_hz`.
///
/// # Examples
///
/// ```
/// use ahbpower::{estimate_power, AhbPowerModel, TechParams, TrafficStats};
///
/// let model = AhbPowerModel::new(3, 3, &TechParams::default());
/// let stats = TrafficStats::uniform_random(0.7, 0.5, 14, 0.1);
/// let watts = estimate_power(&model, &stats, 100e6);
/// assert!(watts > 0.0 && watts < 0.1, "sane milliwatt-range estimate");
/// ```
pub fn estimate_power(model: &AhbPowerModel, stats: &TrafficStats, f_clk_hz: f64) -> f64 {
    estimate_cycle_energy(model, stats).total() * f_clk_hz
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macromodel::TechParams;
    use crate::probe::{InlineProbe, PowerProbe};

    fn model() -> AhbPowerModel {
        AhbPowerModel::new(3, 3, &TechParams::default())
    }

    #[test]
    fn estimate_from_measured_stats_matches_global_probe() {
        // Feed the global probe a synthetic trace, extract its stats, and
        // check the analytic estimate reproduces its total (linearity).
        use ahbpower_ahb::{pack_wires, BusSnapshot, HBurst, HResp, HSize, HTrans, MasterId};
        let mk = |i: u32| BusSnapshot {
            cycle: u64::from(i),
            haddr: i.wrapping_mul(0x1357),
            htrans: if i.is_multiple_of(2) {
                HTrans::NonSeq
            } else {
                HTrans::Idle
            },
            hwrite: i % 4 < 2,
            hsize: HSize::Word,
            hburst: HBurst::Single,
            hwdata: i.wrapping_mul(0xABCD_1234),
            hrdata: i.wrapping_mul(0x0F0F_5757),
            hready: true,
            hresp: HResp::Okay,
            hmaster: MasterId((i % 3) as u8),
            hmastlock: false,
            hbusreq: pack_wires([i.is_multiple_of(2), i.is_multiple_of(3), false]),
            hgrant: pack_wires([i.is_multiple_of(3), i % 3 == 1, i % 3 == 2]),
            hsel: pack_wires([i.is_multiple_of(2), false, false]),
        };
        let mut probe = GlobalProbe::new(model());
        let cycles = 500u32;
        for i in 0..cycles {
            probe.observe(&mk(i));
        }
        let stats = probe.traffic_stats();
        let predicted_total = estimate_cycle_energy(&model(), &stats).total() * (cycles - 1) as f64;
        let measured = probe.total_energy();
        assert!(
            (predicted_total - measured).abs() < 1e-6 * measured,
            "{predicted_total} vs {measured}"
        );
    }

    #[test]
    fn first_principles_estimate_lands_near_simulation() {
        // The paper testbench, simulated vs estimated from coarse,
        // hand-derivable numbers (utilization/write mix/handover rate from
        // bus statistics only — no per-cycle information).
        let cfg = crate::AnalysisConfig::paper_testbench();
        let mut bus = ahbpower_workloads::PaperTestbench::sized_for(20_000, 42)
            .build()
            .expect("builds");
        let m = AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());
        let mut inline = InlineProbe::new(m.clone());
        for _ in 0..20_000 {
            inline.observe(bus.step());
        }
        let measured_w = inline.total_energy() / (20_000.0 / cfg.f_clk_hz);
        let stats = TrafficStats::uniform_random(
            bus.stats().utilization(),
            0.5, // WRITE-READ pairs: half the transfers are writes
            14,  // three 4 KB slave windows -> 14 active address bits
            bus.stats().handovers as f64 / bus.stats().cycles as f64,
        );
        let estimated_w = estimate_power(&m, &stats, cfg.f_clk_hz);
        let ratio = estimated_w / measured_w;
        assert!(
            (0.5..2.0).contains(&ratio),
            "first-principles estimate off by more than 2x: est {estimated_w}, meas {measured_w}"
        );
    }

    #[test]
    fn estimate_scales_with_utilization() {
        let m = model();
        let quiet = estimate_power(&m, &TrafficStats::uniform_random(0.1, 0.5, 14, 0.02), 100e6);
        let busy = estimate_power(&m, &TrafficStats::uniform_random(0.9, 0.5, 14, 0.02), 100e6);
        assert!(busy > 3.0 * quiet, "busy {busy} vs quiet {quiet}");
    }

    #[test]
    fn idle_bus_estimate_is_clock_floor() {
        let m = model();
        let stats = TrafficStats::uniform_random(0.0, 0.0, 14, 0.0);
        let e = estimate_cycle_energy(&m, &stats);
        assert_eq!(e.dec + e.m2s + e.s2m, 0.0);
        assert!((e.arb - m.arbiter.e_clock).abs() < 1e-20);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_panics() {
        let _ = TrafficStats::uniform_random(1.5, 0.5, 14, 0.0);
    }
}
