//! Serializable configuration for a power-analysis run.

use serde::{Deserialize, Serialize};

use crate::macromodel::TechParams;

/// Everything a reproduction run needs to be repeatable: technology
/// parameters, clock, topology and trace windowing.
///
/// # Examples
///
/// ```
/// use ahbpower::AnalysisConfig;
///
/// let cfg = AnalysisConfig::paper_testbench();
/// assert_eq!(cfg.n_masters, 3); // two traffic masters + the default master
/// assert_eq!(cfg.n_slaves, 3);
/// assert_eq!(cfg.f_clk_hz, 100e6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Internal node capacitance `C_PD`, farads.
    pub c_pd: f64,
    /// Output node capacitance `C_O`, farads.
    pub c_o: f64,
    /// Bus clock frequency, hertz.
    pub f_clk_hz: f64,
    /// Masters on the bus (including the default master).
    pub n_masters: usize,
    /// Slaves on the bus.
    pub n_slaves: usize,
    /// Power-trace window length, cycles.
    pub window_cycles: u64,
    /// Workload seed.
    pub seed: u64,
}

impl AnalysisConfig {
    /// The paper's testbench configuration: two traffic masters plus a
    /// simple default master, three slaves, 100 MHz.
    pub fn paper_testbench() -> Self {
        AnalysisConfig {
            vdd: 3.3,
            c_pd: 50e-15,
            c_o: 150e-15,
            f_clk_hz: 100e6,
            n_masters: 3,
            n_slaves: 3,
            window_cycles: 20, // 200 ns windows at 100 MHz
            seed: 2003,
        }
    }

    /// The technology slice of the configuration.
    pub fn tech(&self) -> TechParams {
        TechParams {
            vdd: self.vdd,
            c_internal: self.c_pd,
            c_output: self.c_o,
        }
    }

    /// Clock period in picoseconds.
    pub fn period_ps(&self) -> u64 {
        (1e12 / self.f_clk_hz).round() as u64
    }
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig::paper_testbench()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbench_values() {
        let c = AnalysisConfig::paper_testbench();
        assert_eq!(c.period_ps(), 10_000, "100 MHz = 10 ns");
        let t = c.tech();
        assert_eq!(t.vdd, 3.3);
        assert_eq!(t.c_internal, 50e-15);
        assert_eq!(t.c_output, 150e-15);
        assert_eq!(c, AnalysisConfig::default());
    }

    #[test]
    fn period_rounds_sanely() {
        let mut c = AnalysisConfig::paper_testbench();
        c.f_clk_hz = 333e6;
        assert_eq!(c.period_ps(), 3003);
    }
}
