//! Energy ledgers: per-instruction (Table 1) and per-sub-block (Fig. 6).

use std::fmt;

use crate::instruction::{Instruction, INSTRUCTION_COUNT};
use crate::macromodel::BlockEnergy;

/// Formats an energy in joules with an auto-scaled unit (pJ/nJ/uJ/mJ).
///
/// # Examples
///
/// ```
/// use ahbpower::fmt_energy;
///
/// assert_eq!(fmt_energy(14.7e-12), "14.70 pJ");
/// assert_eq!(fmt_energy(839.6e-6), "839.60 uJ");
/// assert_eq!(fmt_energy(0.0), "0.00 pJ");
/// ```
pub fn fmt_energy(joules: f64) -> String {
    let abs = joules.abs();
    let (scale, unit) = if abs >= 1e-3 {
        (1e3, "mJ")
    } else if abs >= 1e-6 {
        (1e6, "uJ")
    } else if abs >= 1e-9 {
        (1e9, "nJ")
    } else {
        (1e12, "pJ")
    };
    format!("{:.2} {unit}", joules * scale)
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionRow {
    /// The instruction.
    pub instruction: Instruction,
    /// How many times it executed.
    pub count: u64,
    /// Average energy per execution, joules.
    pub average: f64,
    /// Total energy, joules.
    pub total: f64,
    /// Share of the whole simulation's energy (0..=1).
    pub share: f64,
}

/// Accumulates per-instruction energy — the data behind Table 1.
///
/// # Examples
///
/// ```
/// use ahbpower::{ActivityMode, Instruction, InstructionLedger};
///
/// let mut ledger = InstructionLedger::new();
/// let wr = Instruction::new(ActivityMode::Write, ActivityMode::Read);
/// ledger.record(wr, 14.7e-12);
/// ledger.record(wr, 15.3e-12);
/// let row = ledger.rows().into_iter().find(|r| r.instruction == wr).unwrap();
/// assert_eq!(row.count, 2);
/// assert!((row.average - 15.0e-12).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InstructionLedger {
    counts: [u64; INSTRUCTION_COUNT],
    energy: [f64; INSTRUCTION_COUNT],
}

impl InstructionLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        InstructionLedger::default()
    }

    /// Reconstitutes a ledger from raw per-instruction `counts` and
    /// `energy` arrays (indexed by [`Instruction::index`]). The replay
    /// engine accumulates into plain arrays in its hot loop and builds the
    /// ledger once at the end, preserving the exact accumulated bits.
    pub fn from_parts(counts: [u64; INSTRUCTION_COUNT], energy: [f64; INSTRUCTION_COUNT]) -> Self {
        InstructionLedger { counts, energy }
    }

    /// Records one execution of `instruction` costing `joules`.
    pub fn record(&mut self, instruction: Instruction, joules: f64) {
        let i = instruction.index();
        self.counts[i] += 1;
        self.energy[i] += joules;
    }

    /// Total energy across all instructions, joules.
    pub fn total_energy(&self) -> f64 {
        self.energy.iter().sum()
    }

    /// Total instruction executions.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Executions of one instruction.
    pub fn count(&self, instruction: Instruction) -> u64 {
        self.counts[instruction.index()]
    }

    /// Total energy of one instruction, joules.
    pub fn energy(&self, instruction: Instruction) -> f64 {
        self.energy[instruction.index()]
    }

    /// Rows for every instruction that executed at least once, sorted by
    /// descending total energy (the paper's table layout).
    pub fn rows(&self) -> Vec<InstructionRow> {
        let grand_total = self.total_energy();
        let mut rows: Vec<InstructionRow> = Instruction::all()
            .filter(|i| self.counts[i.index()] > 0)
            .map(|i| {
                let idx = i.index();
                let total = self.energy[idx];
                InstructionRow {
                    instruction: i,
                    count: self.counts[idx],
                    average: total / self.counts[idx] as f64,
                    total,
                    share: if grand_total > 0.0 {
                        total / grand_total
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        rows.sort_by(|a, b| b.total.partial_cmp(&a.total).expect("energies are finite"));
        rows
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &InstructionLedger) {
        for i in 0..INSTRUCTION_COUNT {
            self.counts[i] += other.counts[i];
            self.energy[i] += other.energy[i];
        }
    }
}

impl fmt::Display for InstructionLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<18} {:>12} {:>14} {:>14} {:>8}",
            "Instruction", "count", "avg energy", "total energy", "share"
        )?;
        for r in self.rows() {
            writeln!(
                f,
                "{:<18} {:>12} {:>11.1} pJ {:>14} {:>7.2}%",
                r.instruction.name(),
                r.count,
                r.average * 1e12,
                fmt_energy(r.total),
                r.share * 100.0
            )?;
        }
        writeln!(
            f,
            "{:<18} {:>12} {:>14} {:>14} {:>7.2}%",
            "Total",
            self.total_count(),
            "",
            fmt_energy(self.total_energy()),
            100.0
        )
    }
}

/// Named sub-blocks in Fig. 6's order.
pub const BLOCK_NAMES: [&str; 4] = ["M2S", "DEC", "ARB", "S2M"];

/// Accumulates per-sub-block energy — the data behind Fig. 6.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockLedger {
    total: BlockEnergy,
    cycles: u64,
}

impl BlockLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        BlockLedger::default()
    }

    /// Reconstitutes a ledger from accumulated `total` energies over
    /// `cycles` cycles (the replay-engine counterpart of
    /// [`InstructionLedger::from_parts`]).
    pub fn from_parts(total: BlockEnergy, cycles: u64) -> Self {
        BlockLedger { total, cycles }
    }

    /// Adds one cycle's block energies.
    pub fn record(&mut self, e: BlockEnergy) {
        self.total += e;
        self.cycles += 1;
    }

    /// Accumulated totals.
    pub fn totals(&self) -> BlockEnergy {
        self.total
    }

    /// Cycles recorded.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// `(name, energy, share)` for each block, in Fig. 6's order
    /// (M2S, DEC, ARB, S2M).
    pub fn shares(&self) -> [(&'static str, f64, f64); 4] {
        let t = self.total.total();
        let f = |e: f64| if t > 0.0 { e / t } else { 0.0 };
        [
            ("M2S", self.total.m2s, f(self.total.m2s)),
            ("DEC", self.total.dec, f(self.total.dec)),
            ("ARB", self.total.arb, f(self.total.arb)),
            ("S2M", self.total.s2m, f(self.total.s2m)),
        ]
    }
}

impl fmt::Display for BlockLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<6} {:>14} {:>8}", "block", "energy", "share")?;
        for (name, e, share) in self.shares() {
            writeln!(
                f,
                "{:<6} {:>14} {:>7.2}%",
                name,
                fmt_energy(e),
                share * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::ActivityMode::*;

    #[test]
    fn empty_ledger_is_zero() {
        let l = InstructionLedger::new();
        assert_eq!(l.total_energy(), 0.0);
        assert_eq!(l.total_count(), 0);
        assert!(l.rows().is_empty());
    }

    #[test]
    fn rows_sorted_by_total_energy() {
        let mut l = InstructionLedger::new();
        let wr = Instruction::new(Write, Read);
        let rw = Instruction::new(Read, Write);
        let ii = Instruction::new(Idle, Idle);
        l.record(wr, 10e-12);
        l.record(rw, 30e-12);
        l.record(ii, 1e-12);
        let rows = l.rows();
        assert_eq!(rows[0].instruction, rw);
        assert_eq!(rows[1].instruction, wr);
        assert_eq!(rows[2].instruction, ii);
        let share_sum: f64 = rows.iter().map(|r| r.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn averages_and_counts() {
        let mut l = InstructionLedger::new();
        let wr = Instruction::new(Write, Read);
        l.record(wr, 10e-12);
        l.record(wr, 20e-12);
        assert_eq!(l.count(wr), 2);
        assert!((l.energy(wr) - 30e-12).abs() < 1e-20);
        let row = &l.rows()[0];
        assert!((row.average - 15e-12).abs() < 1e-20);
    }

    #[test]
    fn merge_adds_both() {
        let wr = Instruction::new(Write, Read);
        let mut a = InstructionLedger::new();
        a.record(wr, 1e-12);
        let mut b = InstructionLedger::new();
        b.record(wr, 2e-12);
        a.merge(&b);
        assert_eq!(a.count(wr), 2);
        assert!((a.energy(wr) - 3e-12).abs() < 1e-24);
    }

    #[test]
    fn merge_with_disjoint_instruction_sets_unions_rows() {
        let wr = Instruction::new(Write, Read);
        let rw = Instruction::new(Read, Write);
        let ii = Instruction::new(Idle, Idle);
        let mut a = InstructionLedger::new();
        a.record(wr, 10e-12);
        a.record(wr, 20e-12);
        let mut b = InstructionLedger::new();
        b.record(rw, 5e-12);
        b.record(ii, 1e-12);
        a.merge(&b);
        // Each side's rows survive untouched: disjoint sets simply union.
        assert_eq!(a.count(wr), 2);
        assert_eq!(a.count(rw), 1);
        assert_eq!(a.count(ii), 1);
        assert!((a.energy(wr) - 30e-12).abs() < 1e-24);
        assert!((a.energy(rw) - 5e-12).abs() < 1e-24);
        assert_eq!(a.total_count(), 4);
        assert!((a.total_energy() - 36e-12).abs() < 1e-24);
        assert_eq!(a.rows().len(), 3);
        // `b` is unchanged by the merge.
        assert_eq!(b.total_count(), 2);
    }

    #[test]
    fn merge_with_overlapping_instruction_sets_sums_shared_rows() {
        let wr = Instruction::new(Write, Read);
        let rw = Instruction::new(Read, Write);
        let mut a = InstructionLedger::new();
        a.record(wr, 10e-12);
        a.record(rw, 2e-12);
        let mut b = InstructionLedger::new();
        b.record(wr, 30e-12);
        b.record(wr, 30e-12);
        a.merge(&b);
        // Shared instruction sums counts and energy across both ledgers...
        assert_eq!(a.count(wr), 3);
        assert!((a.energy(wr) - 70e-12).abs() < 1e-24);
        // ...and the merged average reflects the combined population.
        let row = a.rows().into_iter().find(|r| r.instruction == wr).unwrap();
        assert!((row.average - 70e-12 / 3.0).abs() < 1e-24);
        // The non-overlapping row is carried through unchanged.
        assert_eq!(a.count(rw), 1);
        assert!((a.total_energy() - 72e-12).abs() < 1e-24);
    }

    #[test]
    fn display_renders_table() {
        let mut l = InstructionLedger::new();
        l.record(Instruction::new(Write, Read), 14.7e-12);
        let s = l.to_string();
        assert!(s.contains("WRITE_READ"));
        assert!(s.contains("Total"));
        assert!(s.contains("pJ"));
    }

    #[test]
    fn block_ledger_shares_sum_to_one() {
        let mut b = BlockLedger::new();
        b.record(BlockEnergy {
            dec: 1.0,
            m2s: 5.0,
            s2m: 3.0,
            arb: 1.0,
        });
        b.record(BlockEnergy {
            dec: 1.0,
            m2s: 5.0,
            s2m: 3.0,
            arb: 1.0,
        });
        assert_eq!(b.cycles(), 2);
        let shares = b.shares();
        let sum: f64 = shares.iter().map(|(_, _, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(shares[0].0, "M2S");
        assert!((shares[0].1 - 10.0).abs() < 1e-12);
        let txt = b.to_string();
        assert!(txt.contains("M2S") && txt.contains("share"));
    }

    #[test]
    fn zero_energy_shares_are_zero_not_nan() {
        let b = BlockLedger::new();
        for (_, _, s) in b.shares() {
            assert_eq!(s, 0.0);
        }
        let l = InstructionLedger::new();
        for r in l.rows() {
            assert!(!r.share.is_nan());
        }
    }
}
