//! The anomaly flight recorder: atomically dumped post-mortem bundles.
//!
//! Whenever the serve worker drains an [`EventKind::AnomalyFlagged`]
//! event — and once on `/quit` or on a panic inside a slice — a bundle
//! capturing the moment is written to `results/flightrec/`: the flagged
//! window's anomaly record, the detector's residual statistics, the
//! surrounding raw observatory windows, the last events from the ring
//! and the causal chain (`AnomalyFlagged` → `EnergyBooked` →
//! `TxnComplete`, joined on window ids). Bundles are validated through
//! the workspace JSON checker and written via the same atomic
//! tmp+rename path as every other artifact, so a crash mid-dump never
//! leaves a torn file.

use std::collections::HashSet;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use ahbpower::telemetry::{AnomalyEvent, DetectorState, Event, EventKind, Observatory};

use crate::baseline::write_atomic;
use crate::json::validate_json;

/// How many trailing ring events a bundle retains.
pub const FLIGHTREC_EVENT_CONTEXT: usize = 256;

/// Raw observatory windows captured on each side of the bundle window.
pub const FLIGHTREC_WINDOW_CONTEXT: u64 = 8;

/// Ceiling on bundles per recorder (a runaway fault storm must not fill
/// the disk); later triggers are counted but not written.
pub const FLIGHTREC_MAX_BUNDLES: usize = 32;

/// Ceiling on events per causal-chain section of a bundle (newest kept).
pub const FLIGHTREC_CAUSAL_CAP: usize = 64;

/// Writes post-mortem bundles into
/// `<results>/flightrec/shard-<N>/`, one JSON document per trigger,
/// deduplicated by `(shard, window, reason)`.
#[derive(Debug)]
pub struct FlightRecorder {
    dir: PathBuf,
    shard: u64,
    written: HashSet<(u64, String)>,
    suppressed: u64,
}

impl FlightRecorder {
    /// Creates a shard-0 recorder (the single-shard spelling of
    /// [`FlightRecorder::for_shard`]).
    pub fn new(results_dir: &Path) -> Self {
        FlightRecorder::for_shard(results_dir, 0)
    }

    /// Creates a recorder for one serve shard. Bundles land in
    /// `results_dir/flightrec/shard-<shard>` (created lazily on the
    /// first write) and carry a `shard` field, so a multi-shard plane's
    /// recorders never collide on disk or in the dedup key.
    pub fn for_shard(results_dir: &Path, shard: u64) -> Self {
        FlightRecorder {
            dir: results_dir.join("flightrec").join(format!("shard-{shard}")),
            shard,
            written: HashSet::new(),
            suppressed: 0,
        }
    }

    /// The bundle directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard whose bundles this recorder writes.
    pub fn shard(&self) -> u64 {
        self.shard
    }

    /// Bundles written so far.
    pub fn bundles(&self) -> usize {
        self.written.len()
    }

    /// Triggers dropped by the [`FLIGHTREC_MAX_BUNDLES`] ceiling.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Dumps one bundle. `reason` is `"anomaly"`, `"quit"` or
    /// `"panic"`; `window` anchors the file name and the causal joins;
    /// `events` is the (already-drained) event log the context and
    /// causal sections are cut from. Returns the path written, or
    /// `None` when the bundle was deduplicated or rate-capped.
    ///
    /// # Errors
    ///
    /// I/O errors from the atomic write, or `InvalidData` if the
    /// rendered bundle fails the workspace JSON self-check.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        reason: &str,
        window: u64,
        slice: u64,
        anomaly: Option<&AnomalyEvent>,
        detector: Option<&DetectorState>,
        observatory: Option<&Observatory>,
        events: &[Event],
    ) -> io::Result<Option<PathBuf>> {
        let file = if reason == "anomaly" {
            format!("{window}.json")
        } else {
            format!("{window}-{reason}.json")
        };
        let key = (self.shard, file.clone());
        if self.written.contains(&key) {
            return Ok(None);
        }
        if self.written.len() >= FLIGHTREC_MAX_BUNDLES {
            self.suppressed += 1;
            return Ok(None);
        }
        let body = render_bundle(
            reason,
            self.shard,
            window,
            slice,
            anomaly,
            detector,
            observatory,
            events,
        );
        validate_json(&body).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("flight-recorder bundle invalid: {e}"),
            )
        })?;
        std::fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(&file);
        write_atomic(&path, &body)?;
        self.written.insert(key);
        Ok(Some(path))
    }
}

/// Renders the bundle document; see the module docs for the layout.
#[allow(clippy::too_many_arguments)]
fn render_bundle(
    reason: &str,
    shard: u64,
    window: u64,
    slice: u64,
    anomaly: Option<&AnomalyEvent>,
    detector: Option<&DetectorState>,
    observatory: Option<&Observatory>,
    events: &[Event],
) -> String {
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "{{\"reason\":\"{reason}\",\"shard\":{shard},\"window\":{window},\"slice\":{slice}"
    );

    out.push_str(",\"anomaly\":");
    match anomaly {
        Some(a) => {
            let _ = write!(
                out,
                "{{\"window\":{},\"start_cycle\":{},\"measured_j\":{},\"predicted_j\":{},\"deviation_pct\":{},\"z_score\":{}}}",
                a.window,
                a.start_cycle,
                jnum(a.measured_j),
                jnum(a.predicted_j),
                jnum(a.deviation_pct),
                jnum(a.z_score)
            );
        }
        None => out.push_str("null"),
    }

    out.push_str(",\"detector\":");
    match detector {
        Some(d) => {
            let _ = write!(
                out,
                "{{\"windows\":{},\"baseline_updates\":{},\"flagged\":{},\"resid_mean\":{},\"resid_var\":{},\"resid_primed\":{}}}",
                d.windows,
                d.baseline_updates,
                d.flagged,
                jnum(d.resid_mean),
                jnum(d.resid_var),
                d.resid_primed
            );
        }
        None => out.push_str("null"),
    }

    // Surrounding raw windows from the observatory (energy series).
    out.push_str(",\"raw_windows\":[");
    if let Some(obs) = observatory {
        let from = window.saturating_sub(FLIGHTREC_WINDOW_CONTEXT);
        let to = window + FLIGHTREC_WINDOW_CONTEXT;
        if let Some(q) = obs.query("energy", from, to, 1) {
            for (i, p) in q.points.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"window\":{},\"start_cycle\":{},\"energy_j\":{},\"min\":{},\"max\":{}}}",
                    p.start_window,
                    p.start_cycle,
                    jnum(p.sum),
                    jnum(p.min),
                    jnum(p.max)
                );
            }
        }
    }
    out.push(']');

    // Trailing event context, newest FLIGHTREC_EVENT_CONTEXT entries.
    let tail_start = events.len().saturating_sub(FLIGHTREC_EVENT_CONTEXT);
    out.push_str(",\"events\":[");
    for (i, e) in events[tail_start..].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e.to_json_obj());
    }
    out.push(']');

    // The causal chain joined on the bundle window: the flag, the
    // energy booking it judged, and the transactions that fed it.
    out.push_str(",\"causal\":{");
    for (i, (key, kind)) in [
        ("anomaly_flagged", EventKind::AnomalyFlagged),
        ("energy_booked", EventKind::EnergyBooked),
        ("txn_complete", EventKind::TxnComplete),
    ]
    .into_iter()
    .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        let matching: Vec<&Event> = events
            .iter()
            .filter(|e| e.kind == kind && e.window == window)
            .collect();
        let start = matching.len().saturating_sub(FLIGHTREC_CAUSAL_CAP);
        let _ = write!(out, "\"{key}\":[");
        for (j, e) in matching[start..].iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json_obj());
        }
        let _ = write!(out, "],\"{key}_total\":{}", matching.len());
    }
    out.push_str("}}");
    out
}

/// A JSON-safe float (non-finite values become `null`).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, JsonValue};
    use ahbpower::telemetry::{ObservatoryConfig, WindowVerdict};
    use ahbpower::BlockEnergy;

    fn ev(kind: EventKind, window: u64, txn: u64) -> Event {
        Event {
            seq: 0,
            kind,
            slice: 1,
            txn,
            window,
            cycle: window * 100,
            tag: 0,
            a: 1.0,
            b: 2.0,
        }
    }

    fn observatory() -> Observatory {
        let mut obs = Observatory::new(ObservatoryConfig::default().with_capacity(32), 2, 100);
        for w in 0..12u64 {
            let e = BlockEnergy {
                dec: 1.0e-13,
                m2s: 1.0e-13,
                s2m: 1.0e-13,
                arb: 1.0e-13,
            };
            for _ in 0..100 {
                obs.observe_cycle(0, &e);
            }
            let measured = 4.0e-11;
            obs.close_window(
                &WindowVerdict {
                    window: w,
                    start_cycle: w * 100,
                    measured_j: measured,
                    predicted_j: measured,
                    flagged: None,
                    absorbed: true,
                },
                w,
            );
        }
        obs
    }

    fn events_around(window: u64) -> Vec<Event> {
        let mut events = Vec::new();
        for t in 0..5 {
            events.push(ev(EventKind::TxnComplete, window, t));
        }
        events.push(ev(EventKind::EnergyBooked, window, 0));
        events.push(ev(EventKind::AnomalyFlagged, window, 0));
        events
    }

    #[test]
    fn bundle_is_valid_json_with_causal_chain() {
        let tmp = std::env::temp_dir().join(format!("flightrec_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        let mut rec = FlightRecorder::new(&tmp);
        let obs = observatory();
        let anomaly = AnomalyEvent {
            window: 9,
            start_cycle: 900,
            measured_j: 8.0e-11,
            predicted_j: 4.0e-11,
            deviation_pct: 100.0,
            z_score: 20.0,
        };
        let detector = DetectorState {
            windows: 10,
            baseline_updates: 9,
            flagged: 1,
            resid_mean: 0.001,
            resid_var: 0.0001,
            resid_primed: true,
        };
        let path = rec
            .record(
                "anomaly",
                9,
                1,
                Some(&anomaly),
                Some(&detector),
                Some(&obs),
                &events_around(9),
            )
            .expect("bundle writes")
            .expect("bundle not deduped");
        assert!(path.ends_with("flightrec/shard-0/9.json"));
        let body = std::fs::read_to_string(&path).expect("bundle readable");
        validate_json(&body).expect("bundle is valid JSON");
        let doc = parse_json(&body).expect("bundle parses");
        assert_eq!(
            doc.get("reason").and_then(JsonValue::as_str),
            Some("anomaly")
        );
        assert_eq!(doc.get("shard").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(doc.get("window").and_then(JsonValue::as_u64), Some(9));
        let causal = doc.get("causal").expect("causal section");
        let txns = causal
            .get("txn_complete")
            .and_then(JsonValue::as_array)
            .expect("txn chain");
        assert_eq!(txns.len(), 5, "causal chain reaches the transactions");
        assert_eq!(
            causal
                .get("energy_booked")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(1)
        );
        // Surrounding raw windows bracket the flagged one.
        let raw = doc
            .get("raw_windows")
            .and_then(JsonValue::as_array)
            .expect("raw windows");
        assert!(raw.len() >= 8, "context windows captured: {}", raw.len());
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn bundles_dedupe_and_cap() {
        let tmp = std::env::temp_dir().join(format!("flightrec_cap_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        let mut rec = FlightRecorder::new(&tmp);
        let events = events_around(3);
        let first = rec
            .record("anomaly", 3, 0, None, None, None, &events)
            .expect("writes");
        assert!(first.is_some());
        let again = rec
            .record("anomaly", 3, 0, None, None, None, &events)
            .expect("writes");
        assert!(again.is_none(), "same window dedupes");
        assert_eq!(rec.bundles(), 1);
        // Distinct reasons at the same window do not collide.
        let quit = rec
            .record("quit", 3, 0, None, None, None, &events)
            .expect("writes")
            .expect("distinct file");
        assert!(quit.ends_with("flightrec/shard-0/3-quit.json"));
        for w in 100..(100 + FLIGHTREC_MAX_BUNDLES as u64) {
            let _ = rec.record("anomaly", w, 0, None, None, None, &events);
        }
        assert_eq!(rec.bundles(), FLIGHTREC_MAX_BUNDLES);
        assert!(rec.suppressed() > 0, "cap suppresses the overflow");
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn shards_keep_separate_directories_and_dedup_keys() {
        let tmp = std::env::temp_dir().join(format!("flightrec_shard_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        let mut rec0 = FlightRecorder::for_shard(&tmp, 0);
        let mut rec1 = FlightRecorder::for_shard(&tmp, 1);
        assert_eq!(rec0.shard(), 0);
        assert_eq!(rec1.shard(), 1);
        let events = events_around(7);
        // The same window on different shards is NOT a duplicate: the
        // dedup key is (shard, window) and the files live in per-shard
        // subdirectories.
        let p0 = rec0
            .record("anomaly", 7, 0, None, None, None, &events)
            .expect("writes")
            .expect("shard 0 bundle");
        let p1 = rec1
            .record("anomaly", 7, 0, None, None, None, &events)
            .expect("writes")
            .expect("shard 1 bundle at the same window");
        assert!(p0.ends_with("flightrec/shard-0/7.json"));
        assert!(p1.ends_with("flightrec/shard-1/7.json"));
        // Bundles carry their shard so offline tooling can tell the
        // origins apart even out of the directory tree.
        let doc1 = parse_json(&std::fs::read_to_string(&p1).expect("readable")).expect("parses");
        assert_eq!(doc1.get("shard").and_then(JsonValue::as_u64), Some(1));
        // Within a shard, the same (window, reason) still dedupes.
        assert!(rec1
            .record("anomaly", 7, 0, None, None, None, &events)
            .expect("writes")
            .is_none());
        // FlightRecorder::new is the shard-0 spelling.
        assert_eq!(FlightRecorder::new(&tmp).dir(), rec0.dir());
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
