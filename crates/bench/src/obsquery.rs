//! Offline observatory queries: parse a `results/observatory.jsonl`
//! snapshot (written by `repro serve` on shutdown) and answer the same
//! range queries the live `GET /query` endpoint serves, rendering
//! byte-identical JSON. The shared renderer lives here so the two paths
//! cannot drift.

use ahbpower::telemetry::{Observatory, QueryResult, SeriesPoint};

use crate::json::{parse_json, JsonValue};

/// One retained bucket line of a snapshot, with every series' aggregate
/// arrays (parallel to [`ObservatorySnapshot::series`]).
#[derive(Debug, Clone, PartialEq)]
struct BucketLine {
    level: usize,
    factor: u64,
    bucket: u64,
    start_window: u64,
    start_cycle: u64,
    windows: u32,
    min: Vec<f64>,
    max: Vec<f64>,
    sum: Vec<f64>,
    last: Vec<f64>,
}

/// A parsed `observatory.jsonl` snapshot: the meta line plus every
/// retained bucket, queryable offline exactly like the live store.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservatorySnapshot {
    /// Cycles per raw window.
    pub window_cycles: u64,
    /// Ring capacity in buckets, per level.
    pub capacity: u64,
    /// Raw windows ingested when the snapshot was taken.
    pub windows: u64,
    /// Series names, in the store's stable order.
    pub series: Vec<String>,
    buckets: Vec<BucketLine>,
}

/// Pulls a required `u64` field out of a parsed object.
fn need_u64(doc: &JsonValue, key: &str, line: usize) -> Result<u64, String> {
    doc.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("line {line}: missing or non-integer \"{key}\""))
}

/// Pulls a required `f64` array field out of a parsed object
/// (`null` elements decode as NaN, mirroring the writer's encoding of
/// non-finite values).
fn need_f64_array(doc: &JsonValue, key: &str, n: usize, line: usize) -> Result<Vec<f64>, String> {
    let arr = doc
        .get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("line {line}: missing array \"{key}\""))?;
    if arr.len() != n {
        return Err(format!(
            "line {line}: \"{key}\" has {} entries, expected {n}",
            arr.len()
        ));
    }
    Ok(arr.iter().map(|v| v.as_f64().unwrap_or(f64::NAN)).collect())
}

/// Parses the two-shape JSONL snapshot [`Observatory::to_jsonl`] writes.
///
/// # Errors
///
/// A human-readable message naming the offending line when the meta
/// line is missing or any line fails to parse.
pub fn parse_observatory_snapshot(text: &str) -> Result<ObservatorySnapshot, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, meta_line) = lines.next().ok_or("empty snapshot")?;
    let meta = parse_json(meta_line).map_err(|e| format!("meta line: {e}"))?;
    if meta.get("kind").and_then(JsonValue::as_str) != Some("observatory") {
        return Err("meta line is not an observatory header".to_string());
    }
    let series: Vec<String> = meta
        .get("series")
        .and_then(JsonValue::as_array)
        .ok_or("meta line: missing series list")?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| "meta line: non-string series name".to_string())
        })
        .collect::<Result<_, _>>()?;
    let n = series.len();
    let mut snapshot = ObservatorySnapshot {
        window_cycles: need_u64(&meta, "window_cycles", 1)?,
        capacity: need_u64(&meta, "capacity", 1)?,
        windows: need_u64(&meta, "windows", 1)?,
        series,
        buckets: Vec::new(),
    };
    for (i, line) in lines {
        let lineno = i + 1;
        let doc = parse_json(line).map_err(|e| format!("line {lineno}: {e}"))?;
        snapshot.buckets.push(BucketLine {
            level: need_u64(&doc, "level", lineno)? as usize,
            factor: need_u64(&doc, "factor", lineno)?.max(1),
            bucket: need_u64(&doc, "bucket", lineno)?,
            start_window: need_u64(&doc, "start_window", lineno)?,
            start_cycle: need_u64(&doc, "start_cycle", lineno)?,
            windows: need_u64(&doc, "windows", lineno)? as u32,
            min: need_f64_array(&doc, "min", n, lineno)?,
            max: need_f64_array(&doc, "max", n, lineno)?,
            sum: need_f64_array(&doc, "sum", n, lineno)?,
            last: need_f64_array(&doc, "last", n, lineno)?,
        });
    }
    Ok(snapshot)
}

impl ObservatorySnapshot {
    /// Answers a range query from the snapshot, with the same level
    /// selection and bucket filtering as [`Observatory::query`].
    /// `None` when the series is unknown.
    pub fn query(&self, series: &str, from: u64, to: u64, step: u64) -> Option<QueryResult> {
        let s = self.series.iter().position(|name| name == series)?;
        let level = Observatory::select_level(step);
        let mut points: Vec<SeriesPoint> = self
            .buckets
            .iter()
            .filter(|b| {
                b.level == level && b.bucket >= from / b.factor && b.bucket <= to / b.factor
            })
            .map(|b| SeriesPoint {
                bucket: b.bucket,
                start_window: b.start_window,
                start_cycle: b.start_cycle,
                windows: b.windows,
                min: b.min[s],
                max: b.max[s],
                sum: b.sum[s],
                last: b.last[s],
            })
            .collect();
        points.sort_unstable_by_key(|p| p.bucket);
        let factor = self
            .buckets
            .iter()
            .find(|b| b.level == level)
            .map_or_else(|| 10u64.pow(level as u32), |b| b.factor);
        Some(QueryResult {
            series: series.to_string(),
            level,
            factor,
            from,
            to,
            step,
            points,
        })
    }
}

/// Merges per-shard answers to one range query into a fleet-aggregate
/// result: buckets are matched by index, sums (`sum`, `windows`,
/// `last`) add, extrema (`min`, `max`) compose, and bucket provenance
/// (`start_window`, `start_cycle`) keeps the earliest shard's origin.
/// This is the composition the cascade itself uses when folding raw
/// windows into coarser rings, so a merged `energy` total is exactly
/// the sum of the per-shard totals. `None` when no shard recognized
/// the series.
pub fn merge_query_results(results: Vec<QueryResult>) -> Option<QueryResult> {
    use std::collections::BTreeMap;
    let mut iter = results.into_iter();
    let first = iter.next()?;
    let mut merged: BTreeMap<u64, SeriesPoint> = BTreeMap::new();
    let meta = QueryResult {
        points: Vec::new(),
        ..first.clone()
    };
    for q in std::iter::once(first).chain(iter) {
        debug_assert_eq!(q.level, meta.level, "shards answered at different levels");
        for p in q.points {
            match merged.entry(p.bucket) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(p);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let m = e.get_mut();
                    m.start_window = m.start_window.min(p.start_window);
                    m.start_cycle = m.start_cycle.min(p.start_cycle);
                    m.windows += p.windows;
                    m.min = nan_min(m.min, p.min);
                    m.max = nan_max(m.max, p.max);
                    m.sum += p.sum;
                    m.last += p.last;
                }
            }
        }
    }
    Some(QueryResult {
        points: merged.into_values().collect(),
        ..meta
    })
}

/// `min` that ignores NaN operands (NaN encodes "no data" here).
fn nan_min(a: f64, b: f64) -> f64 {
    match (a.is_nan(), b.is_nan()) {
        (true, _) => b,
        (_, true) => a,
        _ => a.min(b),
    }
}

/// `max` that ignores NaN operands (NaN encodes "no data" here).
fn nan_max(a: f64, b: f64) -> f64 {
    match (a.is_nan(), b.is_nan()) {
        (true, _) => b,
        (_, true) => a,
        _ => a.max(b),
    }
}

/// Renders a query answer as the `/query` endpoint's JSON document —
/// the one renderer both the live route and `repro query` use.
pub fn query_result_json(q: &QueryResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(96 + 128 * q.points.len());
    let _ = write!(
        out,
        "{{\"series\":\"{}\",\"level\":{},\"factor\":{},\"from\":{},\"to\":{},\"step\":{},\"points\":[",
        q.series, q.level, q.factor, q.from, q.to, q.step
    );
    for (i, p) in q.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"bucket\":{},\"start_window\":{},\"start_cycle\":{},\"windows\":{},\"min\":{},\"max\":{},\"sum\":{},\"last\":{}}}",
            p.bucket,
            p.start_window,
            p.start_cycle,
            p.windows,
            jnum(p.min),
            jnum(p.max),
            jnum(p.sum),
            jnum(p.last)
        );
    }
    out.push_str("]}");
    out
}

/// A JSON-safe float (non-finite values become `null`).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use ahbpower::telemetry::{ObservatoryConfig, WindowVerdict};
    use ahbpower::BlockEnergy;

    /// A live store fed `n` synthetic windows, for round-trip tests.
    fn live(n: u64) -> Observatory {
        let mut obs = Observatory::new(ObservatoryConfig::default().with_capacity(16), 2, 50);
        for w in 0..n {
            let per_cycle = 1.0e-12 * (1.0 + (w % 5) as f64);
            let e = BlockEnergy {
                dec: per_cycle * 0.25,
                m2s: per_cycle * 0.25,
                s2m: per_cycle * 0.25,
                arb: per_cycle * 0.25,
            };
            for c in 0..50u64 {
                obs.observe_cycle((c % 2) as usize, &e);
            }
            let measured = per_cycle * 50.0;
            obs.close_window(
                &WindowVerdict {
                    window: w,
                    start_cycle: w * 50,
                    measured_j: measured,
                    predicted_j: measured,
                    flagged: None,
                    absorbed: true,
                },
                w * 3,
            );
        }
        obs
    }

    #[test]
    fn snapshot_round_trips_live_queries() {
        let obs = live(35);
        let snap = parse_observatory_snapshot(&obs.to_jsonl()).expect("snapshot parses");
        assert_eq!(snap.windows, 35);
        assert_eq!(snap.window_cycles, 50);
        assert_eq!(snap.series, obs.series_names());
        for (series, step) in [
            ("energy", 1),
            ("energy", 10),
            ("energy", 100),
            ("txns", 1),
            ("master:1", 10),
            ("block:arb", 100),
        ] {
            let a = obs.query(series, 0, 40, step).expect("live query");
            let b = snap.query(series, 0, 40, step).expect("offline query");
            assert_eq!(a, b, "series {series} step {step}");
            assert_eq!(
                query_result_json(&a),
                query_result_json(&b),
                "rendered JSON must match"
            );
        }
    }

    #[test]
    fn rendered_query_json_validates_and_parses() {
        let obs = live(12);
        let q = obs.query("energy", 0, 20, 10).expect("known series");
        let doc = query_result_json(&q);
        validate_json(&doc).expect("query JSON validates");
        let parsed = parse_json(&doc).expect("query JSON parses");
        assert_eq!(
            parsed.get("series").and_then(JsonValue::as_str),
            Some("energy")
        );
        assert_eq!(parsed.get("level").and_then(JsonValue::as_u64), Some(1));
        let points = parsed
            .get("points")
            .and_then(JsonValue::as_array)
            .expect("points array");
        assert_eq!(points.len(), 2, "12 windows span two 10x buckets");
        assert_eq!(
            points[0].get("windows").and_then(JsonValue::as_u64),
            Some(10)
        );
    }

    #[test]
    fn merge_sums_and_composes_extrema() {
        let a = live(15);
        let b = live(25);
        let qa = a.query("energy", 0, 40, 1).expect("shard a");
        let qb = b.query("energy", 0, 40, 1).expect("shard b");
        let total_a: f64 = qa.points.iter().map(|p| p.sum).sum();
        let total_b: f64 = qb.points.iter().map(|p| p.sum).sum();
        let merged = merge_query_results(vec![qa.clone(), qb.clone()]).expect("merge");
        let total_m: f64 = merged.points.iter().map(|p| p.sum).sum();
        assert!(
            (total_m - (total_a + total_b)).abs() <= 1e-9 * total_m.abs().max(1.0),
            "merged energy {total_m} != {total_a} + {total_b}"
        );
        // Buckets both shards answered compose pointwise; shard b's
        // extra buckets pass through unchanged.
        for p in &merged.points {
            let pa = qa.points.iter().find(|q| q.bucket == p.bucket);
            let pb = qb.points.iter().find(|q| q.bucket == p.bucket);
            match (pa, pb) {
                (Some(x), Some(y)) => {
                    assert_eq!(p.windows, x.windows + y.windows);
                    assert_eq!(p.min, x.min.min(y.min));
                    assert_eq!(p.max, x.max.max(y.max));
                    assert_eq!(p.last, x.last + y.last);
                }
                (Some(x), None) | (None, Some(x)) => assert_eq!(p, x),
                (None, None) => panic!("bucket {} from nowhere", p.bucket),
            }
        }
        // Bucket order stays sorted and the metadata survives.
        assert!(merged.points.windows(2).all(|w| w[0].bucket < w[1].bucket));
        assert_eq!(merged.series, "energy");
        assert_eq!(merged.level, qa.level);
    }

    #[test]
    fn merge_of_single_result_is_identity_and_empty_is_none() {
        let q = live(8).query("txns", 0, 10, 1).expect("query");
        assert_eq!(merge_query_results(vec![q.clone()]), Some(q));
        assert_eq!(merge_query_results(Vec::new()), None);
    }

    #[test]
    fn unknown_series_and_garbage_are_rejected() {
        let obs = live(5);
        let snap = parse_observatory_snapshot(&obs.to_jsonl()).expect("snapshot parses");
        assert!(snap.query("nope", 0, 10, 1).is_none());
        assert!(parse_observatory_snapshot("").is_err());
        assert!(parse_observatory_snapshot("{\"kind\":\"other\"}").is_err());
        assert!(parse_observatory_snapshot("not json at all").is_err());
    }
}
