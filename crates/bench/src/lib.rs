//! # ahbpower-bench — shared experiment plumbing
//!
//! The `repro` binary and the criterion benches both run the paper's
//! testbench under power instrumentation; this library holds the shared
//! steps so experiments stay consistent. See DESIGN.md's experiment index
//! (E1-E8) for what maps where.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod dashboard;
mod flightrec;
mod json;
mod loadgen;
mod obsquery;
mod replay;
mod serve;
mod sweep;

pub use baseline::{
    compare_baselines, record_baseline, write_atomic, BaselineComparison, BaselineError,
    BaselineRow, BaselineSnapshot, BaselineViolation, WindowPowerSummary, BASELINE_VERSION,
    WINDOW_POWER_BOUNDS_UW,
};
pub use dashboard::DASHBOARD_HTML;
pub use flightrec::{
    FlightRecorder, FLIGHTREC_CAUSAL_CAP, FLIGHTREC_EVENT_CONTEXT, FLIGHTREC_MAX_BUNDLES,
    FLIGHTREC_WINDOW_CONTEXT,
};
pub use json::{parse_json, validate_json, JsonError, JsonValue};
pub use loadgen::{
    loadgen_report_json, run_loadgen, EndpointStats, LoadgenConfig, LoadgenReport,
    LOADGEN_LATENCY_BOUNDS_US,
};
pub use obsquery::{
    merge_query_results, parse_observatory_snapshot, query_result_json, ObservatorySnapshot,
};
pub use replay::{
    replay_sweep, replay_variant_model, replay_variant_spec, resimulate_variant,
    run_paper_experiment_recorded, REPLAY_VARIANT_FACTORS,
};
pub use serve::{
    format_multi_cursor, http_get, merged_read_since, parse_multi_cursor, serve, HttpResponse,
    Injection, ScenarioMix, ServeConfig, ServeError, ServeSummary, ServerHandle, SHARD_SEED_STRIDE,
    STAGE_US_BOUNDS,
};
pub use sweep::{
    available_jobs, run_sweep, run_sweep_point, sweep_csv, sweep_grid, sweep_report, ProbeStyle,
    SweepOutcome, SweepPoint, SweepRunner,
};

use ahbpower::telemetry::TelemetryConfig;
use ahbpower::{
    AnalysisConfig, FsmProbe, GlobalProbe, InlineProbe, PowerProbe, PowerSession, TxnTracerConfig,
};
use ahbpower_ahb::AhbBus;
use ahbpower_workloads::{PaperTestbench, SocScenario};

/// The outcome of the main paper experiment (E1-E5 share one run).
pub struct PaperRun {
    /// The analysis configuration used.
    pub config: AnalysisConfig,
    /// The instrumented session (ledgers + traces).
    pub session: PowerSession,
    /// The bus after the run (statistics).
    pub bus: AhbBus,
    /// Cycles executed.
    pub cycles: u64,
}

/// Builds the paper testbench sized for `cycles` and runs it under the
/// power FSM. `seed` controls the workload.
///
/// # Panics
///
/// Panics if the testbench fails to build (impossible for valid configs).
pub fn run_paper_experiment(cycles: u64, seed: u64) -> PaperRun {
    let config = AnalysisConfig::paper_testbench();
    let tb = PaperTestbench::sized_for(cycles, seed);
    let mut bus = tb.build().expect("paper testbench is statically valid");
    let mut session = PowerSession::new(&config);
    session.run(&mut bus, cycles);
    PaperRun {
        config,
        session,
        bus,
        cycles,
    }
}

/// Like [`run_paper_experiment`], with telemetry enabled: the session
/// carries a live [`ahbpower::telemetry::Telemetry`] labelled
/// [`PaperTestbench::LABEL`]; call
/// [`PowerSession::finish_telemetry`] on the returned session to export.
///
/// # Panics
///
/// Panics if the testbench fails to build (impossible for valid configs).
pub fn run_paper_experiment_telemetered(cycles: u64, seed: u64) -> PaperRun {
    let config = AnalysisConfig::paper_testbench();
    let tb = PaperTestbench::sized_for(cycles, seed);
    let mut bus = tb.build().expect("paper testbench is statically valid");
    let tcfg = TelemetryConfig::enabled(PaperTestbench::LABEL).with_seed(seed);
    let mut session = PowerSession::with_telemetry(&config, tcfg);
    session.run(&mut bus, cycles);
    PaperRun {
        config,
        session,
        bus,
        cycles,
    }
}

/// Like [`run_paper_experiment`], with the transaction tracer enabled:
/// the session records causally-linked transactions in a ring of
/// `ring_capacity` records and books per-cycle energy into an
/// attribution table. Call [`PowerSession::finish_txn`] on the returned
/// session before reading the records.
///
/// # Panics
///
/// Panics if the testbench fails to build (impossible for valid configs).
pub fn run_paper_experiment_traced(cycles: u64, seed: u64, ring_capacity: usize) -> PaperRun {
    let config = AnalysisConfig::paper_testbench();
    let tb = PaperTestbench::sized_for(cycles, seed);
    let mut bus = tb.build().expect("paper testbench is statically valid");
    let mut session =
        PowerSession::with_txn_tracer(&config, TxnTracerConfig::enabled(ring_capacity));
    session.run(&mut bus, cycles);
    PaperRun {
        config,
        session,
        bus,
        cycles,
    }
}

/// Runs the [`SocScenario`] (CPU + DMA + stream contending for three
/// slaves) under the transaction tracer, sized so the scripts roughly
/// fill `cycles`. Same contract as [`run_paper_experiment_traced`].
///
/// # Panics
///
/// Panics if the scenario fails to build (impossible for valid configs).
pub fn run_soc_experiment_traced(cycles: u64, seed: u64, ring_capacity: usize) -> PaperRun {
    let config = AnalysisConfig {
        n_masters: SocScenario::N_MASTERS,
        n_slaves: SocScenario::N_SLAVES,
        seed,
        ..AnalysisConfig::paper_testbench()
    };
    // Scale the default traffic mix to the requested horizon: the default
    // scenario covers roughly 6k cycles of activity.
    let scale = (cycles / 4_000).clamp(1, 10_000) as u32;
    let base = SocScenario::default();
    let scenario = SocScenario {
        seed,
        cpu_accesses: base.cpu_accesses * scale,
        dma_blocks: base.dma_blocks * scale,
        stream_frames: base.stream_frames * scale,
        ..base
    };
    let mut bus = scenario.build().expect("soc scenario is statically valid");
    let mut session =
        PowerSession::with_txn_tracer(&config, TxnTracerConfig::enabled(ring_capacity));
    session.run(&mut bus, cycles);
    PaperRun {
        config,
        session,
        bus,
        cycles,
    }
}

/// Builds a fresh paper testbench bus sized for `cycles` (functional only).
///
/// # Panics
///
/// Panics if the testbench fails to build (impossible for valid configs).
pub fn build_paper_bus(cycles: u64, seed: u64) -> AhbBus {
    PaperTestbench::sized_for(cycles, seed)
        .build()
        .expect("paper testbench is statically valid")
}

/// Runs all three probe styles over the same traffic and returns
/// `(style, total_energy_joules)` triples — experiment E8's accuracy side.
pub fn compare_probe_styles(cycles: u64, seed: u64) -> Vec<(&'static str, f64)> {
    let config = AnalysisConfig::paper_testbench();
    let model = ahbpower::AhbPowerModel::new(config.n_masters, config.n_slaves, &config.tech());
    // Calibration run for the FSM style (half-length, different seed, so the
    // styles genuinely diverge like the paper's accuracy/speed trade-off).
    let mut calib = InlineProbe::new(model.clone());
    let mut calib_bus = build_paper_bus(cycles / 2, seed ^ 0xCA11B);
    for _ in 0..cycles / 2 {
        calib.observe(calib_bus.step());
    }
    let mut inline = InlineProbe::new(model.clone());
    let mut fsm = FsmProbe::from_calibration(calib.fsm().ledger());
    let mut global = GlobalProbe::new(model);
    let mut bus = build_paper_bus(cycles, seed);
    for _ in 0..cycles {
        let snap = bus.step();
        inline.observe(snap);
        fsm.observe(snap);
        global.observe(snap);
    }
    vec![
        ("inline", inline.total_energy()),
        ("fsm", fsm.total_energy()),
        ("global", global.total_energy()),
    ]
}

/// Like [`compare_probe_styles`], but each style replays the (identical,
/// seed-deterministic) traffic on its own thread via [`SweepRunner`]. The
/// returned energies are bit-identical to the serial version for any `jobs`.
pub fn compare_probe_styles_parallel(
    cycles: u64,
    seed: u64,
    jobs: usize,
) -> Vec<(&'static str, f64)> {
    let points: Vec<SweepPoint> = ProbeStyle::ALL
        .iter()
        .map(|&style| SweepPoint {
            cycles,
            seed,
            style,
        })
        .collect();
    run_sweep(&points, jobs)
        .into_iter()
        .map(|o| (o.point.style.name(), o.total_energy))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_run_produces_energy_and_instructions() {
        let run = run_paper_experiment(5_000, 2003);
        assert!(run.session.total_energy() > 0.0);
        let rows = run.session.ledger().rows();
        assert!(rows.len() >= 4, "several instructions executed: {rows:?}");
        assert!(run.bus.stats().transfers_ok > 100);
    }

    #[test]
    fn telemetered_run_matches_plain_run_and_exports() {
        let plain = run_paper_experiment(5_000, 2003);
        let mut telemetered = run_paper_experiment_telemetered(5_000, 2003);
        assert_eq!(
            telemetered.session.total_energy(),
            plain.session.total_energy(),
            "telemetry must not perturb the energy analysis"
        );
        let t = telemetered.session.finish_telemetry().expect("enabled");
        let reg = t.registry();
        assert_eq!(reg.counter_value("ahb_cycles_total", &[]), Some(5_000.0));
        // Per-master wait-state counters exist for all three masters.
        for m in ["0", "1", "2"] {
            assert!(
                reg.counter_value("ahb_master_wait_cycles_total", &[("master", m)])
                    .is_some(),
                "master {m} wait counter"
            );
        }
        assert!(t.to_jsonl().contains("\"scenario\":\"paper_testbench\""));
        assert!(t
            .to_prometheus()
            .contains("ahb_arbitration_latency_cycles_bucket"));
    }

    #[test]
    fn probe_styles_are_comparable() {
        let results = compare_probe_styles(4_000, 99);
        let inline = results[0].1;
        let fsm = results[1].1;
        let global = results[2].1;
        assert!(inline > 0.0);
        // Global bookkeeping is exact for linear models.
        assert!((global - inline).abs() < 1e-6 * inline);
        // FSM style lands in the right ballpark (within 50%).
        assert!((fsm - inline).abs() < 0.5 * inline, "{fsm} vs {inline}");
    }

    #[test]
    fn parallel_styles_match_shared_bus_run_bitwise() {
        let serial = compare_probe_styles(4_000, 99);
        let parallel = compare_probe_styles_parallel(4_000, 99, 3);
        assert_eq!(serial.len(), parallel.len());
        for ((sn, se), (pn, pe)) in serial.iter().zip(&parallel) {
            assert_eq!(sn, pn);
            assert_eq!(se.to_bits(), pe.to_bits(), "style {sn} diverged");
        }
    }
}
