//! Baseline regression gating: snapshot the per-instruction energy
//! distribution of a deterministic run to JSON, and diff a fresh run
//! against the committed snapshot so energy regressions fail the build.
//!
//! The simulation is bit-deterministic for a given `(cycles, seed)`, so
//! comparing at the snapshot's own parameters yields *zero* drift on
//! unchanged code: any nonzero drift is a genuine model/workload change,
//! which the tolerance either accepts (intentional recalibration under
//! `--tolerance-pct`) or rejects (regression).

use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use ahbpower::SubBlock;
use ahbpower_ahb::CycleHistogram;
use ahbpower_workloads::PaperTestbench;

use crate::json::{parse_json, JsonError, JsonValue};

/// Format version stamped into snapshots (bump on layout changes).
pub const BASELINE_VERSION: u64 = 1;

/// Microwatt bucket bounds for the windowed-power histogram: three
/// decades of 1-2-5 steps around the testbench's ~µW-to-mW range.
pub const WINDOW_POWER_BOUNDS_UW: [u64; 16] = [
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
];

/// One instruction's booked energy in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    /// Instruction name (`READ_READ`, `IDLE_HO_WRITE`, ...).
    pub name: String,
    /// Cycles booked to the instruction.
    pub count: u64,
    /// Total energy booked, joules.
    pub total_j: f64,
    /// Mean energy per occurrence, joules.
    pub mean_j: f64,
}

/// Percentile summary of the windowed power trace, microwatts.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowPowerSummary {
    /// Windows observed.
    pub windows: u64,
    /// Median window power, µW.
    pub p50_uw: f64,
    /// 95th-percentile window power, µW.
    pub p95_uw: f64,
    /// 99th-percentile window power, µW.
    pub p99_uw: f64,
}

/// A recorded energy baseline: run parameters plus the per-instruction
/// distribution and windowed-power percentiles they produced.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineSnapshot {
    /// Snapshot format version ([`BASELINE_VERSION`]).
    pub version: u64,
    /// Scenario label the snapshot was recorded from.
    pub scenario: String,
    /// Cycles simulated.
    pub cycles: u64,
    /// Workload seed.
    pub seed: u64,
    /// Total energy, joules.
    pub total_energy_j: f64,
    /// Windowed-power percentile summary.
    pub window_power: WindowPowerSummary,
    /// Per-instruction rows, ledger order, zero-count rows omitted.
    pub rows: Vec<BaselineRow>,
}

/// Why recording, loading or comparing a baseline failed.
#[derive(Debug)]
pub enum BaselineError {
    /// Filesystem trouble.
    Io(io::Error),
    /// The snapshot file is not valid JSON.
    Json(JsonError),
    /// The snapshot parsed but its shape is wrong.
    Format(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Io(e) => write!(f, "baseline I/O error: {e}"),
            BaselineError::Json(e) => write!(f, "baseline JSON error: {e}"),
            BaselineError::Format(msg) => write!(f, "baseline format error: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<io::Error> for BaselineError {
    fn from(e: io::Error) -> Self {
        BaselineError::Io(e)
    }
}

impl From<JsonError> for BaselineError {
    fn from(e: JsonError) -> Self {
        BaselineError::Json(e)
    }
}

/// A JSON-safe float (non-finite becomes `null`; `f64` Display output
/// round-trips exactly through `str::parse`, which keeps unchanged-code
/// comparisons drift-free).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Records a baseline by running the paper testbench for `cycles` at
/// `seed`, optionally scaling one sub-block's coefficients first (the
/// negative-test hook `check.sh` uses to prove the gate trips).
pub fn record_baseline(
    cycles: u64,
    seed: u64,
    inject: Option<(SubBlock, f64)>,
) -> BaselineSnapshot {
    let config = ahbpower::AnalysisConfig::paper_testbench();
    let tb = PaperTestbench::sized_for(cycles, seed);
    let mut bus = tb.build().expect("paper testbench is statically valid");
    let mut session = ahbpower::PowerSession::new(&config);
    if let Some((block, factor)) = inject {
        session.scale_model_block(block, factor);
    }
    session.run(&mut bus, cycles);

    let mut hist = CycleHistogram::new(&WINDOW_POWER_BOUNDS_UW);
    for p in session.trace_points() {
        hist.observe((p.total_w * 1e6).round() as u64);
    }
    let rows = session
        .ledger()
        .rows()
        .into_iter()
        .map(|r| BaselineRow {
            name: r.instruction.name(),
            count: r.count,
            total_j: r.total,
            mean_j: r.average,
        })
        .collect();
    BaselineSnapshot {
        version: BASELINE_VERSION,
        scenario: PaperTestbench::LABEL.to_string(),
        cycles,
        seed,
        total_energy_j: session.total_energy(),
        window_power: WindowPowerSummary {
            windows: hist.count(),
            p50_uw: hist.quantile(0.5),
            p95_uw: hist.quantile(0.95),
            p99_uw: hist.quantile(0.99),
        },
        rows,
    }
}

impl BaselineSnapshot {
    /// Renders the snapshot as a pretty-stable JSON document (one row
    /// per line so diffs stay reviewable).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"version\": {},", self.version);
        let _ = writeln!(out, "  \"scenario\": \"{}\",", self.scenario);
        let _ = writeln!(out, "  \"cycles\": {},", self.cycles);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"total_energy_j\": {},", num(self.total_energy_j));
        let _ = writeln!(
            out,
            "  \"window_power\": {{\"windows\": {}, \"p50_uw\": {}, \"p95_uw\": {}, \"p99_uw\": {}}},",
            self.window_power.windows,
            num(self.window_power.p50_uw),
            num(self.window_power.p95_uw),
            num(self.window_power.p99_uw)
        );
        let _ = writeln!(out, "  \"rows\": [");
        for (i, r) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"count\": {}, \"total_j\": {}, \"mean_j\": {}}}{comma}",
                r.name,
                r.count,
                num(r.total_j),
                num(r.mean_j)
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a snapshot previously produced by
    /// [`BaselineSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// [`BaselineError::Json`] for malformed JSON,
    /// [`BaselineError::Format`] for a well-formed document of the wrong
    /// shape (missing fields, wrong types, unsupported version).
    pub fn from_json(text: &str) -> Result<BaselineSnapshot, BaselineError> {
        let doc = parse_json(text)?;
        let version = field_u64(&doc, "version")?;
        if version != BASELINE_VERSION {
            return Err(BaselineError::Format(format!(
                "unsupported baseline version {version} (expected {BASELINE_VERSION})"
            )));
        }
        let wp = doc
            .get("window_power")
            .ok_or_else(|| BaselineError::Format("missing field 'window_power'".to_string()))?;
        let rows_value = doc
            .get("rows")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| BaselineError::Format("missing array 'rows'".to_string()))?;
        let mut rows = Vec::with_capacity(rows_value.len());
        for r in rows_value {
            rows.push(BaselineRow {
                name: field_str(r, "name")?,
                count: field_u64(r, "count")?,
                total_j: field_f64(r, "total_j")?,
                mean_j: field_f64(r, "mean_j")?,
            });
        }
        Ok(BaselineSnapshot {
            version,
            scenario: field_str(&doc, "scenario")?,
            cycles: field_u64(&doc, "cycles")?,
            seed: field_u64(&doc, "seed")?,
            total_energy_j: field_f64(&doc, "total_energy_j")?,
            window_power: WindowPowerSummary {
                windows: field_u64(wp, "windows")?,
                p50_uw: field_f64(wp, "p50_uw")?,
                p95_uw: field_f64(wp, "p95_uw")?,
                p99_uw: field_f64(wp, "p99_uw")?,
            },
            rows,
        })
    }

    /// Loads a snapshot from a file.
    ///
    /// # Errors
    ///
    /// [`BaselineError::Io`] when unreadable, else as
    /// [`BaselineSnapshot::from_json`].
    pub fn load(path: &Path) -> Result<BaselineSnapshot, BaselineError> {
        BaselineSnapshot::from_json(&fs::read_to_string(path)?)
    }

    /// Writes the snapshot atomically (temp file + rename), so a crash
    /// mid-write can never truncate an existing baseline.
    ///
    /// # Errors
    ///
    /// [`BaselineError::Io`] on filesystem trouble.
    pub fn save(&self, path: &Path) -> Result<(), BaselineError> {
        write_atomic(path, &self.to_json())?;
        Ok(())
    }
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, BaselineError> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| BaselineError::Format(format!("missing or non-integer field '{key}'")))
}

fn field_f64(v: &JsonValue, key: &str) -> Result<f64, BaselineError> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| BaselineError::Format(format!("missing or non-numeric field '{key}'")))
}

fn field_str(v: &JsonValue, key: &str) -> Result<String, BaselineError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| BaselineError::Format(format!("missing or non-string field '{key}'")))
}

/// Writes `content` to `path` via a sibling temp file and an atomic
/// rename; readers never observe a half-written file.
pub fn write_atomic(path: &Path, content: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, content)?;
    fs::rename(&tmp, path)
}

/// One drift found by [`compare_baselines`].
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineViolation {
    /// What drifted (`total_energy_j`, `READ_READ mean_j`, ...).
    pub what: String,
    /// Baseline value.
    pub base: f64,
    /// Fresh value.
    pub fresh: f64,
    /// Signed drift, percent of the baseline.
    pub drift_pct: f64,
}

/// The outcome of a baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineComparison {
    /// Quantities checked.
    pub checks: usize,
    /// Tolerance applied, percent.
    pub tolerance_pct: f64,
    /// Quantities that drifted beyond tolerance.
    pub violations: Vec<BaselineViolation>,
}

impl BaselineComparison {
    /// Whether every check stayed within tolerance.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// A human-readable report, one line per violation.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if self.passed() {
            let _ = writeln!(
                out,
                "baseline OK: {} checks within {}% tolerance",
                self.checks, self.tolerance_pct
            );
        } else {
            let _ = writeln!(
                out,
                "baseline DRIFT: {} of {} checks beyond {}% tolerance",
                self.violations.len(),
                self.checks,
                self.tolerance_pct
            );
            for v in &self.violations {
                let _ = writeln!(
                    out,
                    "  {}: baseline {:.6e} fresh {:.6e} drift {:+.2}%",
                    v.what, v.base, v.fresh, v.drift_pct
                );
            }
        }
        out
    }
}

/// Signed percent drift of `fresh` relative to `base` (a zero baseline
/// with a nonzero fresh value reads as 100%).
fn drift_pct(base: f64, fresh: f64) -> f64 {
    if base == 0.0 {
        if fresh == 0.0 {
            0.0
        } else {
            100.0
        }
    } else {
        (fresh - base) / base * 100.0
    }
}

/// Compares a fresh snapshot against the recorded baseline: total
/// energy, windowed-power percentiles, and each instruction's count,
/// total and mean. Instructions present on one side only are
/// violations outright.
pub fn compare_baselines(
    base: &BaselineSnapshot,
    fresh: &BaselineSnapshot,
    tolerance_pct: f64,
) -> BaselineComparison {
    let mut checks = 0usize;
    let mut violations = Vec::new();
    fn check(
        checks: &mut usize,
        violations: &mut Vec<BaselineViolation>,
        tolerance_pct: f64,
        what: &str,
        b: f64,
        f: f64,
    ) {
        *checks += 1;
        let drift = drift_pct(b, f);
        if drift.abs() > tolerance_pct {
            violations.push(BaselineViolation {
                what: what.to_string(),
                base: b,
                fresh: f,
                drift_pct: drift,
            });
        }
    }
    macro_rules! check {
        ($what:expr, $b:expr, $f:expr) => {
            check(&mut checks, &mut violations, tolerance_pct, $what, $b, $f)
        };
    }

    check!("total_energy_j", base.total_energy_j, fresh.total_energy_j);
    check!(
        "window_power.p50_uw",
        base.window_power.p50_uw,
        fresh.window_power.p50_uw
    );
    check!(
        "window_power.p95_uw",
        base.window_power.p95_uw,
        fresh.window_power.p95_uw
    );
    check!(
        "window_power.p99_uw",
        base.window_power.p99_uw,
        fresh.window_power.p99_uw
    );
    for b in &base.rows {
        match fresh.rows.iter().find(|f| f.name == b.name) {
            Some(f) => {
                check!(&format!("{} count", b.name), b.count as f64, f.count as f64);
                check!(&format!("{} total_j", b.name), b.total_j, f.total_j);
                check!(&format!("{} mean_j", b.name), b.mean_j, f.mean_j);
            }
            None => {
                checks += 1;
                violations.push(BaselineViolation {
                    what: format!("{} missing from fresh run", b.name),
                    base: b.count as f64,
                    fresh: 0.0,
                    drift_pct: -100.0,
                });
            }
        }
    }
    for f in &fresh.rows {
        if !base.rows.iter().any(|b| b.name == f.name) {
            checks += 1;
            violations.push(BaselineViolation {
                what: format!("{} absent from baseline", f.name),
                base: 0.0,
                fresh: f.count as f64,
                drift_pct: 100.0,
            });
        }
    }
    if base.scenario != fresh.scenario {
        checks += 1;
        violations.push(BaselineViolation {
            what: format!(
                "scenario mismatch: baseline '{}' vs fresh '{}'",
                base.scenario, fresh.scenario
            ),
            base: 0.0,
            fresh: 0.0,
            drift_pct: 100.0,
        });
    }
    BaselineComparison {
        checks,
        tolerance_pct,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CYCLES: u64 = 20_000;
    const SEED: u64 = 2003;

    #[test]
    fn record_is_deterministic_and_round_trips_through_json() {
        let a = record_baseline(CYCLES, SEED, None);
        let b = record_baseline(CYCLES, SEED, None);
        assert_eq!(a, b, "same cycles+seed must snapshot identically");
        assert!(a.total_energy_j > 0.0);
        assert!(a.window_power.windows > 0);
        assert!(!a.rows.is_empty());

        let json = a.to_json();
        crate::json::validate_json(&json).expect("snapshot JSON is valid");
        let parsed = BaselineSnapshot::from_json(&json).expect("round-trip");
        assert_eq!(parsed, a, "Display-formatted floats round-trip exactly");
    }

    #[test]
    fn unchanged_run_compares_clean_at_zero_tolerance() {
        let base = record_baseline(CYCLES, SEED, None);
        let fresh = record_baseline(CYCLES, SEED, None);
        let cmp = compare_baselines(&base, &fresh, 0.0);
        assert!(cmp.passed(), "{}", cmp.render_text());
        assert!(cmp.checks > 10);
        assert!(cmp.render_text().starts_with("baseline OK"));
    }

    #[test]
    fn injected_coefficient_scaling_trips_the_gate() {
        let base = record_baseline(CYCLES, SEED, None);
        let drifted = record_baseline(CYCLES, SEED, Some((SubBlock::Arb, 2.0)));
        let cmp = compare_baselines(&base, &drifted, 2.0);
        assert!(!cmp.passed(), "doubling the arbiter must exceed 2%");
        let text = cmp.render_text();
        assert!(text.starts_with("baseline DRIFT"), "{text}");
        assert!(
            cmp.violations.iter().any(|v| v.what == "total_energy_j"),
            "{text}"
        );
        // Counts are untouched by an energy-only injection.
        assert!(
            cmp.violations.iter().all(|v| !v.what.ends_with(" count")),
            "instruction counts must not drift: {text}"
        );
    }

    #[test]
    fn missing_and_extra_instructions_are_violations() {
        let base = record_baseline(CYCLES, SEED, None);
        let mut fresh = base.clone();
        let moved = fresh.rows.remove(0);
        fresh.rows.push(BaselineRow {
            name: "BOGUS_BOGUS".to_string(),
            ..moved
        });
        let cmp = compare_baselines(&base, &fresh, 50.0);
        assert_eq!(cmp.violations.len(), 2, "{}", cmp.render_text());
    }

    #[test]
    fn malformed_snapshots_are_rejected_with_context() {
        assert!(matches!(
            BaselineSnapshot::from_json("not json"),
            Err(BaselineError::Json(_))
        ));
        let err = BaselineSnapshot::from_json("{\"version\": 99}").expect_err("bad version");
        assert!(err.to_string().contains("unsupported baseline version"));
        let err = BaselineSnapshot::from_json("{\"version\": 1}").expect_err("missing fields");
        assert!(matches!(err, BaselineError::Format(_)), "{err}");
    }

    #[test]
    fn save_and_load_are_atomic_and_lossless() {
        let dir = std::env::temp_dir().join(format!("ahb_baseline_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("baseline.json");
        let snap = record_baseline(CYCLES, SEED, None);
        snap.save(&path).expect("save");
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file renamed away"
        );
        let loaded = BaselineSnapshot::load(&path).expect("load");
        assert_eq!(loaded, snap);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
