//! The live monitoring service behind `repro serve`: N shard worker
//! threads (one persistent [`PowerSession`] each, with its own seed
//! rotation, scenario-mix phase, event ring, anomaly detector and
//! observatory) simulate workload slices continuously behind a
//! thread-pool HTTP server with a connection limit and 503
//! load-shedding — zero crates beyond `std::net`.
//!
//! The HTTP plane is *merged*: `/status`, `/healthz` and `/metrics`
//! aggregate all shards (counters add, histograms bucket-merge via
//! [`MetricsRegistry::merge_sum`], degraded flags OR together) while
//! `?shard=N` drills into one shard; `/query` fans out to every shard
//! observatory and composes sum/min/max per bucket (so the merged
//! energy total equals the sum of the per-shard totals exactly); and
//! `/events` exposes an aggregated cursor space — one absolute
//! sequence per shard, dot-joined (`since=12.34`), with per-shard
//! `dropped` accounting and shard-tagged events.
//!
//! Every slice, each shard republishes a fresh [`MetricsRegistry`]
//! snapshot into its shared state; the HTTP pool renders merged views
//! with the same exporters the offline `telemetry` subcommand uses. On
//! shutdown the merged registry and status document plus per-shard
//! events/observatory snapshots are flushed atomically to the results
//! directory, so a `/quit` (or slice budgets running out) always
//! leaves complete, readable artifacts.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use ahbpower::telemetry::{
    events_to_jsonl, to_prometheus, AnomalyConfig, AnomalyEvent, DetectorState, Event, EventBatch,
    EventBus, EventKind, ExportMeta, MetricsRegistry, Observatory, ObservatoryConfig, QueryResult,
    TelemetryConfig, DEFAULT_EVENT_CAPACITY, OBSERVATORY_LEVEL_FACTORS,
};
use ahbpower::{AnalysisConfig, PowerSession, SubBlock};
use ahbpower_ahb::CycleHistogram;
use ahbpower_workloads::{PaperTestbench, SocScenario};

use crate::baseline::{write_atomic, WINDOW_POWER_BOUNDS_UW};
use crate::dashboard::DASHBOARD_HTML;
use crate::flightrec::FlightRecorder;
use crate::json::validate_json;
use crate::obsquery::{merge_query_results, query_result_json};

/// Inclusive upper bounds (µs) for the per-stage wall-clock histograms
/// (`sim`, `publish`, `render`); an implicit overflow bucket catches
/// anything beyond a second.
pub const STAGE_US_BOUNDS: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// Ceiling on the worker's retained event log (oldest entries are
/// trimmed beyond this); bounds `events.jsonl` and server memory.
const EVENTS_LOG_CAP: usize = 200_000;

/// Longest `/events` long-poll the server will honor. A parked poll
/// occupies one pool worker and one connection slot — keep it short.
const EVENTS_POLL_CAP_MS: u64 = 5_000;

/// Seed distance between adjacent shards. Shard `k` runs slice `i` at
/// `seed + k * SHARD_SEED_STRIDE + i`, so shards never replay each
/// other's workloads for any realistic slice budget.
pub const SHARD_SEED_STRIDE: u64 = 1_000_000;

/// Which workloads the worker rotates through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioMix {
    /// Paper testbench only.
    Paper,
    /// SoC scenario only.
    Soc,
    /// Alternate paper and SoC slices.
    Mixed,
}

impl ScenarioMix {
    /// Parses `paper` / `soc` / `mixed`.
    pub fn from_name(name: &str) -> Option<ScenarioMix> {
        match name {
            "paper" => Some(ScenarioMix::Paper),
            "soc" => Some(ScenarioMix::Soc),
            "mixed" => Some(ScenarioMix::Mixed),
            _ => None,
        }
    }

    /// The mix's CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioMix::Paper => "paper",
            ScenarioMix::Soc => "soc",
            ScenarioMix::Mixed => "mixed",
        }
    }

    /// The scenario label for slice `i`.
    fn slice_label(self, i: u64) -> &'static str {
        match self {
            ScenarioMix::Paper => PaperTestbench::LABEL,
            ScenarioMix::Soc => "soc_scenario",
            ScenarioMix::Mixed => {
                if i.is_multiple_of(2) {
                    PaperTestbench::LABEL
                } else {
                    "soc_scenario"
                }
            }
        }
    }
}

/// A seeded coefficient-scaling fault, applied once at the start of the
/// given slice — the end-to-end test hook for the anomaly detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Injection {
    /// Sub-block whose coefficients are scaled.
    pub block: SubBlock,
    /// Scale factor.
    pub factor: f64,
    /// Slice index at which the fault appears.
    pub at_slice: u64,
}

impl Injection {
    /// Parses `block:factor[@slice]`, e.g. `arb:2.0` or `dec:1.5@3`.
    pub fn parse(spec: &str) -> Option<Injection> {
        let (block_name, rest) = spec.split_once(':')?;
        let block = SubBlock::from_name(block_name)?;
        let (factor_str, at_slice) = match rest.split_once('@') {
            Some((f, s)) => (f, s.parse().ok()?),
            None => (rest, 2),
        };
        let factor = factor_str.parse().ok()?;
        Some(Injection {
            block,
            factor,
            at_slice,
        })
    }
}

/// Configuration for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Scenario rotation.
    pub mix: ScenarioMix,
    /// Cycles per worker slice.
    pub slice_cycles: u64,
    /// Base workload seed; slice `i` runs at `seed + i`.
    pub seed: u64,
    /// Stop after this many slices (`None`: run until `/quit`).
    pub max_slices: Option<u64>,
    /// Anomaly-detector tuning.
    pub anomaly: AnomalyConfig,
    /// Optional seeded fault.
    pub inject: Option<Injection>,
    /// Where shutdown flushes `serve_final.jsonl` + `serve_status.json`
    /// (`None`: no flush).
    pub results_dir: Option<PathBuf>,
    /// Whether the structured event ring records events. Disabled, the
    /// ring still exists but every publish is a single cold-atomic
    /// branch and `/events` serves empty batches.
    pub events: bool,
    /// Event ring capacity (rounded up to a power of two).
    pub events_capacity: usize,
    /// Test hook: panic inside this slice's simulation (shard 0 only),
    /// exercising the flight recorder's panic-in-slice capture. Never
    /// set in production.
    pub panic_at_slice: Option<u64>,
    /// Concurrent worker sessions. Each shard gets its own thread,
    /// persistent session, event ring, detector and observatory;
    /// values below 1 are treated as 1.
    pub shards: usize,
    /// HTTP pool size: how many requests are serviced concurrently.
    pub http_threads: usize,
    /// Admission limit: connections admitted (queued + in service)
    /// beyond this are shed with a fast `503`.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let slice_cycles = 20_000;
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            mix: ScenarioMix::Mixed,
            slice_cycles,
            seed: 2003,
            max_slices: None,
            // Warm up across at least one slice of each scenario so the
            // residual statistics absorb cross-scenario variation.
            anomaly: AnomalyConfig::default()
                .with_warmup_windows(2 * slice_cycles / AnomalyConfig::default().window_cycles + 4),
            inject: None,
            results_dir: None,
            events: true,
            // 4x the library default: the serve loop drains the ring
            // once per slice, so the ring must hold a full slice's
            // events (~0.7/cycle) even for generous --slice-cycles.
            events_capacity: 4 * DEFAULT_EVENT_CAPACITY,
            panic_at_slice: None,
            shards: 1,
            http_threads: 4,
            max_connections: 64,
        }
    }
}

/// Why the service failed to start or run.
#[derive(Debug)]
pub enum ServeError {
    /// Socket trouble (bind, accept, read, write).
    Io(io::Error),
    /// A worker or HTTP thread panicked or vanished.
    Thread(String),
    /// A self-check failed (e.g. `/status` produced invalid JSON).
    SelfCheck(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
            ServeError::Thread(msg) => write!(f, "serve thread error: {msg}"),
            ServeError::SelfCheck(msg) => write!(f, "serve self-check failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Live state shared between one shard's worker and the HTTP pool.
#[derive(Debug)]
struct LiveState {
    started: Instant,
    shard: usize,
    mix: ScenarioMix,
    seed: u64,
    slices: u64,
    cycles: u64,
    total_energy_j: f64,
    /// `(name, count, total_j, mean_j)` per instruction.
    rows: Vec<(String, u64, f64, f64)>,
    window_power_uw: CycleHistogram,
    anomaly_windows: u64,
    anomaly_events: Vec<AnomalyEvent>,
    baseline_updates: u64,
    /// Per-master energy attribution, joules.
    per_master_j: Vec<f64>,
    /// Completed bus transactions (from the event tap).
    transactions: u64,
    events_enabled: bool,
    events_published: u64,
    /// Events lost to ring wraparound before the worker drained them.
    events_dropped: u64,
    /// Worker-drained event log, trimmed to [`EVENTS_LOG_CAP`]; the
    /// shutdown flush renders it into `events.jsonl`.
    events_log: Vec<Event>,
    /// The worker's ring-drain cursor; `published - cursor` is the
    /// drain lag surfaced in `/status` and `/metrics`.
    events_cursor: u64,
    /// Per-slice snapshot of the session's power observatory (what
    /// `/query` answers from).
    observatory: Option<Observatory>,
    /// Per-slice snapshot of the anomaly detector's statistics (what
    /// flight-recorder bundles embed).
    detector: Option<DetectorState>,
    /// Flight-recorder bundles written so far.
    flightrec_bundles: u64,
    /// Recorded cycles of the startup replay self-calibration (0 until
    /// it completes).
    replay_trace_cycles: u64,
    /// Model variants the calibration replayed.
    replay_variants: u64,
    /// Replay throughput the calibration measured, cycles/second.
    replay_cycles_per_sec: f64,
    /// Wall-clock per slice simulated (worker-measured).
    sim_us: CycleHistogram,
    /// Wall-clock per state republish (worker-measured).
    publish_us: CycleHistogram,
    /// Wall-clock per `/status` render (HTTP-thread-measured).
    render_us: CycleHistogram,
    registry: MetricsRegistry,
    /// Latest full JSONL export (registry + anomaly event lines).
    jsonl: String,
}

impl LiveState {
    fn new(shard: usize, mix: ScenarioMix, seed: u64, events_enabled: bool) -> Self {
        LiveState {
            started: Instant::now(),
            shard,
            mix,
            seed,
            slices: 0,
            cycles: 0,
            total_energy_j: 0.0,
            rows: Vec::new(),
            window_power_uw: CycleHistogram::new(&WINDOW_POWER_BOUNDS_UW),
            anomaly_windows: 0,
            anomaly_events: Vec::new(),
            baseline_updates: 0,
            per_master_j: Vec::new(),
            transactions: 0,
            events_enabled,
            events_published: 0,
            events_dropped: 0,
            events_log: Vec::new(),
            events_cursor: 0,
            observatory: None,
            detector: None,
            flightrec_bundles: 0,
            replay_trace_cycles: 0,
            replay_variants: 0,
            replay_cycles_per_sec: 0.0,
            sim_us: CycleHistogram::new(&STAGE_US_BOUNDS),
            publish_us: CycleHistogram::new(&STAGE_US_BOUNDS),
            render_us: CycleHistogram::new(&STAGE_US_BOUNDS),
            registry: MetricsRegistry::new(),
            jsonl: String::new(),
        }
    }

    fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Whether the service is in a degraded state: the most recently
    /// judged detection window was flagged anomalous.
    fn degraded(&self) -> bool {
        self.anomaly_events
            .last()
            .is_some_and(|e| e.window + 1 == self.anomaly_windows)
    }

    /// Events published to the ring but not yet drained by the worker.
    fn events_lag(&self) -> u64 {
        self.events_published.saturating_sub(self.events_cursor)
    }

    /// Rebuilds the shared registry from the current fields; `/metrics`
    /// renders exactly this through the standard Prometheus exporter.
    fn republish(&mut self) {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("serve_slices_total", "Workload slices completed.", &[]);
        reg.add(c, self.slices as f64);
        let c = reg.counter("ahb_cycles_total", "Bus cycles simulated.", &[]);
        reg.add(c, self.cycles as f64);
        let c = reg.counter("power_total_energy_joules", "Total bus energy booked.", &[]);
        reg.add(c, self.total_energy_j);
        for (name, count, total, mean) in &self.rows {
            let labels = [("instruction", name.as_str())];
            let c = reg.counter(
                "power_instruction_cycles_total",
                "Cycles booked per instruction.",
                &labels,
            );
            reg.add(c, *count as f64);
            let c = reg.counter(
                "power_instruction_energy_joules",
                "Energy booked per instruction.",
                &labels,
            );
            reg.add(c, *total);
            let g = reg.gauge(
                "power_instruction_mean_energy_joules",
                "Mean energy per instruction occurrence.",
                &labels,
            );
            reg.set(g, *mean);
        }
        let h = reg.histogram(
            "serve_window_power_microwatts",
            "Windowed bus power distribution.",
            &[],
            &WINDOW_POWER_BOUNDS_UW,
        );
        reg.set_histogram(h, &self.window_power_uw);
        let c = reg.counter(
            "energy_anomaly_windows_total",
            "Detection windows judged.",
            &[],
        );
        reg.add(c, self.anomaly_windows as f64);
        let c = reg.counter(
            "energy_anomaly_events_total",
            "Windows flagged as energy anomalies.",
            &[],
        );
        reg.add(c, self.anomaly_events.len() as f64);
        let c = reg.counter(
            "energy_anomaly_baseline_updates_total",
            "Clean windows absorbed into the rolling baseline.",
            &[],
        );
        reg.add(c, self.baseline_updates as f64);
        for (i, joules) in self.per_master_j.iter().enumerate() {
            let master = format!("{i}");
            let labels = [("master", master.as_str())];
            let c = reg.counter(
                "power_master_energy_joules",
                "Energy attributed per bus master.",
                &labels,
            );
            reg.add(c, *joules);
        }
        let c = reg.counter(
            "serve_transactions_total",
            "Bus transactions completed.",
            &[],
        );
        reg.add(c, self.transactions as f64);
        let c = reg.counter(
            "serve_events_published_total",
            "Structured events published to the ring.",
            &[],
        );
        reg.add(c, self.events_published as f64);
        let c = reg.counter(
            "serve_events_dropped_total",
            "Structured events lost to ring wraparound.",
            &[],
        );
        reg.add(c, self.events_dropped as f64);
        let g = reg.gauge(
            "serve_events_cursor_lag",
            "Events published but not yet drained by the worker.",
            &[],
        );
        reg.set(g, self.events_lag() as f64);
        let g = reg.gauge(
            "serve_degraded",
            "1 while the most recently judged detection window was flagged.",
            &[],
        );
        reg.set(g, if self.degraded() { 1.0 } else { 0.0 });
        if let Some(obs) = &self.observatory {
            let c = reg.counter(
                "serve_observatory_windows_total",
                "Raw windows ingested by the power observatory.",
                &[],
            );
            reg.add(c, obs.windows_ingested() as f64);
            for level in 0..OBSERVATORY_LEVEL_FACTORS.len() {
                let label = format!("{level}");
                let labels = [("level", label.as_str())];
                let g = reg.gauge(
                    "serve_observatory_ring_occupancy",
                    "Occupied observatory ring buckets per level.",
                    &labels,
                );
                reg.set(g, obs.occupancy(level) as f64);
                let c = reg.counter(
                    "serve_observatory_cascade_buckets_total",
                    "Buckets opened per observatory level (downsample cascades).",
                    &labels,
                );
                reg.add(c, obs.cascades(level) as f64);
            }
        }
        let c = reg.counter(
            "serve_flightrec_bundles_total",
            "Flight-recorder bundles written.",
            &[],
        );
        reg.add(c, self.flightrec_bundles as f64);
        for (stage, hist) in [
            ("sim", &self.sim_us),
            ("publish", &self.publish_us),
            ("render", &self.render_us),
        ] {
            let labels = [("stage", stage)];
            let h = reg.histogram(
                "serve_stage_duration_microseconds",
                "Wall-clock per pipeline stage.",
                &labels,
                &STAGE_US_BOUNDS,
            );
            reg.set_histogram(h, hist);
        }
        let g = reg.gauge(
            "serve_replay_cycles_per_second",
            "Replay throughput from the startup record/replay self-calibration.",
            &[],
        );
        reg.set(g, self.replay_cycles_per_sec);
        let g = reg.gauge("serve_uptime_seconds", "Service uptime.", &[]);
        reg.set(g, self.uptime_s());
        self.registry = reg;

        let mut jsonl = ahbpower::telemetry::to_jsonl(
            &self.registry,
            &ahbpower::telemetry::ExportMeta {
                scenario: format!("serve_{}", self.mix.name()),
                cycles: self.cycles,
                seed: self.seed,
            },
        );
        for e in &self.anomaly_events {
            jsonl.push_str(&e.to_jsonl_line());
            jsonl.push('\n');
        }
        self.jsonl = jsonl;
    }

    /// The `/status` document. Hand-built like every exporter in the
    /// workspace; `serve` self-checks it with [`validate_json`].
    fn status_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"status\":\"ok\",\"shard\":{},\"scenario_mix\":\"{}\",\"uptime_s\":{},\"slices\":{},\"cycles\":{},\"seed\":{},\"total_energy_j\":{}",
            self.shard,
            self.mix.name(),
            jnum(self.uptime_s()),
            self.slices,
            self.cycles,
            self.seed,
            jnum(self.total_energy_j)
        );
        let _ = write!(
            out,
            ",\"window_power_uw\":{{\"windows\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            self.window_power_uw.count(),
            jnum(self.window_power_uw.quantile(0.5)),
            jnum(self.window_power_uw.quantile(0.95)),
            jnum(self.window_power_uw.quantile(0.99))
        );
        let _ = write!(
            out,
            ",\"anomalies\":{{\"windows\":{},\"count\":{},\"baseline_updates\":{},\"last\":",
            self.anomaly_windows,
            self.anomaly_events.len(),
            self.baseline_updates
        );
        match self.anomaly_events.last() {
            Some(e) => {
                let _ = write!(
                    out,
                    "{{\"window\":{},\"start_cycle\":{},\"deviation_pct\":{},\"z_score\":{}}}",
                    e.window,
                    e.start_cycle,
                    jnum(e.deviation_pct),
                    jnum(e.z_score)
                );
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            "}},\"transactions\":{},\"per_master_j\":[",
            self.transactions
        );
        for (i, j) in self.per_master_j.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&jnum(*j));
        }
        let _ = write!(
            out,
            "],\"events\":{{\"enabled\":{},\"published\":{},\"dropped\":{},\"logged\":{},\"cursor\":{},\"lag\":{}}}",
            self.events_enabled,
            self.events_published,
            self.events_dropped,
            self.events_log.len(),
            self.events_cursor,
            self.events_lag()
        );
        let _ = write!(
            out,
            ",\"degraded\":{},\"high_water\":{{\"slice\":{},\"window\":{}}}",
            self.degraded(),
            self.slices,
            self.anomaly_windows
        );
        out.push_str(",\"observatory\":");
        match &self.observatory {
            Some(obs) => {
                let _ = write!(out, "{{\"windows\":{},\"levels\":[", obs.windows_ingested());
                for (level, factor) in OBSERVATORY_LEVEL_FACTORS.iter().enumerate() {
                    if level > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"factor\":{factor},\"occupancy\":{},\"opened\":{}}}",
                        obs.occupancy(level),
                        obs.cascades(level)
                    );
                }
                out.push_str("]}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"flightrec\":{{\"bundles\":{}}}",
            self.flightrec_bundles
        );
        let _ = write!(
            out,
            ",\"replay\":{{\"trace_cycles\":{},\"variants\":{},\"cycles_per_sec\":{}}}",
            self.replay_trace_cycles,
            self.replay_variants,
            jnum(self.replay_cycles_per_sec)
        );
        out.push_str(",\"stages\":{");
        for (i, (stage, hist)) in [
            ("sim_us", &self.sim_us),
            ("publish_us", &self.publish_us),
            ("render_us", &self.render_us),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{stage}\":{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                hist.count(),
                jnum(hist.quantile(0.5)),
                jnum(hist.quantile(0.95)),
                jnum(hist.quantile(0.99))
            );
        }
        out.push_str("},\"instructions\":[");
        for (i, (name, count, total, mean)) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"count\":{count},\"total_j\":{},\"mean_j\":{}}}",
                jnum(*total),
                jnum(*mean)
            );
        }
        out.push_str("]}");
        out
    }
}

/// A JSON-safe float.
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// What the service did, reported by [`ServerHandle::wait`]. Numeric
/// fields aggregate every shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSummary {
    /// Slices completed (all shards).
    pub slices: u64,
    /// Cycles simulated (all shards).
    pub cycles: u64,
    /// Total energy booked, joules (all shards).
    pub total_energy_j: f64,
    /// Anomalies flagged (all shards).
    pub anomalies: u64,
    /// Worker shards that ran.
    pub shards: usize,
    /// Requests shed with 503 by the admission limit.
    pub shed: u64,
    /// Files flushed on shutdown (empty without a results dir).
    pub flushed: Vec<PathBuf>,
}

/// One shard as the HTTP plane sees it: its shared state plus its
/// event ring (the ring is read lock-free, so `/events` never touches
/// the state mutex).
struct ShardRef {
    state: Arc<Mutex<LiveState>>,
    events: Arc<EventBus>,
}

/// Pending connections handed from the accept loop to the HTTP pool.
struct ConnQueue {
    pending: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

/// Everything a pool worker needs to answer any request: all shards,
/// the control flags, and the admission/shed accounting.
struct Plane {
    shards: Vec<ShardRef>,
    stop: Arc<AtomicBool>,
    queue: ConnQueue,
    /// Connections admitted and not yet answered (queued + in service).
    active: AtomicU64,
    /// Connections shed with 503 at the admission gate.
    shed: AtomicU64,
    started: Instant,
    addr: SocketAddr,
    mix: ScenarioMix,
    seed: u64,
    http_threads: usize,
    max_connections: usize,
}

impl Plane {
    fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// A running service: the bound address plus the shard workers and the
/// HTTP pool. Drop without [`ServerHandle::wait`] leaks the threads;
/// always wait.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    plane: Arc<Plane>,
    workers: Vec<thread::JoinHandle<()>>,
    accept: thread::JoinHandle<()>,
    pool: Vec<thread::JoinHandle<()>>,
    results_dir: Option<PathBuf>,
}

impl ServerHandle {
    /// The bound socket address (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Shard 0's structured event ring (what single-shard `/events`
    /// reads); see [`ServerHandle::shard_events_bus`] for the rest.
    pub fn events_bus(&self) -> &Arc<EventBus> {
        &self.plane.shards[0].events
    }

    /// A shard's structured event ring, or `None` past the last shard.
    pub fn shard_events_bus(&self, shard: usize) -> Option<&Arc<EventBus>> {
        self.plane.shards.get(shard).map(|s| &s.events)
    }

    /// How many worker shards are running.
    pub fn shards(&self) -> usize {
        self.plane.shards.len()
    }

    /// Requests shutdown (idempotent; `/quit` does the same).
    pub fn shutdown(&self) {
        // ordering: cold control-plane flag; seqcst for simplicity.
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Blocks until every shard worker finishes (slice budget or
    /// shutdown), stops the HTTP pool, flushes final snapshots, and
    /// reports.
    ///
    /// # Errors
    ///
    /// [`ServeError::Thread`] if a thread panicked,
    /// [`ServeError::Io`] if the final flush failed.
    pub fn wait(self) -> Result<ServeSummary, ServeError> {
        self.finish(false)
    }

    /// Like [`ServerHandle::wait`], but keeps serving after the slice
    /// budgets drain: returns only once `GET /quit` (or
    /// [`ServerHandle::shutdown`] plus one more connection) stops the
    /// HTTP plane. This is what `repro serve` blocks on.
    ///
    /// # Errors
    ///
    /// Same as [`ServerHandle::wait`].
    pub fn wait_for_quit(self) -> Result<ServeSummary, ServeError> {
        self.finish(true)
    }

    fn finish(self, until_quit: bool) -> Result<ServeSummary, ServeError> {
        let ServerHandle {
            addr,
            stop,
            plane,
            workers,
            accept,
            pool,
            results_dir,
        } = self;
        fn join_all(handles: Vec<thread::JoinHandle<()>>, what: &str) -> Result<(), ServeError> {
            for h in handles {
                h.join()
                    .map_err(|_| ServeError::Thread(format!("{what} thread panicked")))?;
            }
            Ok(())
        }
        if until_quit {
            // /quit flips the stop flag and pokes the listener; the
            // accept loop breaks, then the workers notice at their next
            // slice boundary.
            accept
                .join()
                .map_err(|_| ServeError::Thread("accept thread panicked".to_string()))?;
            // ordering: cold control-plane flag; seqcst for simplicity.
            stop.store(true, Ordering::SeqCst);
            // Wake idle pool workers so they can observe the stop flag.
            plane.queue.ready.notify_all();
            join_all(pool, "http pool")?;
            join_all(workers, "worker")?;
        } else {
            join_all(workers, "worker")?;
            // The workers are done; release the accept thread, which
            // may be parked in accept(): set the flag and poke the
            // socket.
            // ordering: cold control-plane flag; seqcst for simplicity.
            stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
            accept
                .join()
                .map_err(|_| ServeError::Thread("accept thread panicked".to_string()))?;
            plane.queue.ready.notify_all();
            join_all(pool, "http pool")?;
        }

        let mut flushed = Vec::new();
        if let Some(dir) = &results_dir {
            std::fs::create_dir_all(dir)?;
            // Merged registry (same composition /metrics serves) plus
            // every shard's anomaly event lines.
            let mut jsonl = ahbpower::telemetry::to_jsonl(
                &merged_registry(&plane),
                &ExportMeta {
                    scenario: format!("serve_{}", plane.mix.name()),
                    cycles: 0,
                    seed: plane.seed,
                },
            );
            for shard in &plane.shards {
                let s = shard
                    .state
                    .lock()
                    .map_err(|_| ServeError::Thread("state mutex poisoned".to_string()))?;
                for e in &s.anomaly_events {
                    jsonl.push_str(&e.to_jsonl_line());
                    jsonl.push('\n');
                }
            }
            let jsonl_path = dir.join("serve_final.jsonl");
            write_atomic(&jsonl_path, &jsonl)?;
            flushed.push(jsonl_path);
            let status = merged_status_json(&plane);
            validate_json(&status)
                .map_err(|e| ServeError::SelfCheck(format!("final status JSON invalid: {e}")))?;
            let status_path = dir.join("serve_status.json");
            write_atomic(&status_path, &status)?;
            flushed.push(status_path);
            for (i, shard) in plane.shards.iter().enumerate() {
                let state = shard
                    .state
                    .lock()
                    .map_err(|_| ServeError::Thread("state mutex poisoned".to_string()))?;
                if state.events_enabled {
                    let events = events_to_jsonl(
                        &state.events_log,
                        &ExportMeta {
                            scenario: format!("serve_{}", state.mix.name()),
                            cycles: state.cycles,
                            seed: state.seed,
                        },
                    );
                    let events_path = if i == 0 {
                        dir.join("events.jsonl")
                    } else {
                        dir.join(format!("events-shard{i}.jsonl"))
                    };
                    write_atomic(&events_path, &events)?;
                    flushed.push(events_path);
                }
                if let Some(obs) = &state.observatory {
                    let obs_path = if i == 0 {
                        dir.join("observatory.jsonl")
                    } else {
                        dir.join(format!("observatory-shard{i}.jsonl"))
                    };
                    write_atomic(&obs_path, &obs.to_jsonl())?;
                    flushed.push(obs_path);
                    // Shutdown post-mortem: the same bundle shape an
                    // anomaly dump produces, anchored at the shard's
                    // last judged window, so every run ends with an
                    // inspectable record per shard.
                    let mut rec = FlightRecorder::for_shard(dir, i as u64);
                    let _ = rec.record(
                        "quit",
                        state.anomaly_windows,
                        state.slices,
                        None,
                        state.detector.as_ref(),
                        state.observatory.as_ref(),
                        &state.events_log,
                    );
                }
            }
        }
        let mut summary = ServeSummary {
            slices: 0,
            cycles: 0,
            total_energy_j: 0.0,
            anomalies: 0,
            shards: plane.shards.len(),
            // ordering: cold post-shutdown read of the shed tally; seqcst for simplicity.
            shed: plane.shed.load(Ordering::SeqCst),
            flushed,
        };
        for shard in &plane.shards {
            let s = shard
                .state
                .lock()
                .map_err(|_| ServeError::Thread("state mutex poisoned".to_string()))?;
            summary.slices += s.slices;
            summary.cycles += s.cycles;
            summary.total_energy_j += s.total_energy_j;
            summary.anomalies += s.anomaly_events.len() as u64;
        }
        Ok(summary)
    }
}

/// Builds a slice's bus for `label` at `seed`.
fn build_slice_bus(label: &str, slice_cycles: u64, seed: u64) -> ahbpower_ahb::AhbBus {
    if label == PaperTestbench::LABEL {
        PaperTestbench::sized_for(slice_cycles, seed)
            .build()
            .expect("paper testbench is statically valid")
    } else {
        let scale = (slice_cycles / 4_000).clamp(1, 10_000) as u32;
        let base = SocScenario::default();
        SocScenario {
            seed,
            cpu_accesses: base.cpu_accesses * scale,
            dma_blocks: base.dma_blocks * scale,
            stream_frames: base.stream_frames * scale,
            ..base
        }
        .build()
        .expect("soc scenario is statically valid")
    }
}

/// Starts the service: binds `cfg.addr`, spawns one simulation worker
/// per shard plus the HTTP accept thread and pool, and returns
/// immediately.
///
/// # Errors
///
/// [`ServeError::Io`] when the address cannot be bound.
pub fn serve(cfg: ServeConfig) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(cfg.addr.as_str())?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let n_shards = cfg.shards.max(1);
    let http_threads = cfg.http_threads.max(1);
    let max_connections = cfg.max_connections.max(1);

    let mut shards = Vec::with_capacity(n_shards);
    for shard in 0..n_shards {
        let shard_seed = cfg.seed + shard as u64 * SHARD_SEED_STRIDE;
        let events = EventBus::shared(cfg.events_capacity);
        events.set_enabled(cfg.events);
        let state = Arc::new(Mutex::new(LiveState::new(
            shard, cfg.mix, shard_seed, cfg.events,
        )));
        shards.push(ShardRef { state, events });
    }
    let plane = Arc::new(Plane {
        shards,
        stop: Arc::clone(&stop),
        queue: ConnQueue {
            pending: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        },
        active: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        started: Instant::now(),
        addr,
        mix: cfg.mix,
        seed: cfg.seed,
        http_threads,
        max_connections,
    });

    let workers = (0..n_shards)
        .map(|shard| {
            let stop = Arc::clone(&stop);
            let state = Arc::clone(&plane.shards[shard].state);
            let events = Arc::clone(&plane.shards[shard].events);
            let cfg = cfg.clone();
            thread::spawn(move || run_worker(&cfg, shard, &events, &stop, &state))
        })
        .collect();
    let pool = (0..http_threads)
        .map(|_| {
            let plane = Arc::clone(&plane);
            thread::spawn(move || run_pool_worker(&plane))
        })
        .collect();
    let accept = {
        let plane = Arc::clone(&plane);
        thread::spawn(move || run_accept(&listener, &plane))
    };
    Ok(ServerHandle {
        addr,
        stop,
        plane,
        workers,
        accept,
        pool,
        results_dir: cfg.results_dir,
    })
}

/// The simulation loop: one session for the whole service lifetime
/// (the anomaly detector's baseline survives across slices), a fresh
/// bus per slice.
/// Outcome of the worker's startup record/replay self-calibration.
struct ReplayCalibration {
    trace_cycles: u64,
    variants: u64,
    cycles_per_sec: f64,
}

/// Records a short paper-testbench trace, replays the first few
/// coefficient variants of the deterministic grid, and measures replay
/// throughput. Publishes `ReplayStart`/`ReplayDone` on `events` (the
/// trace id in `txn` is the workload seed).
fn replay_calibration(seed: u64, events: &Arc<EventBus>) -> ReplayCalibration {
    const CALIB_CYCLES: u64 = 20_000;
    const CALIB_VARIANTS: usize = 4;
    let (run, trace) = crate::run_paper_experiment_recorded(CALIB_CYCLES, seed);
    events.publish(Event {
        seq: 0,
        kind: EventKind::ReplayStart,
        slice: 0,
        txn: seed,
        window: 0,
        cycle: 0,
        tag: CALIB_VARIANTS as u32,
        a: trace.cycles() as f64,
        b: 0.0,
    });
    let models: Vec<_> = (0..CALIB_VARIANTS)
        .map(|k| crate::replay_variant_model(&run.config, k))
        .collect();
    let started = Instant::now();
    let outcomes = crate::replay_sweep(&trace, &models, 1);
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(
        outcomes[0].total_energy().to_bits(),
        run.session.total_energy().to_bits(),
        "calibration replay must reproduce the live run bit for bit"
    );
    let replayed = trace.cycles() * CALIB_VARIANTS as u64;
    let cycles_per_sec = if elapsed > 0.0 {
        replayed as f64 / elapsed
    } else {
        0.0
    };
    events.publish(Event {
        seq: 0,
        kind: EventKind::ReplayDone,
        slice: 0,
        txn: seed,
        window: 0,
        cycle: 0,
        tag: CALIB_VARIANTS as u32,
        a: cycles_per_sec,
        b: replayed as f64,
    });
    ReplayCalibration {
        trace_cycles: trace.cycles(),
        variants: CALIB_VARIANTS as u64,
        cycles_per_sec,
    }
}

/// Drains the event ring into the retained log (the ring is quiescent
/// between slices — the worker is its only writer), updating the drop
/// counter, cursor and published count. Returns the `AnomalyFlagged`
/// events drained, which trigger flight-recorder bundles.
fn drain_events(events: &EventBus, cursor: &mut u64, s: &mut LiveState) -> Vec<Event> {
    let mut flagged = Vec::new();
    loop {
        let batch = events.read_since(*cursor, 4096);
        *cursor = batch.next;
        s.events_dropped += batch.dropped;
        if batch.events.is_empty() {
            break;
        }
        flagged.extend(
            batch
                .events
                .iter()
                .filter(|e| e.kind == EventKind::AnomalyFlagged)
                .cloned(),
        );
        s.events_log.extend(batch.events);
    }
    if s.events_log.len() > EVENTS_LOG_CAP {
        let overflow = s.events_log.len() - EVENTS_LOG_CAP;
        s.events_log.drain(..overflow);
    }
    s.events_cursor = *cursor;
    s.events_published = events.published();
    flagged
}

fn run_worker(
    cfg: &ServeConfig,
    shard: usize,
    events: &Arc<EventBus>,
    stop: &AtomicBool,
    state: &Mutex<LiveState>,
) {
    // Per-shard seed rotation: shards occupy disjoint seed ranges so no
    // two shards ever simulate the same workload.
    let shard_seed = cfg.seed + shard as u64 * SHARD_SEED_STRIDE;
    // Size the model for the widest scenario in the mix; narrower buses
    // use a subset of the masters.
    let (n_masters, n_slaves) = match cfg.mix {
        ScenarioMix::Paper => (PaperTestbench::N_MASTERS, PaperTestbench::N_SLAVES),
        _ => (
            PaperTestbench::N_MASTERS.max(SocScenario::N_MASTERS),
            PaperTestbench::N_SLAVES.max(SocScenario::N_SLAVES),
        ),
    };
    let acfg = AnalysisConfig {
        n_masters,
        n_slaves,
        seed: shard_seed,
        ..AnalysisConfig::paper_testbench()
    };
    let tcfg = TelemetryConfig::enabled(&format!("serve_{}", cfg.mix.name()))
        .with_seed(shard_seed)
        .with_anomaly(cfg.anomaly.clone())
        .with_observatory(ObservatoryConfig::default())
        .with_events(Arc::clone(events));
    let mut session = PowerSession::with_telemetry(&acfg, tcfg);
    let mut flightrec = cfg
        .results_dir
        .as_deref()
        .map(|dir| FlightRecorder::for_shard(dir, shard as u64));
    let mut consumed_points = 0usize;
    let mut events_cursor = 0u64;
    let mut last_publish_us: Option<u64> = None;

    // Startup self-calibration of the record/replay pipeline (shard 0
    // only — the measurement is machine-wide, not per-shard): record
    // one short paper trace, replay a handful of coefficient variants,
    // and surface the measured throughput in /status and /metrics. The
    // pass is bracketed by ReplayStart/ReplayDone on the structured
    // ring, so it lands in /events and the flushed events.jsonl like
    // any other cross-layer activity.
    if shard == 0 {
        let calib = replay_calibration(cfg.seed, events);
        if let Ok(mut s) = state.lock() {
            s.replay_trace_cycles = calib.trace_cycles;
            s.replay_variants = calib.variants;
            s.replay_cycles_per_sec = calib.cycles_per_sec;
            s.republish();
        }
    }

    let mut slice = 0u64;
    // ordering: cold shutdown poll at slice granularity; seqcst for simplicity.
    while !stop.load(Ordering::SeqCst) {
        if let Some(max) = cfg.max_slices {
            if slice >= max {
                break;
            }
        }
        // Fault injection and the seeded panic are shard-0 hooks: the
        // tests that use them want exactly one deterministic failing
        // session while the other shards stay healthy.
        if let Some(inj) = cfg.inject {
            if shard == 0 && inj.at_slice == slice {
                session.scale_model_block(inj.block, inj.factor);
            }
        }
        // Each shard starts the mix rotation at its own phase, so a
        // mixed fleet interleaves scenarios instead of running them in
        // lock-step.
        let label = cfg.mix.slice_label(slice + shard as u64);
        let mut bus = build_slice_bus(label, cfg.slice_cycles, shard_seed + slice);
        let sim_started = Instant::now();
        // A panic inside the slice (the seeded test hook, or a real
        // defect) must not lose the run's history: catch it, dump a
        // flight-recorder bundle from the last published state, and
        // stop simulating. The HTTP plane keeps serving what we have.
        let sim = catch_unwind(AssertUnwindSafe(|| {
            assert!(
                shard != 0 || cfg.panic_at_slice != Some(slice),
                "seeded panic in slice {slice}"
            );
            session.begin_slice(slice);
            session.run(&mut bus, cfg.slice_cycles);
            session.end_slice();
        }));
        if sim.is_err() {
            if let Ok(mut s) = state.lock() {
                drain_events(events, &mut events_cursor, &mut s);
                let window = s.anomaly_windows;
                if let Some(rec) = &mut flightrec {
                    let _ = rec.record(
                        "panic",
                        window,
                        slice,
                        None,
                        s.detector.as_ref(),
                        s.observatory.as_ref(),
                        &s.events_log,
                    );
                    s.flightrec_bundles = rec.bundles() as u64;
                }
                s.republish();
            }
            break;
        }
        let sim_us = sim_started.elapsed().as_micros() as u64;
        slice += 1;

        let rows: Vec<(String, u64, f64, f64)> = session
            .ledger()
            .rows()
            .into_iter()
            .map(|r| (r.instruction.name(), r.count, r.total, r.average))
            .collect();
        let total_energy = session.total_energy();
        let per_master_j = session.per_master_energy().to_vec();
        let points = session.trace_points().to_vec();
        let transactions = session
            .telemetry()
            .and_then(|t| t.events())
            .map_or(0, |t| t.transactions());
        let (anomaly_windows, anomaly_events, baseline_updates) =
            match session.telemetry_mut().and_then(|t| t.anomaly()) {
                Some(d) => (d.windows(), d.events().to_vec(), d.baseline_updates()),
                None => (0, Vec::new(), 0),
            };
        let observatory = session.telemetry().and_then(|t| t.observatory()).cloned();
        let detector = session
            .telemetry()
            .and_then(|t| t.anomaly())
            .map(|d| d.state());

        let Ok(mut s) = state.lock() else {
            break;
        };
        s.slices = slice;
        s.cycles = slice * cfg.slice_cycles;
        s.total_energy_j = total_energy;
        s.rows = rows;
        s.per_master_j = per_master_j;
        s.transactions = transactions;
        for p in &points[consumed_points..] {
            s.window_power_uw.observe((p.total_w * 1e6).round() as u64);
        }
        consumed_points = points.len();
        s.anomaly_windows = anomaly_windows;
        s.anomaly_events = anomaly_events;
        s.baseline_updates = baseline_updates;
        s.observatory = observatory;
        s.detector = detector;
        let flagged = drain_events(events, &mut events_cursor, &mut s);
        if let Some(rec) = &mut flightrec {
            for fe in &flagged {
                let anomaly = s.anomaly_events.iter().find(|a| a.window == fe.window);
                let _ = rec.record(
                    "anomaly",
                    fe.window,
                    fe.slice,
                    anomaly,
                    s.detector.as_ref(),
                    s.observatory.as_ref(),
                    &s.events_log,
                );
            }
            s.flightrec_bundles = rec.bundles() as u64;
        }
        s.sim_us.observe(sim_us);
        if let Some(us) = last_publish_us {
            s.publish_us.observe(us);
        }
        let publish_started = Instant::now();
        s.republish();
        last_publish_us = Some(publish_started.elapsed().as_micros() as u64);
    }
    // Draining the slice budget ends simulation but NOT serving: the
    // HTTP thread keeps answering until /quit or ServerHandle::wait.
}

/// The accept loop: admission control only. Connections under the
/// limit are queued for the pool; connections over it are shed with a
/// fast `503` (after a best-effort, short-timeout read of the request
/// line, so the client reliably sees the status instead of a reset).
fn run_accept(listener: &TcpListener, plane: &Arc<Plane>) {
    for conn in listener.incoming() {
        // ordering: cold shutdown poll per connection; seqcst for simplicity.
        if plane.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        // ordering: admission gate vs pool decrements; seqcst for simplicity.
        if plane.active.load(Ordering::SeqCst) >= plane.max_connections as u64 {
            // ordering: statistics-only shed tally; seqcst for simplicity.
            plane.shed.fetch_add(1, Ordering::SeqCst);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
            let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
            let _ = read_request_path(&mut stream);
            let _ = write_response(
                &mut stream,
                503,
                "text/plain; charset=utf-8",
                "overloaded: connection limit reached, request shed\n",
            );
            continue;
        }
        // ordering: admission claim, paired with the pool's decrement; seqcst for simplicity.
        plane.active.fetch_add(1, Ordering::SeqCst);
        let mut q = plane
            .queue
            .pending
            .lock()
            .expect("connection queue poisoned");
        q.push_back(stream);
        drop(q);
        plane.queue.ready.notify_one();
    }
}

/// One HTTP pool worker: pops admitted connections and answers them
/// until the stop flag is set and the queue is drained.
fn run_pool_worker(plane: &Arc<Plane>) {
    loop {
        let stream = {
            let mut q = plane
                .queue
                .pending
                .lock()
                .expect("connection queue poisoned");
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                // ordering: cold shutdown poll while idle; seqcst for simplicity.
                if plane.stop.load(Ordering::SeqCst) {
                    break None;
                }
                q = plane
                    .queue
                    .ready
                    .wait(q)
                    .expect("connection queue poisoned");
            }
        };
        let Some(mut stream) = stream else { break };
        handle_connection(&mut stream, plane);
        // ordering: releases the admission slot claimed by the accept loop; seqcst for simplicity.
        plane.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Answers one admitted connection; `/quit` additionally stops the
/// plane and pokes the listener so the accept loop exits.
fn handle_connection(stream: &mut TcpStream, plane: &Arc<Plane>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let Some(path) = read_request_path(stream) else {
        return;
    };
    let quit = path == "/quit" || path.starts_with("/quit?");
    let (status, content_type, body) = route(&path, plane);
    let _ = write_response(stream, status, content_type, &body);
    if quit {
        // ordering: cold control-plane flag; seqcst for simplicity.
        plane.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&plane.addr, Duration::from_secs(1));
        plane.queue.ready.notify_all();
    }
}

/// Parses the request line (`GET /path HTTP/1.1`) of one connection.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = [0u8; 1024];
    let mut filled = 0usize;
    loop {
        let n = stream.read(&mut buf[filled..]).ok()?;
        if n == 0 {
            break;
        }
        filled += n;
        if buf[..filled].windows(2).any(|w| w == b"\r\n") || filled == buf.len() {
            break;
        }
    }
    let text = core::str::from_utf8(&buf[..filled]).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    Some(path.to_string())
}

/// Reads `key=value` from a query string; `None` on absent or
/// unparseable values.
fn query_u64(query: &str, key: &str) -> Option<u64> {
    query
        .split('&')
        .find_map(|pair| pair.strip_prefix(key)?.strip_prefix('='))
        .and_then(|v| v.parse().ok())
}

/// Reads a raw `key=value` string from a query string.
fn query_str<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query
        .split('&')
        .find_map(|pair| pair.strip_prefix(key)?.strip_prefix('='))
}

/// Strictly validates the `/query` range parameters. Absent keys get
/// the documented defaults; present-but-malformed values, `step=0` and
/// inverted ranges are errors (clean 400s, never silent fallbacks).
fn parse_range(query: &str) -> Result<(u64, u64, u64), String> {
    let parse = |key: &str, default: u64| -> Result<u64, String> {
        match query_str(query, key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad {key} '{v}': not a non-negative integer")),
        }
    };
    let from = parse("from", 0)?;
    let to = parse("to", u64::MAX)?;
    let step = parse("step", 1)?;
    if step == 0 {
        return Err("step must be >= 1".to_string());
    }
    if from > to {
        return Err(format!("empty range: from {from} > to {to}"));
    }
    Ok((from, to, step))
}

/// Parses the optional `shard=` drill-down parameter. `None` means the
/// merged plane; out-of-range or malformed values are errors.
fn parse_shard(query: &str, shards: usize) -> Result<Option<usize>, String> {
    match query_str(query, "shard") {
        None => Ok(None),
        Some(v) => {
            let i: usize = v
                .parse()
                .map_err(|_| format!("bad shard '{v}': not an index"))?;
            if i >= shards {
                return Err(format!("shard {i} out of range ({shards} shards)"));
            }
            Ok(Some(i))
        }
    }
}

fn bad_request(msg: String) -> (u16, &'static str, String) {
    (400, "text/plain; charset=utf-8", format!("{msg}\n"))
}

/// The `GET /query?series=S[&from=A][&to=B][&step=N][&shard=K]`
/// endpoint: a range query over retained observatory history.
/// `from`/`to` are raw window indexes (inclusive, defaulting to
/// everything) and `step` picks the resolution: the coarsest level
/// whose factor is ≤ `step` answers, so `step=1` reads raw buckets,
/// `step=10` the 10× ring and `step=100` the 100× ring. Without
/// `shard=`, the query fans out to every shard observatory and merges
/// buckets (sums add, minima/maxima compose), so the merged energy
/// total is exactly the sum of the per-shard totals.
fn query_response(query: &str, plane: &Plane) -> (u16, &'static str, String) {
    let Some(series) = query_str(query, "series") else {
        return bad_request("missing series parameter".to_string());
    };
    let (from, to, step) = match parse_range(query) {
        Ok(r) => r,
        Err(msg) => return bad_request(msg),
    };
    let shard = match parse_shard(query, plane.shards.len()) {
        Ok(s) => s,
        Err(msg) => return bad_request(msg),
    };
    let placeholder = || {
        (
            200,
            "application/json",
            format!(
                "{{\"series\":\"{series}\",\"level\":0,\"factor\":1,\"from\":0,\"to\":0,\"step\":1,\"points\":[]}}"
            ),
        )
    };
    let selected: Vec<&ShardRef> = match shard {
        Some(i) => vec![&plane.shards[i]],
        None => plane.shards.iter().collect(),
    };
    let mut results: Vec<QueryResult> = Vec::new();
    let mut have_observatory = false;
    for sh in selected {
        let Ok(s) = sh.state.lock() else {
            return (
                500,
                "text/plain; charset=utf-8",
                "state poisoned\n".to_string(),
            );
        };
        if let Some(obs) = &s.observatory {
            have_observatory = true;
            if let Some(q) = obs.query(series, from, to, step) {
                results.push(q);
            }
        }
    }
    if !have_observatory {
        return placeholder();
    }
    match merge_query_results(results) {
        Some(merged) => (200, "application/json", query_result_json(&merged)),
        None => bad_request(format!("unknown series '{series}'")),
    }
}

/// Formats a merged-plane cursor: one absolute per-shard sequence,
/// dot-joined (`"12.34"` = shard 0 at 12, shard 1 at 34).
pub fn format_multi_cursor(cursors: &[u64]) -> String {
    let mut out = String::with_capacity(4 * cursors.len());
    for (i, c) in cursors.iter().enumerate() {
        if i > 0 {
            out.push('.');
        }
        let _ = write!(out, "{c}");
    }
    out
}

/// Parses a merged-plane cursor back into per-shard sequences. Short
/// cursors zero-pad (so `"0"` — or an absent parameter — starts every
/// shard from its oldest retained event); overlong or non-numeric
/// cursors are `None`.
pub fn parse_multi_cursor(s: &str, shards: usize) -> Option<Vec<u64>> {
    let mut cursors = vec![0u64; shards];
    if s.is_empty() {
        return Some(cursors);
    }
    let parts: Vec<&str> = s.split('.').collect();
    if parts.len() > shards {
        return None;
    }
    for (i, p) in parts.iter().enumerate() {
        cursors[i] = p.parse().ok()?;
    }
    Some(cursors)
}

/// Reads every shard ring once from its cursor: the merged `/events`
/// read. Each [`EventBatch`] keeps its shard's absolute sequence space
/// (`next` is monotone per shard; `dropped` counts that shard's losses
/// in `[since, next)`), which is what the cursor-space property tests
/// pin down.
pub fn merged_read_since(buses: &[Arc<EventBus>], since: &[u64], max: usize) -> Vec<EventBatch> {
    buses
        .iter()
        .zip(since)
        .map(|(bus, &s)| bus.read_since(s, max))
        .collect()
}

/// The single-shard `/events` body — numeric cursors, exactly the
/// pre-sharding wire format (what the dashboard and curl examples use
/// against a 1-shard serve or with `shard=`).
fn events_json(query: &str, events: &EventBus, stop: &AtomicBool) -> String {
    let since = query_u64(query, "since").unwrap_or(0);
    let max = query_u64(query, "max").unwrap_or(1_000).min(4_096) as usize;
    let timeout_ms = query_u64(query, "timeout_ms")
        .unwrap_or(0)
        .min(EVENTS_POLL_CAP_MS);
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    let mut batch = events.read_since(since, max);
    // ordering: cold shutdown poll in the long-poll loop; seqcst for simplicity.
    while batch.events.is_empty() && Instant::now() < deadline && !stop.load(Ordering::SeqCst) {
        thread::sleep(Duration::from_millis(25));
        batch = events.read_since(since, max);
    }
    let mut out = String::with_capacity(64 + 96 * batch.events.len());
    let _ = write!(
        out,
        "{{\"since\":{since},\"next\":{},\"dropped\":{},\"published\":{},\"enabled\":{},\"events\":[",
        batch.next,
        batch.dropped,
        batch.published,
        events.is_enabled()
    );
    for (i, e) in batch.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e.to_json_obj());
    }
    out.push_str("]}");
    out
}

/// The merged `/events` body: string cursors over the aggregated
/// per-shard sequence space, per-shard `dropped`/`published` arrays,
/// and every event tagged with its shard.
fn merged_events_json(query: &str, plane: &Plane) -> (u16, &'static str, String) {
    let n = plane.shards.len();
    let since = match query_str(query, "since") {
        None => vec![0u64; n],
        Some(v) => match parse_multi_cursor(v, n) {
            Some(c) => c,
            None => return bad_request(format!("bad since '{v}': want up to {n} dot-joined u64s")),
        },
    };
    let max = query_u64(query, "max").unwrap_or(1_000).min(4_096) as usize;
    let timeout_ms = query_u64(query, "timeout_ms")
        .unwrap_or(0)
        .min(EVENTS_POLL_CAP_MS);
    let buses: Vec<Arc<EventBus>> = plane.shards.iter().map(|s| Arc::clone(&s.events)).collect();
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    let mut batches = merged_read_since(&buses, &since, max);
    while batches.iter().all(|b| b.events.is_empty())
        && Instant::now() < deadline
        // ordering: cold shutdown poll in the long-poll loop; seqcst for simplicity.
        && !plane.stop.load(Ordering::SeqCst)
    {
        thread::sleep(Duration::from_millis(25));
        batches = merged_read_since(&buses, &since, max);
    }
    let total: usize = batches.iter().map(|b| b.events.len()).sum();
    let next: Vec<u64> = batches.iter().map(|b| b.next).collect();
    let mut out = String::with_capacity(128 + 104 * total);
    let _ = write!(
        out,
        "{{\"since\":\"{}\",\"next\":\"{}\",\"shards\":{n},\"dropped\":[",
        format_multi_cursor(&since),
        format_multi_cursor(&next)
    );
    for (i, b) in batches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", b.dropped);
    }
    out.push_str("],\"published\":[");
    for (i, b) in batches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", b.published);
    }
    let enabled = plane.shards.iter().any(|s| s.events.is_enabled());
    let _ = write!(out, "],\"enabled\":{enabled},\"events\":[");
    let mut first = true;
    for (shard, b) in batches.iter().enumerate() {
        for e in &b.events {
            if !first {
                out.push(',');
            }
            first = false;
            // Splice the shard tag into the event object.
            let obj = e.to_json_obj();
            let _ = write!(out, "{{\"shard\":{shard},{}", &obj[1..]);
        }
    }
    out.push_str("]}");
    (200, "application/json", out)
}

fn events_response(query: &str, plane: &Plane) -> (u16, &'static str, String) {
    match parse_shard(query, plane.shards.len()) {
        Err(msg) => bad_request(msg),
        Ok(Some(i)) => (
            200,
            "application/json",
            events_json(query, &plane.shards[i].events, &plane.stop),
        ),
        // One shard keeps the numeric pre-sharding wire format.
        Ok(None) if plane.shards.len() == 1 => (
            200,
            "application/json",
            events_json(query, &plane.shards[0].events, &plane.stop),
        ),
        Ok(None) => merged_events_json(query, plane),
    }
}

/// Builds the merged `/metrics` registry: per-shard registries sum
/// (counters add, histograms bucket-merge), non-extensive gauges are
/// overwritten with their plane-level composition, the serving plane's
/// own admission metrics are added, and — for a multi-shard plane —
/// every shard's registry rides along under a `shard=` label.
fn merged_registry(plane: &Plane) -> MetricsRegistry {
    let snaps: Vec<(MetricsRegistry, bool)> = plane
        .shards
        .iter()
        .filter_map(|sh| {
            sh.state
                .lock()
                .ok()
                .map(|s| (s.registry.clone(), s.degraded()))
        })
        .collect();
    let mut agg = MetricsRegistry::new();
    for (reg, _) in &snaps {
        agg.merge_sum(reg);
    }
    // Summing uptime/degraded/replay-throughput across shards is
    // meaningless; recompose them at plane level.
    let g = agg.gauge("serve_uptime_seconds", "Service uptime.", &[]);
    agg.set(g, plane.uptime_s());
    let degraded = snaps.iter().any(|(_, d)| *d);
    let g = agg.gauge(
        "serve_degraded",
        "1 while any shard's most recently judged detection window was flagged.",
        &[],
    );
    agg.set(g, if degraded { 1.0 } else { 0.0 });
    let replay = snaps
        .iter()
        .filter_map(|(r, _)| r.gauge_value("serve_replay_cycles_per_second", &[]))
        .fold(0.0f64, f64::max);
    let g = agg.gauge(
        "serve_replay_cycles_per_second",
        "Replay throughput from the startup record/replay self-calibration.",
        &[],
    );
    agg.set(g, replay);
    let g = agg.gauge("serve_shards", "Worker shards running.", &[]);
    agg.set(g, plane.shards.len() as f64);
    let g = agg.gauge("serve_http_threads", "HTTP pool size.", &[]);
    agg.set(g, plane.http_threads as f64);
    let g = agg.gauge(
        "serve_http_max_connections",
        "Admission limit: connections admitted beyond this are shed.",
        &[],
    );
    agg.set(g, plane.max_connections as f64);
    let g = agg.gauge(
        "serve_http_active_connections",
        "Connections admitted and not yet answered.",
        &[],
    );
    // ordering: monitoring reads of hot admission counters; seqcst for simplicity.
    agg.set(g, plane.active.load(Ordering::SeqCst) as f64);
    let c = agg.counter(
        "serve_http_shed_total",
        "Connections shed with 503 by the admission limit.",
        &[],
    );
    // ordering: monitoring read of the shed tally; seqcst for simplicity.
    agg.add(c, plane.shed.load(Ordering::SeqCst) as f64);
    if snaps.len() > 1 {
        for (i, (reg, _)) in snaps.iter().enumerate() {
            agg.merge_labeled(reg, "shard", &i.to_string());
        }
    }
    agg
}

fn metrics_response(query: &str, plane: &Plane) -> (u16, &'static str, String) {
    const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
    match parse_shard(query, plane.shards.len()) {
        Err(msg) => bad_request(msg),
        Ok(Some(i)) => match plane.shards[i].state.lock() {
            Ok(mut s) => {
                let uptime = s.uptime_s();
                let g = s
                    .registry
                    .gauge("serve_uptime_seconds", "Service uptime.", &[]);
                s.registry.set(g, uptime);
                (200, PROM, to_prometheus(&s.registry))
            }
            Err(_) => (
                500,
                "text/plain; charset=utf-8",
                "state poisoned\n".to_string(),
            ),
        },
        Ok(None) => (200, PROM, to_prometheus(&merged_registry(plane))),
    }
}

/// The merged `/status` document: the same shape a single shard
/// publishes (every pre-sharding key keeps its meaning, now
/// aggregated) plus `shards`, an `http` admission block and a
/// `shard_detail` array for per-shard drill-down without extra
/// requests.
fn merged_status_json(plane: &Plane) -> String {
    let n = plane.shards.len();
    let mut slices = 0u64;
    let mut cycles = 0u64;
    let mut total_energy = 0.0f64;
    let mut transactions = 0u64;
    let mut window_power = CycleHistogram::new(&WINDOW_POWER_BOUNDS_UW);
    let mut anomaly_windows = 0u64;
    let mut anomaly_count = 0u64;
    let mut baseline_updates = 0u64;
    let mut last_anomaly: Option<AnomalyEvent> = None;
    let mut per_master: Vec<f64> = Vec::new();
    let mut ev_enabled = false;
    let mut ev_published = 0u64;
    let mut ev_dropped = 0u64;
    let mut ev_logged = 0u64;
    let mut ev_cursor = 0u64;
    let mut ev_lag = 0u64;
    let mut degraded = false;
    let mut hw_slice = 0u64;
    let mut hw_window = 0u64;
    let mut obs_any = false;
    let mut obs_windows = 0u64;
    let mut obs_occupancy = [0u64; OBSERVATORY_LEVEL_FACTORS.len()];
    let mut obs_opened = [0u64; OBSERVATORY_LEVEL_FACTORS.len()];
    let mut flightrec = 0u64;
    let mut replay = (0u64, 0u64, 0.0f64);
    let mut sim_us = CycleHistogram::new(&STAGE_US_BOUNDS);
    let mut publish_us = CycleHistogram::new(&STAGE_US_BOUNDS);
    let mut render_us = CycleHistogram::new(&STAGE_US_BOUNDS);
    let mut rows: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    let mut detail = String::new();

    for (i, sh) in plane.shards.iter().enumerate() {
        let Ok(s) = sh.state.lock() else { continue };
        slices += s.slices;
        cycles += s.cycles;
        total_energy += s.total_energy_j;
        transactions += s.transactions;
        window_power.merge(&s.window_power_uw);
        anomaly_windows += s.anomaly_windows;
        anomaly_count += s.anomaly_events.len() as u64;
        baseline_updates += s.baseline_updates;
        if let Some(e) = s.anomaly_events.last() {
            if last_anomaly
                .as_ref()
                .is_none_or(|prev| e.window >= prev.window)
            {
                last_anomaly = Some(e.clone());
            }
        }
        if per_master.len() < s.per_master_j.len() {
            per_master.resize(s.per_master_j.len(), 0.0);
        }
        for (m, j) in s.per_master_j.iter().enumerate() {
            per_master[m] += j;
        }
        ev_enabled |= s.events_enabled;
        ev_published += s.events_published;
        ev_dropped += s.events_dropped;
        ev_logged += s.events_log.len() as u64;
        ev_cursor += s.events_cursor;
        ev_lag += s.events_lag();
        degraded |= s.degraded();
        hw_slice = hw_slice.max(s.slices);
        hw_window = hw_window.max(s.anomaly_windows);
        if let Some(obs) = &s.observatory {
            obs_any = true;
            obs_windows += obs.windows_ingested();
            for level in 0..OBSERVATORY_LEVEL_FACTORS.len() {
                obs_occupancy[level] += obs.occupancy(level) as u64;
                obs_opened[level] += obs.cascades(level);
            }
        }
        flightrec += s.flightrec_bundles;
        if s.replay_trace_cycles > replay.0 {
            replay = (
                s.replay_trace_cycles,
                s.replay_variants,
                s.replay_cycles_per_sec,
            );
        }
        sim_us.merge(&s.sim_us);
        publish_us.merge(&s.publish_us);
        render_us.merge(&s.render_us);
        for (name, count, total, _) in &s.rows {
            let e = rows.entry(name.clone()).or_insert((0, 0.0));
            e.0 += count;
            e.1 += total;
        }
        if i > 0 {
            detail.push(',');
        }
        let _ = write!(
            detail,
            "{{\"shard\":{i},\"scenario_mix\":\"{}\",\"seed\":{},\"slices\":{},\"cycles\":{},\"total_energy_j\":{},\"transactions\":{},\"anomalies\":{},\"degraded\":{},\"events\":{{\"published\":{},\"dropped\":{},\"lag\":{}}},\"observatory_windows\":{},\"flightrec_bundles\":{}}}",
            s.mix.name(),
            s.seed,
            s.slices,
            s.cycles,
            jnum(s.total_energy_j),
            s.transactions,
            s.anomaly_events.len(),
            s.degraded(),
            s.events_published,
            s.events_dropped,
            s.events_lag(),
            s.observatory.as_ref().map_or(0, |o| o.windows_ingested()),
            s.flightrec_bundles
        );
    }

    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"status\":\"ok\",\"shards\":{n},\"scenario_mix\":\"{}\",\"uptime_s\":{},\"slices\":{},\"cycles\":{},\"seed\":{},\"total_energy_j\":{}",
        plane.mix.name(),
        jnum(plane.uptime_s()),
        slices,
        cycles,
        plane.seed,
        jnum(total_energy)
    );
    let _ = write!(
        out,
        ",\"window_power_uw\":{{\"windows\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
        window_power.count(),
        jnum(window_power.quantile(0.5)),
        jnum(window_power.quantile(0.95)),
        jnum(window_power.quantile(0.99))
    );
    let _ = write!(
        out,
        ",\"anomalies\":{{\"windows\":{anomaly_windows},\"count\":{anomaly_count},\"baseline_updates\":{baseline_updates},\"last\":"
    );
    match &last_anomaly {
        Some(e) => {
            let _ = write!(
                out,
                "{{\"window\":{},\"start_cycle\":{},\"deviation_pct\":{},\"z_score\":{}}}",
                e.window,
                e.start_cycle,
                jnum(e.deviation_pct),
                jnum(e.z_score)
            );
        }
        None => out.push_str("null"),
    }
    let _ = write!(out, "}},\"transactions\":{transactions},\"per_master_j\":[");
    for (i, j) in per_master.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&jnum(*j));
    }
    let _ = write!(
        out,
        "],\"events\":{{\"enabled\":{ev_enabled},\"published\":{ev_published},\"dropped\":{ev_dropped},\"logged\":{ev_logged},\"cursor\":{ev_cursor},\"lag\":{ev_lag}}}"
    );
    let _ = write!(
        out,
        ",\"degraded\":{degraded},\"high_water\":{{\"slice\":{hw_slice},\"window\":{hw_window}}}"
    );
    out.push_str(",\"observatory\":");
    if obs_any {
        let _ = write!(out, "{{\"windows\":{obs_windows},\"levels\":[");
        for (level, factor) in OBSERVATORY_LEVEL_FACTORS.iter().enumerate() {
            if level > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"factor\":{factor},\"occupancy\":{},\"opened\":{}}}",
                obs_occupancy[level], obs_opened[level]
            );
        }
        out.push_str("]}");
    } else {
        out.push_str("null");
    }
    let _ = write!(out, ",\"flightrec\":{{\"bundles\":{flightrec}}}");
    let _ = write!(
        out,
        ",\"replay\":{{\"trace_cycles\":{},\"variants\":{},\"cycles_per_sec\":{}}}",
        replay.0,
        replay.1,
        jnum(replay.2)
    );
    let _ = write!(
        out,
        ",\"http\":{{\"threads\":{},\"max_connections\":{},\"active\":{},\"shed\":{}}}",
        plane.http_threads,
        plane.max_connections,
        // ordering: monitoring reads of hot admission counters; seqcst for simplicity.
        plane.active.load(Ordering::SeqCst),
        // ordering: monitoring read of the shed tally; seqcst for simplicity.
        plane.shed.load(Ordering::SeqCst)
    );
    out.push_str(",\"stages\":{");
    for (i, (stage, hist)) in [
        ("sim_us", &sim_us),
        ("publish_us", &publish_us),
        ("render_us", &render_us),
    ]
    .into_iter()
    .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{stage}\":{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            hist.count(),
            jnum(hist.quantile(0.5)),
            jnum(hist.quantile(0.95)),
            jnum(hist.quantile(0.99))
        );
    }
    out.push_str("},\"instructions\":[");
    for (i, (name, (count, total))) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mean = if *count > 0 {
            total / *count as f64
        } else {
            0.0
        };
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"count\":{count},\"total_j\":{},\"mean_j\":{}}}",
            jnum(*total),
            jnum(mean)
        );
    }
    let _ = write!(out, "],\"shard_detail\":[{detail}]}}");
    out
}

fn status_response(query: &str, plane: &Plane) -> (u16, &'static str, String) {
    match parse_shard(query, plane.shards.len()) {
        Err(msg) => bad_request(msg),
        Ok(shard) => {
            let started = Instant::now();
            let body = match shard {
                Some(i) => match plane.shards[i].state.lock() {
                    Ok(s) => s.status_json(),
                    Err(_) => {
                        return (
                            500,
                            "text/plain; charset=utf-8",
                            "state poisoned\n".to_string(),
                        )
                    }
                },
                None => merged_status_json(plane),
            };
            // Self-measured with one-render lag, booked to the shard
            // that answered (shard 0 for the merged view): this
            // observation shows up in the next render's stages block.
            let book = shard.unwrap_or(0);
            if let Ok(mut s) = plane.shards[book].state.lock() {
                s.render_us.observe(started.elapsed().as_micros() as u64);
            }
            (200, "application/json", body)
        }
    }
}

fn healthz_response(query: &str, plane: &Plane) -> (u16, &'static str, String) {
    match parse_shard(query, plane.shards.len()) {
        Err(msg) => bad_request(msg),
        Ok(Some(i)) => match plane.shards[i].state.lock() {
            Ok(s) => {
                let body = format!(
                    "{{\"status\":\"ok\",\"uptime_s\":{},\"degraded\":{},\"high_water\":{{\"slice\":{},\"window\":{}}}}}",
                    jnum(s.uptime_s()),
                    s.degraded(),
                    s.slices,
                    s.anomaly_windows
                );
                (200, "application/json", body)
            }
            Err(_) => (
                500,
                "text/plain; charset=utf-8",
                "state poisoned\n".to_string(),
            ),
        },
        Ok(None) => {
            let mut degraded = false;
            let mut hw_slice = 0u64;
            let mut hw_window = 0u64;
            for sh in &plane.shards {
                if let Ok(s) = sh.state.lock() {
                    degraded |= s.degraded();
                    hw_slice = hw_slice.max(s.slices);
                    hw_window = hw_window.max(s.anomaly_windows);
                }
            }
            let body = format!(
                "{{\"status\":\"ok\",\"uptime_s\":{},\"degraded\":{degraded},\"shards\":{},\"shed\":{},\"high_water\":{{\"slice\":{hw_slice},\"window\":{hw_window}}}}}",
                jnum(plane.uptime_s()),
                plane.shards.len(),
                // ordering: monitoring read of the shed tally; seqcst for simplicity.
                plane.shed.load(Ordering::SeqCst)
            );
            (200, "application/json", body)
        }
    }
}

/// Maps a path (plus optional query string) to
/// `(status, content-type, body)`.
fn route(path: &str, plane: &Plane) -> (u16, &'static str, String) {
    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path, ""),
    };
    match path {
        "/" | "/dashboard" => (200, "text/html; charset=utf-8", DASHBOARD_HTML.to_string()),
        "/events" => events_response(query, plane),
        "/healthz" => healthz_response(query, plane),
        "/query" => query_response(query, plane),
        "/quit" => (
            200,
            "text/plain; charset=utf-8",
            "shutting down\n".to_string(),
        ),
        "/metrics" => metrics_response(query, plane),
        "/status" => status_response(query, plane),
        _ => (404, "text/plain; charset=utf-8", "not found\n".to_string()),
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A fetched HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Response body (after the blank line).
    pub body: String,
}

/// Minimal std-only HTTP GET — the fetch helper `check.sh` and the
/// integration tests use instead of curl.
///
/// # Errors
///
/// [`ServeError::Io`] on connect/read trouble,
/// [`ServeError::SelfCheck`] on an unparseable response.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> Result<HttpResponse, ServeError> {
    let sock_addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| ServeError::SelfCheck(format!("bad address '{addr}': {e}")))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| ServeError::SelfCheck(format!("unparseable response: {raw:.80}")))?;
    let body = match raw.split_once("\r\n\r\n") {
        Some((_, b)) => b.to_string(),
        None => String::new(),
    };
    Ok(HttpResponse { status, body })
}
