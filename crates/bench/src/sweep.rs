//! Parallel sweep engine: shard independent `(seed, style)` runs across OS
//! threads with a deterministic ordered merge.
//!
//! Every figure and table in the paper is a sweep — over seeds, arbitration
//! policies, probe styles or power-management thresholds — and each sweep
//! point is an independent, seed-deterministic simulation. [`SweepRunner`]
//! exploits exactly that: worker threads pull point indices from a shared
//! atomic counter, results land in their point's slot, and the merged
//! output is returned in point order. Because each point's computation is
//! deterministic and isolated, the merged results (and anything rendered
//! from them) are **byte-identical** for any `--jobs` value, including 1.
//!
//! No dependencies beyond `std`: threads are scoped
//! ([`std::thread::scope`]), so borrowed sweep points need no `'static`
//! bounds or reference counting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use ahbpower::telemetry::{Event, EventBus, EventKind};
use ahbpower::{AhbPowerModel, AnalysisConfig, FsmProbe, GlobalProbe, InlineProbe, PowerProbe};

use crate::build_paper_bus;

/// Shards independent work items across OS threads.
///
/// # Examples
///
/// ```
/// use ahbpower_bench::SweepRunner;
///
/// let squares = SweepRunner::new(4).run(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]); // order preserved
/// ```
#[derive(Debug, Clone)]
pub struct SweepRunner {
    jobs: usize,
    events: Option<Arc<EventBus>>,
}

impl SweepRunner {
    /// Creates a runner using `jobs` worker threads (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        SweepRunner {
            jobs: jobs.max(1),
            events: None,
        }
    }

    /// Creates a runner sized to the machine's available parallelism.
    pub fn max_parallel() -> Self {
        SweepRunner::new(available_jobs())
    }

    /// Attaches a structured event ring: each completed point publishes
    /// a [`EventKind::SweepPointDone`] event from whatever worker thread
    /// ran it (the ring's multi-producer path).
    pub fn with_events(mut self, bus: Arc<EventBus>) -> Self {
        self.events = Some(bus);
        self
    }

    /// Worker threads this runner uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Publishes one point's completion to the attached ring, if any.
    fn point_done(&self, index: usize, total: usize) {
        if let Some(bus) = &self.events {
            bus.publish(Event {
                seq: 0,
                kind: EventKind::SweepPointDone,
                slice: 0,
                txn: index as u64,
                window: 0,
                cycle: 0,
                tag: index.min(u32::MAX as usize) as u32,
                a: (index + 1) as f64,
                b: total as f64,
            });
        }
    }

    /// Runs `f(index, &point)` for every point and returns the results in
    /// point order, regardless of which thread computed what or when.
    ///
    /// With one job (or one point) the work runs on the calling thread; no
    /// threads are spawned. Panics in `f` propagate to the caller.
    pub fn run<P, T, F>(&self, points: &[P], f: F) -> Vec<T>
    where
        P: Sync,
        T: Send,
        F: Fn(usize, &P) -> T + Sync,
    {
        let n = points.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return points
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let out = f(i, p);
                    self.point_done(i, n);
                    out
                })
                .collect();
        }
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let slots = Mutex::new(slots);
        let next = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    // Results travel through the mutexed slots, so no
                    // data is published via this counter.
                    // relaxed: the RMW itself claims each index exactly once.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = f(i, &points[i]);
                    self.point_done(i, n);
                    slots.lock().expect("sweep slot store poisoned")[i] = Some(out);
                });
            }
        });
        slots
            .into_inner()
            .expect("sweep slot store poisoned")
            .into_iter()
            .map(|o| o.expect("every sweep slot filled"))
            .collect()
    }
}

/// The machine's available parallelism (1 when it cannot be determined).
pub fn available_jobs() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// A probe style a sweep point runs under (experiment E8's axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeStyle {
    /// Exact per-cycle probe (wraps the power FSM).
    Inline,
    /// Calibrated per-instruction means.
    Fsm,
    /// Aggregate statistics, exact for linear models.
    Global,
}

impl ProbeStyle {
    /// All styles, in sweep order.
    pub const ALL: [ProbeStyle; 3] = [ProbeStyle::Inline, ProbeStyle::Fsm, ProbeStyle::Global];

    /// The style's spelling (matches [`PowerProbe::style`]).
    pub fn name(self) -> &'static str {
        match self {
            ProbeStyle::Inline => "inline",
            ProbeStyle::Fsm => "fsm",
            ProbeStyle::Global => "global",
        }
    }
}

/// One point of a paper-testbench sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// Cycles to simulate.
    pub cycles: u64,
    /// Workload seed.
    pub seed: u64,
    /// Probe style to run under.
    pub style: ProbeStyle,
}

/// The result of one sweep point, with everything the report needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepOutcome {
    /// The point that produced this outcome.
    pub point: SweepPoint,
    /// Total energy booked by the probe, joules.
    pub total_energy: f64,
    /// Completed OKAY transfers.
    pub transfers_ok: u64,
    /// Bus ownership changes.
    pub handovers: u64,
    /// Instruction-ledger rows (inline style only; 0 otherwise).
    pub ledger_rows: usize,
}

/// The standard sweep grid: `n_seeds` seeds (base, base+1, …) × all three
/// probe styles, each at `cycles` cycles.
pub fn sweep_grid(cycles: u64, base_seed: u64, n_seeds: usize) -> Vec<SweepPoint> {
    let mut points = Vec::with_capacity(n_seeds * ProbeStyle::ALL.len());
    for k in 0..n_seeds {
        for style in ProbeStyle::ALL {
            points.push(SweepPoint {
                cycles,
                seed: base_seed + k as u64,
                style,
            });
        }
    }
    points
}

/// Runs one sweep point: a fresh paper-testbench bus under the point's
/// probe style. Fully deterministic in the point, so replaying the same
/// point always produces bit-identical energies.
pub fn run_sweep_point(p: &SweepPoint) -> SweepOutcome {
    let config = AnalysisConfig::paper_testbench();
    let model = AhbPowerModel::new(config.n_masters, config.n_slaves, &config.tech());
    let mut bus = build_paper_bus(p.cycles, p.seed);
    let (total_energy, ledger_rows) = match p.style {
        ProbeStyle::Inline => {
            let mut probe = InlineProbe::new(model);
            for _ in 0..p.cycles {
                probe.observe(bus.step());
            }
            (probe.total_energy(), probe.fsm().ledger().rows().len())
        }
        ProbeStyle::Fsm => {
            // Same calibration protocol as `compare_probe_styles`:
            // half-length run on a decorrelated seed.
            let mut calib = InlineProbe::new(model);
            let mut calib_bus = build_paper_bus(p.cycles / 2, p.seed ^ 0xCA11B);
            for _ in 0..p.cycles / 2 {
                calib.observe(calib_bus.step());
            }
            let mut probe = FsmProbe::from_calibration(calib.fsm().ledger());
            for _ in 0..p.cycles {
                probe.observe(bus.step());
            }
            (probe.total_energy(), 0)
        }
        ProbeStyle::Global => {
            let mut probe = GlobalProbe::new(model);
            for _ in 0..p.cycles {
                probe.observe(bus.step());
            }
            (probe.total_energy(), 0)
        }
    };
    SweepOutcome {
        point: *p,
        total_energy,
        transfers_ok: bus.stats().transfers_ok,
        handovers: bus.stats().handovers,
        ledger_rows,
    }
}

/// Runs every point of a sweep on `jobs` threads; outcomes come back in
/// point order and are byte-identical to a `jobs = 1` run.
pub fn run_sweep(points: &[SweepPoint], jobs: usize) -> Vec<SweepOutcome> {
    SweepRunner::new(jobs).run(points, |_, p| run_sweep_point(p))
}

/// Renders sweep outcomes as CSV. The energy column carries both a decimal
/// rendering and the exact f64 bit pattern, so files diff bit-for-bit.
pub fn sweep_csv(outcomes: &[SweepOutcome]) -> String {
    let mut out =
        String::from("seed,style,cycles,total_energy_j,energy_bits,transfers_ok,handovers\n");
    for o in outcomes {
        out.push_str(&format!(
            "{},{},{},{:.9e},{:#018x},{},{}\n",
            o.point.seed,
            o.point.style.name(),
            o.point.cycles,
            o.total_energy,
            o.total_energy.to_bits(),
            o.transfers_ok,
            o.handovers,
        ));
    }
    out
}

/// Renders a human-readable sweep report (also deterministic).
pub fn sweep_report(outcomes: &[SweepOutcome]) -> String {
    let mut out = String::new();
    out.push_str("seed  style   total energy [J]  transfers  handovers\n");
    for o in outcomes {
        out.push_str(&format!(
            "{:<5} {:<7} {:>16.9e} {:>10} {:>10}\n",
            o.point.seed,
            o.point.style.name(),
            o.total_energy,
            o.transfers_ok,
            o.handovers,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_preserves_order_under_contention() {
        let points: Vec<usize> = (0..64).collect();
        let serial = SweepRunner::new(1).run(&points, |i, &p| i * 1000 + p);
        let parallel = SweepRunner::new(8).run(&points, |i, &p| i * 1000 + p);
        assert_eq!(serial, parallel);
        assert_eq!(serial[5], 5005);
    }

    #[test]
    fn runner_clamps_jobs_and_handles_empty() {
        assert_eq!(SweepRunner::new(0).jobs(), 1);
        assert!(SweepRunner::max_parallel().jobs() >= 1);
        let empty: Vec<u32> = SweepRunner::new(4).run(&[] as &[u32], |_, &x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn grid_covers_seeds_times_styles() {
        let g = sweep_grid(100, 7, 2);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0].style, ProbeStyle::Inline);
        assert_eq!(g[3].seed, 8);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let points = sweep_grid(2_000, 2003, 2);
        let serial = run_sweep(&points, 1);
        let parallel = run_sweep(&points, 4);
        assert_eq!(serial, parallel);
        assert_eq!(sweep_csv(&serial), sweep_csv(&parallel));
        assert_eq!(sweep_report(&serial), sweep_report(&parallel));
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.total_energy.to_bits(), p.total_energy.to_bits());
        }
    }

    #[test]
    fn runner_publishes_one_event_per_point_from_worker_threads() {
        let bus = EventBus::shared(256);
        let points: Vec<usize> = (0..40).collect();
        let runner = SweepRunner::new(8).with_events(Arc::clone(&bus));
        let out = runner.run(&points, |_, &p| p * 2);
        assert_eq!(out.len(), 40);
        let batch = bus.read_since(0, 256);
        assert_eq!(batch.events.len(), 40);
        let mut indices: Vec<u64> = batch
            .events
            .iter()
            .map(|e| {
                assert_eq!(e.kind, EventKind::SweepPointDone);
                assert_eq!(e.b as usize, 40);
                e.txn
            })
            .collect();
        indices.sort_unstable();
        let expected: Vec<u64> = (0..40).collect();
        assert_eq!(indices, expected, "every point reported exactly once");
        // Serial path publishes too.
        let serial_bus = EventBus::shared(64);
        SweepRunner::new(1)
            .with_events(Arc::clone(&serial_bus))
            .run(&points[..5], |_, &p| p);
        assert_eq!(serial_bus.read_since(0, 64).events.len(), 5);
    }

    #[test]
    fn csv_carries_exact_bits() {
        let points = sweep_grid(500, 1, 1);
        let outcomes = run_sweep(&points, 2);
        let csv = sweep_csv(&outcomes);
        assert!(csv.starts_with("seed,style,cycles"));
        let first_bits = format!("{:#018x}", outcomes[0].total_energy.to_bits());
        assert!(csv.contains(&first_bits), "{csv}");
    }
}
