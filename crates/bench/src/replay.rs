//! Record-once / estimate-many plumbing shared by `repro record`,
//! `repro replay`, `repro replay-bench`, the serve self-calibration and
//! the golden tests: a recorded paper-testbench run, the deterministic
//! coefficient-variant grid a replay sweeps, and the [`SweepRunner`]
//! fan-out over the replay engine itself.

use ahbpower::{
    ActivityTrace, AhbPowerModel, AnalysisConfig, PowerSession, ReplayEngine, ReplayOutcome,
    SubBlock,
};
use ahbpower_workloads::PaperTestbench;

use crate::{build_paper_bus, PaperRun, SweepRunner};

/// The factor grid non-identity variants cycle through (crossed with
/// [`SubBlock::ALL`]); none equals 1.0, so every variant k > 0 books an
/// energy genuinely different from the golden variant 0.
pub const REPLAY_VARIANT_FACTORS: [f64; 4] = [0.5, 0.8, 1.25, 2.0];

/// Like [`crate::run_paper_experiment`], with the activity recorder
/// attached: returns the run plus the finished trace, stamped with the
/// live ledger total so replays can self-check fidelity.
///
/// # Panics
///
/// Panics if the testbench fails to build (impossible for valid configs).
pub fn run_paper_experiment_recorded(cycles: u64, seed: u64) -> (PaperRun, ActivityTrace) {
    let config = AnalysisConfig::paper_testbench();
    let tb = PaperTestbench::sized_for(cycles, seed);
    let mut bus = tb.build().expect("paper testbench is statically valid");
    let mut session = PowerSession::with_recorder(&config);
    session.run(&mut bus, cycles);
    let trace = session.finish_recorder().expect("recorder attached");
    (
        PaperRun {
            config,
            session,
            bus,
            cycles,
        },
        trace,
    )
}

/// The coefficient tweak replay variant `k` applies: `None` for the
/// identity variant 0 (the golden reference), otherwise the scaled
/// sub-block and factor. Deterministic, so every consumer (CLI, bench,
/// tests, serve calibration) sweeps the same grid: blocks rotate fastest,
/// factors advance every [`SubBlock::ALL`] variants — 16 distinct
/// non-identity combinations before the grid wraps.
pub fn replay_variant_spec(k: usize) -> Option<(SubBlock, f64)> {
    let k = k.checked_sub(1)?;
    let block = SubBlock::ALL[k % SubBlock::ALL.len()];
    let factor = REPLAY_VARIANT_FACTORS[(k / SubBlock::ALL.len()) % REPLAY_VARIANT_FACTORS.len()];
    Some((block, factor))
}

/// Builds the model replay variant `k` evaluates: the paper-form model
/// sized from `cfg` with [`replay_variant_spec`]'s tweak applied.
pub fn replay_variant_model(cfg: &AnalysisConfig, k: usize) -> AhbPowerModel {
    let mut model = AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());
    if let Some((block, factor)) = replay_variant_spec(k) {
        model.scale_block(block, factor);
    }
    model
}

/// Replays one recorded trace under every model, fanned out over `jobs`
/// worker threads. Outcomes come back in model order and are
/// bit-identical for any job count: each replay owns its engine and
/// outcome, and the LUT kernel is deterministic.
pub fn replay_sweep(
    trace: &ActivityTrace,
    models: &[AhbPowerModel],
    jobs: usize,
) -> Vec<ReplayOutcome> {
    SweepRunner::new(jobs).run(models, |_, m| {
        let mut out = ReplayOutcome::new();
        ReplayEngine::new(m).replay_into(trace, &mut out);
        out
    })
}

/// Re-simulates the paper testbench cycle-accurately under replay
/// variant `k`'s model — the slow path the replay engine replaces; the
/// golden tests compare both sides bit for bit.
///
/// # Panics
///
/// Panics if the testbench fails to build (impossible for valid configs).
pub fn resimulate_variant(cycles: u64, seed: u64, k: usize) -> PowerSession {
    let cfg = AnalysisConfig::paper_testbench();
    let model = replay_variant_model(&cfg, k);
    let mut bus = build_paper_bus(cycles, seed);
    let mut session = PowerSession::with_model(model, cfg.window_cycles, cfg.f_clk_hz);
    session.run(&mut bus, cycles);
    session
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_grid_is_identity_then_distinct_tweaks() {
        assert_eq!(replay_variant_spec(0), None);
        let specs: Vec<_> = (1..17)
            .map(|k| replay_variant_spec(k).expect("tweak"))
            .collect();
        for (i, a) in specs.iter().enumerate() {
            assert_ne!(a.1, 1.0, "variant {} must move the energy", i + 1);
            for (j, b) in specs.iter().enumerate().skip(i + 1) {
                assert_ne!(a, b, "variants {} and {} collide", i + 1, j + 1);
            }
        }
        // The grid wraps after 16 non-identity combinations.
        assert_eq!(replay_variant_spec(17), replay_variant_spec(1));
    }

    #[test]
    fn recorded_run_replays_to_live_total_bit_for_bit() {
        let (run, trace) = run_paper_experiment_recorded(3_000, 2003);
        assert_eq!(trace.cycles(), 3_000);
        assert_eq!(
            trace.live_total_j.to_bits(),
            run.session.total_energy().to_bits()
        );
        let outcomes = replay_sweep(&trace, &[replay_variant_model(&run.config, 0)], 1);
        assert_eq!(
            outcomes[0].total_energy().to_bits(),
            run.session.total_energy().to_bits()
        );
    }

    #[test]
    fn replay_sweep_is_bit_identical_across_job_counts() {
        let (run, trace) = run_paper_experiment_recorded(2_000, 7);
        let models: Vec<AhbPowerModel> = (0..6)
            .map(|k| replay_variant_model(&run.config, k))
            .collect();
        let serial = replay_sweep(&trace, &models, 1);
        let parallel = replay_sweep(&trace, &models, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.total_energy().to_bits(), p.total_energy().to_bits());
        }
        // Non-identity variants genuinely diverge from the golden one.
        for (k, o) in serial.iter().enumerate().skip(1) {
            assert_ne!(
                o.total_energy().to_bits(),
                serial[0].total_energy().to_bits(),
                "variant {k} left the energy unchanged"
            );
        }
    }

    #[test]
    fn variant_replay_matches_fresh_resimulation() {
        let (run, trace) = run_paper_experiment_recorded(2_000, 2003);
        for k in [1usize, 5, 10] {
            let replayed = replay_sweep(&trace, &[replay_variant_model(&run.config, k)], 1);
            let fresh = resimulate_variant(2_000, 2003, k);
            assert_eq!(
                replayed[0].total_energy().to_bits(),
                fresh.total_energy().to_bits(),
                "variant {k} replay != fresh simulation"
            );
        }
    }
}
