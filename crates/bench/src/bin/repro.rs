//! Regenerates every table and figure of the DATE'03 paper.
//!
//! ```text
//! cargo run --release -p ahbpower-bench --bin repro -- all
//! cargo run --release -p ahbpower-bench --bin repro -- table1 [--cycles N] [--seed S]
//! subcommands: table1 fig3 fig4 fig5 fig6 validation styles overhead ablation
//!              coding dpm sweep sweep-bench record replay replay-bench
//!              telemetry telemetry-overhead events events-overhead
//!              observatory-overhead query trace analyze serve serve-probe
//!              baseline all
//! ```
//!
//! Text goes to stdout; CSV artifacts go to `results/`. Pass `--telemetry`
//! to any figure/table command to also emit `results/telemetry.{jsonl,csv,prom}`
//! from the same run; the `telemetry` subcommand does that plus a kernel-hosted
//! profiling pass, and `telemetry-overhead` measures the cost of the subsystem
//! and writes `BENCH_telemetry.json`.
//!
//! Sweep-shaped subcommands (`validation`, `styles`, `ablation`, `coding`,
//! `dpm`, `sweep`) shard their independent points across OS threads; pass
//! `--jobs N` to control the worker count (default: all available cores,
//! `--jobs 1` for serial). Results are byte-identical for any job count.
//! `sweep-bench` times the seed×style sweep at every power-of-two job
//! count up to the machine's parallelism and writes `BENCH_sweep.json`.
//!
//! The power-emulation pipeline records once and estimates many times:
//! `record` captures a compact activity trace of the paper testbench
//! (`results/replay_trace.bin`), `replay` re-estimates energy for N
//! model variants from that trace without touching the simulator
//! (golden-checked against the recorded run's ledger total, variant
//! results to `results/replay.jsonl`; `--inject block:factor` plus
//! `--expect-mismatch` prove the golden check trips), and
//! `replay-bench` measures record overhead and the replay speedup over
//! re-simulating, writing `BENCH_replay.json`.
//!
//! `trace` runs the paper testbench and the SoC scenario under the
//! transaction-level energy tracer and writes Chrome trace-event JSON
//! (`results/trace.json`, `results/trace_soc.json` — open in Perfetto or
//! `chrome://tracing`) plus energy flamegraph folded stacks
//! (`results/energy.folded`, `results/energy_soc.folded` — feed to
//! inferno/flamegraph.pl). `--top N` sizes the printed attribution table,
//! `--ring-capacity N` bounds the in-memory transaction ring. The command
//! self-checks: the JSON must validate and the attributed energy must
//! equal the instruction ledger's total within 1e-9 J, else it exits 1.
//!
//! `serve` starts the live monitoring service (std-only HTTP on `--addr`,
//! default ephemeral): workload slices run continuously on a background
//! thread while `/healthz`, `/metrics` (Prometheus), `/status` (JSON),
//! `/events` (structured event ring, `?since=N` cursor + optional
//! `timeout_ms` long-poll), `/query` (the power observatory's
//! multi-resolution range queries) and the self-hosted dashboard at `/`
//! report on them; `GET /quit` shuts down gracefully, flushing
//! `results/serve_final.jsonl`, `results/serve_status.json`,
//! `results/events.jsonl` and `results/observatory.jsonl` atomically,
//! plus a flight-recorder shutdown bundle under `results/flightrec/`.
//!
//! `query` answers the same range queries offline from a flushed
//! `results/observatory.jsonl` (`--series energy --from 0 --to 500
//! --step 10`), printing byte-identical JSON to the live `/query`
//! endpoint. `observatory-overhead` measures what the multi-resolution
//! store costs per cycle and writes `BENCH_observatory.json`.
//!
//! `events` runs a sliced offline workload with the structured event bus
//! enabled, writes `results/events.jsonl`, and self-checks the causal
//! chain (every `AnomalyFlagged` window links to an `EnergyBooked`
//! verdict and to `TxnComplete` transactions of the same slice). A fault
//! is injected mid-run by default so the chain is never vacuous; override
//! with `--inject block:factor[@slice]`. `events-overhead` measures what
//! the ring costs (no tap vs attached-but-disabled vs enabled) and
//! writes `BENCH_events.json`.
//! `serve-probe --addr HOST:PORT` smoke-tests a running service without
//! curl. `baseline record` snapshots per-instruction energy to
//! `results/baseline.json`; `baseline compare --tolerance-pct N` re-runs
//! at the snapshot's cycles/seed and exits 1 on drift — the regression
//! gate `scripts/check.sh` and CI run. `--inject block:factor[@slice]`
//! scales one sub-block's macromodel coefficients (serve: from the given
//! slice; baseline: from the start) to prove the detectors trip.
//!
//! `analyze` runs the static analyzer (`ahbpower-analyzer`): model-level
//! checks over the shipped instruction set/macromodels/workloads plus the
//! workspace source lint, printing human-readable findings and writing
//! `results/analyze.jsonl`. Pass `--script FILE` to lint a text op script
//! (see `ahbpower_ahb::parse_ops`) against the paper testbench's address
//! map instead. Exits 1 if any error-severity finding is reported.
//! `analyze --deep` adds the concurrency verification pass — event-ring
//! interleaving model checker, atomic-ordering lint census, exhaustive
//! arbiter state-space walk, plus a seeded-mutant self-check —
//! exporting coverage gauges alongside the findings. `analyze --mutate
//! ring-torn|ordering-relaxed|arbiter-double-grant` runs exactly one
//! seeded fault and must exit 1 (the fault being caught); check.sh and
//! CI drive all three directions.

use std::fs;
use std::time::Instant;

use ahbpower::report;
use ahbpower::telemetry::TelemetryConfig;
use ahbpower::{
    fit_arbiter_model, fit_decoder_model, fit_mux_model, run_on_kernel_profiled, AnalysisConfig,
    ModelValidation, PowerSession, TracePoint, ADDR_BITS, CTRL_BITS, RDATA_BITS, RESP_BITS,
};
use ahbpower_bench::{
    available_jobs, build_paper_bus, compare_probe_styles_parallel, replay_sweep,
    replay_variant_model, replay_variant_spec, resimulate_variant, run_paper_experiment,
    run_paper_experiment_recorded, run_paper_experiment_telemetered, run_paper_experiment_traced,
    run_soc_experiment_traced, run_sweep, sweep_csv, sweep_grid, sweep_report, validate_json,
    PaperRun, ProbeStyle, SweepPoint, SweepRunner,
};
use ahbpower_sim::SimTime;
use ahbpower_workloads::PaperTestbench;

const DEFAULT_CYCLES: u64 = 5_000_000;
const DEFAULT_SEED: u64 = 2003;
/// Seeds per sweep (base, base+1, …), each crossed with all probe styles.
const SWEEP_SEEDS: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positionals: Vec<String> = Vec::new();
    let mut cycles = DEFAULT_CYCLES;
    let mut seed = DEFAULT_SEED;
    let mut telemetry = false;
    let mut jobs = available_jobs();
    let mut script: Option<String> = None;
    let mut top = 10usize;
    let mut ring = ahbpower::DEFAULT_RING_CAPACITY;
    let mut addr: Option<String> = None;
    let mut out: Option<String> = None;
    let mut file: Option<String> = None;
    let mut tolerance_pct = 2.0f64;
    let mut inject: Option<String> = None;
    let mut slices: Option<u64> = None;
    let mut slice_cycles = 20_000u64;
    let mut mix = "mixed".to_string();
    let mut quit = false;
    let mut variants = 16usize;
    let mut expect_mismatch = false;
    let mut deep = false;
    let mut mutate: Option<String> = None;
    let mut series: Option<String> = None;
    let mut from = 0u64;
    let mut to = u64::MAX;
    let mut step = 1u64;
    let mut flightrec: Option<String> = None;
    let mut shards = 1usize;
    let mut http_threads = 4usize;
    let mut max_connections = 64usize;
    let mut concurrency = 4usize;
    let mut duration_s = 5.0f64;
    let mut min_rps = 0.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--telemetry" => telemetry = true,
            "--addr" => {
                addr = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--addr needs host:port")),
                );
            }
            "--out" => {
                out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--out needs a file path")),
                );
            }
            "--file" => {
                file = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--file needs a file path")),
                );
            }
            "--tolerance-pct" => {
                tolerance_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &f64| t >= 0.0)
                    .unwrap_or_else(|| usage("--tolerance-pct needs a non-negative number"));
            }
            "--inject" => {
                inject = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--inject needs block:factor[@slice]")),
                );
            }
            "--slices" => {
                slices = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--slices needs a number")),
                );
            }
            "--slice-cycles" => {
                slice_cycles = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--slice-cycles needs a positive number"));
            }
            "--mix" => {
                mix = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| usage("--mix needs paper|soc|mixed"));
            }
            "--quit" => quit = true,
            "--variants" => {
                variants = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--variants needs a positive number"));
            }
            "--expect-mismatch" => expect_mismatch = true,
            "--deep" => deep = true,
            "--series" => {
                series = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--series needs a series name")),
                );
            }
            "--from" => {
                from = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--from needs a window index"));
            }
            "--to" => {
                to = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--to needs a window index"));
            }
            "--step" => {
                step = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--step needs a positive number"));
            }
            "--flightrec" => {
                flightrec = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--flightrec needs a directory")),
                );
            }
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--shards needs a positive number"));
            }
            "--http-threads" => {
                http_threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--http-threads needs a positive number"));
            }
            "--max-connections" => {
                max_connections = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--max-connections needs a positive number"));
            }
            "--concurrency" => {
                concurrency = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--concurrency needs a positive number"));
            }
            "--duration-s" => {
                duration_s = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &f64| t > 0.0)
                    .unwrap_or_else(|| usage("--duration-s needs a positive number"));
            }
            "--min-rps" => {
                min_rps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &f64| t >= 0.0)
                    .unwrap_or_else(|| usage("--min-rps needs a non-negative number"));
            }
            "--mutate" => {
                mutate = Some(it.next().cloned().unwrap_or_else(|| {
                    usage("--mutate needs ring-torn|ordering-relaxed|arbiter-double-grant")
                }));
            }
            "--cycles" => {
                cycles = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--cycles needs a number"));
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--jobs needs a positive number"));
            }
            "--script" => {
                script = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--script needs a file path")),
                );
            }
            "--top" => {
                top = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--top needs a number"));
            }
            "--ring-capacity" => {
                ring = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--ring-capacity needs a positive number"));
            }
            other if !other.starts_with('-') => positionals.push(other.to_string()),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    let cmd = positionals
        .first()
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();
    let sub = positionals.get(1).map(String::as_str);
    fs::create_dir_all("results").expect("create results/");
    match cmd.as_str() {
        "serve" => {
            return serve_cmd(
                addr.as_deref().unwrap_or("127.0.0.1:0"),
                &mix,
                slice_cycles,
                seed,
                slices,
                inject.as_deref(),
                shards,
                http_threads,
                max_connections,
            );
        }
        "serve-probe" => {
            return serve_probe_cmd(
                addr.as_deref()
                    .unwrap_or_else(|| usage("serve-probe needs --addr host:port")),
                quit,
                flightrec.as_deref(),
                shards,
            );
        }
        "loadgen" => {
            return loadgen_cmd(
                addr.as_deref(),
                shards,
                concurrency,
                duration_s,
                out.as_deref().unwrap_or("BENCH_serve.json"),
                min_rps,
            );
        }
        "query" => {
            return query_cmd(
                file.as_deref().unwrap_or("results/observatory.jsonl"),
                series
                    .as_deref()
                    .unwrap_or_else(|| usage("query needs --series NAME")),
                from,
                to,
                step,
            );
        }
        "baseline" => {
            return baseline_cmd(
                sub.unwrap_or_else(|| usage("baseline needs record|compare")),
                cycles.min(200_000),
                seed,
                out.as_deref(),
                file.as_deref(),
                tolerance_pct,
                inject.as_deref(),
            );
        }
        _ => {}
    }
    match cmd.as_str() {
        "table1" => table1(&mut run(cycles, seed, telemetry)),
        "fig3" => fig(&mut run(cycles, seed, telemetry), 3),
        "fig4" => fig(&mut run(cycles, seed, telemetry), 4),
        "fig5" => fig(&mut run(cycles, seed, telemetry), 5),
        "fig6" => fig6(&mut run(cycles, seed, telemetry)),
        "validation" => validation(jobs),
        "styles" => styles(cycles.min(500_000), seed, jobs),
        "overhead" => overhead(cycles.min(1_000_000), seed),
        "ablation" => ablation(cycles.min(1_000_000), seed, jobs),
        "coding" => coding(cycles.min(300_000), seed, jobs),
        "dpm" => dpm(cycles.min(500_000), seed, jobs),
        "sweep" => sweep(cycles.min(200_000), seed, jobs),
        "sweep-bench" => sweep_bench(cycles.min(200_000), seed, jobs),
        "record" => record_cmd(cycles.min(1_000_000), seed, out.as_deref()),
        "replay" => replay_cmd(
            file.as_deref().unwrap_or("results/replay_trace.bin"),
            variants,
            jobs,
            out.as_deref().unwrap_or("results/replay.jsonl"),
            inject.as_deref(),
            expect_mismatch,
        ),
        "replay-bench" => replay_bench(cycles.min(200_000), seed, variants, jobs),
        "telemetry" => telemetry_run(cycles.min(1_000_000), seed, jobs),
        "trace" => trace_cmd(cycles.min(1_000_000), seed, top, ring),
        "analyze" => analyze(script.as_deref(), deep, mutate.as_deref()),
        "telemetry-overhead" => telemetry_overhead(cycles.min(1_000_000), seed, jobs),
        "events" => events_cmd(cycles.min(500_000), seed, slice_cycles, inject.as_deref()),
        "events-overhead" => events_overhead(cycles.min(1_000_000), seed),
        "observatory-overhead" => observatory_overhead(cycles.min(1_000_000), seed),
        "all" => {
            let mut r = run(cycles, seed, telemetry);
            table1(&mut r);
            fig(&mut r, 3);
            fig(&mut r, 4);
            fig(&mut r, 5);
            fig6(&mut r);
            validation(jobs);
            styles(cycles.min(500_000), seed, jobs);
            overhead(cycles.min(1_000_000), seed);
            ablation(cycles.min(1_000_000), seed, jobs);
            coding(cycles.min(300_000), seed, jobs);
            dpm(cycles.min(500_000), seed, jobs);
            sweep(cycles.min(200_000), seed, jobs);
        }
        other => usage(&format!("unknown command {other}")),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: repro [table1|fig3|fig4|fig5|fig6|validation|styles|overhead|ablation|coding|dpm|sweep|sweep-bench|record|replay|replay-bench|telemetry|telemetry-overhead|events|events-overhead|observatory-overhead|query|trace|analyze|serve|serve-probe|loadgen|baseline record|baseline compare|all] [--cycles N] [--seed S] [--jobs N] [--variants N] [--telemetry] [--script FILE] [--top N] [--ring-capacity N] [--addr HOST:PORT] [--mix paper|soc|mixed] [--slices N] [--slice-cycles N] [--shards N] [--http-threads N] [--max-connections N] [--concurrency N] [--duration-s S] [--min-rps N] [--inject block:factor[@slice]] [--expect-mismatch] [--deep] [--mutate ring-torn|ordering-relaxed|arbiter-double-grant] [--out FILE] [--file FILE] [--tolerance-pct N] [--series NAME] [--from N] [--to N] [--step N] [--flightrec DIR]"
    );
    std::process::exit(2);
}

/// `repro serve`: the live monitoring service. Runs workload slices
/// continuously on `--shards` background worker sessions (each with its
/// own seed lane, event ring, anomaly detector and observatory) and
/// serves the merged plane — `/healthz`, `/metrics`, `/status`,
/// `/events`, `/query` (all with `?shard=` drill-down) and `/quit` —
/// from an HTTP thread pool until the slice budget drains and `/quit`
/// arrives (or Ctrl-C kills the process). Prints the bound address —
/// with `--addr 127.0.0.1:0` the OS picks the port.
#[allow(clippy::too_many_arguments)]
fn serve_cmd(
    addr: &str,
    mix: &str,
    slice_cycles: u64,
    seed: u64,
    max_slices: Option<u64>,
    inject: Option<&str>,
    shards: usize,
    http_threads: usize,
    max_connections: usize,
) {
    use ahbpower::telemetry::AnomalyConfig;
    use ahbpower_bench::{serve, Injection, ScenarioMix, ServeConfig};
    let mix = ScenarioMix::from_name(mix)
        .unwrap_or_else(|| usage(&format!("unknown --mix {mix} (paper|soc|mixed)")));
    let inject = inject.map(|spec| {
        Injection::parse(spec)
            .unwrap_or_else(|| usage(&format!("bad --inject {spec} (block:factor[@slice])")))
    });
    // Warm the detector across at least one slice of each scenario at
    // the *requested* slice length, not the default's.
    let anomaly = AnomalyConfig::default();
    let warmup = 2 * slice_cycles / anomaly.window_cycles + 4;
    let cfg = ServeConfig {
        addr: addr.to_string(),
        mix,
        slice_cycles,
        seed,
        max_slices,
        anomaly: anomaly.with_warmup_windows(warmup),
        inject,
        results_dir: Some("results".into()),
        shards,
        http_threads,
        max_connections,
        ..ServeConfig::default()
    };
    let handle = serve(cfg).expect("bind serve address");
    println!(
        "serving on http://{} ({} shard(s), {} http thread(s), {} connection slot(s))",
        handle.addr(),
        shards,
        http_threads,
        max_connections
    );
    println!("endpoints: / /healthz /metrics /status /events /query /quit (?shard=K drills down)");
    if let Some(n) = max_slices {
        println!("slice budget: {n} x {slice_cycles} cycles per shard (GET /quit to stop serving)");
    } else {
        println!("running until GET /quit");
    }
    let summary = handle.wait_for_quit().expect("serve shuts down cleanly");
    println!(
        "served {} slices ({} cycles, {:.3} uJ, {} anomalies)",
        summary.slices,
        summary.cycles,
        summary.total_energy_j * 1e6,
        summary.anomalies
    );
    for f in &summary.flushed {
        println!("-> {}", f.display());
    }
}

/// `repro serve-probe --addr HOST:PORT [--quit] [--flightrec DIR]`:
/// std-only smoke client for a running service (no curl needed in CI).
/// Fetches `/healthz`, `/metrics`, `/status`, the dashboard at `/`,
/// `/events` (long-polling up to 5 s and requiring at least one
/// `TxnComplete` when the ring is enabled) and `/query` (the power
/// observatory, checking the step→resolution contract), validates each
/// payload, optionally sends `GET /quit` afterwards, and exits 1 on any
/// failure. With `--flightrec DIR`, waits for at least one JSON-valid
/// flight-recorder bundle whose causal chain reaches `TxnComplete` —
/// the end-to-end assertion behind the injected-fault smoke test.
/// With `--shards N` (N ≥ 2), additionally queries every shard's
/// `energy` series individually and asserts the merged `/query` total
/// equals the per-shard sum to 1e-9 relative — the merged-plane
/// conservation check the multi-shard smoke test runs.
fn serve_probe_cmd(addr: &str, quit: bool, flightrec: Option<&str>, shards: usize) {
    use ahbpower_bench::http_get;
    use std::time::Duration;
    let timeout = Duration::from_secs(10);
    let mut failures = 0u32;

    match http_get(addr, "/healthz", timeout) {
        Ok(r) if r.status == 200 && r.body.contains("\"status\":\"ok\"") => {
            match validate_json(&r.body) {
                Ok(()) => println!("/healthz: ok"),
                Err(e) => {
                    eprintln!("/healthz: invalid JSON: {e}");
                    failures += 1;
                }
            }
        }
        Ok(r) => {
            eprintln!("/healthz: unexpected status {} body {:?}", r.status, r.body);
            failures += 1;
        }
        Err(e) => {
            eprintln!("/healthz: {e}");
            failures += 1;
        }
    }
    match http_get(addr, "/metrics", timeout) {
        Ok(r) if r.status == 200 && r.body.contains("# TYPE") => {
            println!("/metrics: ok ({} bytes)", r.body.len());
        }
        Ok(r) => {
            eprintln!("/metrics: status {} without Prometheus content", r.status);
            failures += 1;
        }
        Err(e) => {
            eprintln!("/metrics: {e}");
            failures += 1;
        }
    }
    match http_get(addr, "/status", timeout) {
        Ok(r) if r.status == 200 => match validate_json(&r.body) {
            Ok(()) => println!("/status: valid JSON ({} bytes)", r.body.len()),
            Err(e) => {
                eprintln!("/status: invalid JSON: {e}");
                failures += 1;
            }
        },
        Ok(r) => {
            eprintln!("/status: status {}", r.status);
            failures += 1;
        }
        Err(e) => {
            eprintln!("/status: {e}");
            failures += 1;
        }
    }
    match http_get(addr, "/", timeout) {
        Ok(r) if r.status == 200 && r.body.contains("<canvas") && r.body.contains("/events") => {
            println!("/: dashboard ok ({} bytes)", r.body.len());
        }
        Ok(r) => {
            eprintln!("/: status {} without a dashboard page", r.status);
            failures += 1;
        }
        Err(e) => {
            eprintln!("/: {e}");
            failures += 1;
        }
    }
    // Long-poll the event ring: a live worker publishes a TxnComplete
    // well within the 5 s window (a 20k-cycle slice takes milliseconds).
    match http_get(addr, "/events?since=0&max=4096&timeout_ms=5000", timeout) {
        Ok(r) if r.status == 200 => match validate_json(&r.body) {
            Ok(()) => {
                let enabled = !r.body.contains("\"enabled\":false");
                if !enabled {
                    println!("/events: valid JSON (ring disabled)");
                } else if r.body.contains("\"event\":\"TxnComplete\"") {
                    println!(
                        "/events: valid JSON with TxnComplete ({} bytes)",
                        r.body.len()
                    );
                } else {
                    eprintln!("/events: enabled ring served no TxnComplete within the poll window");
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("/events: invalid JSON: {e}");
                failures += 1;
            }
        },
        Ok(r) => {
            eprintln!("/events: status {}", r.status);
            failures += 1;
        }
        Err(e) => {
            eprintln!("/events: {e}");
            failures += 1;
        }
    }
    // The observatory range query: step=10 must answer from the 10x
    // level (or serve an empty placeholder before the first slice).
    match http_get(addr, "/query?series=energy&step=10", timeout) {
        Ok(r) if r.status == 200 => match validate_json(&r.body) {
            Ok(()) if r.body.contains("\"series\":\"energy\"") => {
                println!("/query: valid JSON ({} bytes)", r.body.len());
            }
            Ok(()) => {
                eprintln!("/query: JSON without the requested series: {:.120}", r.body);
                failures += 1;
            }
            Err(e) => {
                eprintln!("/query: invalid JSON: {e}");
                failures += 1;
            }
        },
        Ok(r) => {
            eprintln!("/query: status {}", r.status);
            failures += 1;
        }
        Err(e) => {
            eprintln!("/query: {e}");
            failures += 1;
        }
    }
    if shards >= 2 && !probe_merged_query(addr, shards, timeout) {
        failures += 1;
    }
    if let Some(dir) = flightrec {
        if !probe_flightrec(dir) {
            failures += 1;
        }
    }
    if quit {
        match http_get(addr, "/quit", timeout) {
            Ok(r) if r.status == 200 => println!("/quit: ok"),
            Ok(r) => {
                eprintln!("/quit: status {}", r.status);
                failures += 1;
            }
            Err(e) => {
                eprintln!("/quit: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("serve-probe: {failures} endpoint(s) failed");
        std::process::exit(1);
    }
}

/// Sums a `/query` response's `sum` fields; `None` on any failure
/// (which is reported to stderr).
fn query_energy_total(addr: &str, path: &str, timeout: std::time::Duration) -> Option<f64> {
    use ahbpower_bench::{http_get, parse_json, JsonValue};
    let resp = match http_get(addr, path, timeout) {
        Ok(r) if r.status == 200 => r,
        Ok(r) => {
            eprintln!("{path}: status {}", r.status);
            return None;
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            return None;
        }
    };
    let doc = match parse_json(&resp.body) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path}: invalid JSON: {e}");
            return None;
        }
    };
    let points = doc.get("points").and_then(JsonValue::as_array)?;
    Some(
        points
            .iter()
            .filter_map(|p| p.get("sum").and_then(JsonValue::as_f64))
            .sum(),
    )
}

/// The merged-plane conservation probe: merged `/query` energy must
/// equal the sum over `?shard=K` queries to 1e-9 relative. Queries the
/// full retained range at raw resolution so the comparison covers
/// every bucket.
fn probe_merged_query(addr: &str, shards: usize, timeout: std::time::Duration) -> bool {
    let Some(merged) = query_energy_total(addr, "/query?series=energy&step=1", timeout) else {
        return false;
    };
    let mut per_shard = 0.0f64;
    for k in 0..shards {
        let path = format!("/query?series=energy&step=1&shard={k}");
        let Some(total) = query_energy_total(addr, &path, timeout) else {
            return false;
        };
        per_shard += total;
    }
    let tolerance = 1e-9 * merged.abs().max(1e-30);
    if (merged - per_shard).abs() > tolerance {
        eprintln!(
            "/query shard merge: merged energy {merged} != per-shard sum {per_shard} ({shards} shards)"
        );
        return false;
    }
    println!("/query shard merge: merged energy {merged} == per-shard sum across {shards} shards");
    true
}

/// Waits (up to 10 s) for a flight-recorder bundle under `dir` — or its
/// per-shard `shard-<N>` subdirectories — whose causal chain reaches at
/// least one `TxnComplete`, validating every bundle it reads through
/// the workspace JSON checker. Returns false on timeout or any invalid
/// bundle.
fn probe_flightrec(dir: &str) -> bool {
    use ahbpower_bench::{parse_json, JsonValue};
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let mut bundles = 0usize;
        let mut causal_ok = false;
        let mut files: Vec<std::path::PathBuf> = Vec::new();
        if let Ok(entries) = fs::read_dir(dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    // Per-shard subdirectory: one level of recursion.
                    if let Ok(sub) = fs::read_dir(&path) {
                        files.extend(sub.flatten().map(|e| e.path()));
                    }
                } else {
                    files.push(path);
                }
            }
        }
        for path in files {
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Ok(body) = fs::read_to_string(&path) else {
                continue;
            };
            if let Err(e) = validate_json(&body) {
                eprintln!("flightrec: {} is invalid JSON: {e}", path.display());
                return false;
            }
            bundles += 1;
            if let Ok(doc) = parse_json(&body) {
                let txns = doc
                    .get("causal")
                    .and_then(|c| c.get("txn_complete"))
                    .and_then(JsonValue::as_array)
                    .map_or(0, <[JsonValue]>::len);
                if txns > 0 {
                    causal_ok = true;
                }
            }
        }
        if bundles > 0 && causal_ok {
            println!("flightrec: {bundles} valid bundle(s), causal chain reaches TxnComplete");
            return true;
        }
        if Instant::now() >= deadline {
            eprintln!(
                "flightrec: no bundle with a TxnComplete causal chain in {dir} ({bundles} bundle(s) seen)"
            );
            return false;
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
}

/// `repro query --series S [--from A] [--to B] [--step N] [--file F]`:
/// offline observatory range queries over a flushed
/// `results/observatory.jsonl` snapshot. Prints the same JSON document
/// the live `GET /query` endpoint serves — the renderer is shared, so
/// the bytes cannot drift. `--step` picks the resolution (1 = raw
/// windows, 10 and 100 the downsampled rings). Exits 1 when the
/// snapshot is missing/corrupt, the range is empty (`--from` past
/// `--to`) or the series is unknown.
fn query_cmd(file: &str, series: &str, from: u64, to: u64, step: u64) {
    use ahbpower_bench::{parse_observatory_snapshot, query_result_json};
    if from > to {
        eprintln!("query: empty range: --from {from} > --to {to}");
        std::process::exit(1);
    }
    let text = match fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("query: cannot read {file}: {e} (run `repro serve` first; the snapshot is flushed on shutdown)");
            std::process::exit(1);
        }
    };
    let snap = match parse_observatory_snapshot(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("query: {file}: {e}");
            std::process::exit(1);
        }
    };
    match snap.query(series, from, to, step) {
        Some(q) => {
            let json = query_result_json(&q);
            validate_json(&json).expect("query JSON validates");
            println!("{json}");
        }
        None => {
            eprintln!(
                "query: unknown series '{series}' (available: {})",
                snap.series.join(", ")
            );
            std::process::exit(1);
        }
    }
}

/// `repro loadgen [--addr HOST:PORT] [--shards N] [--concurrency N]
/// [--duration-s S] [--out FILE] [--min-rps N]`: the std-only HTTP
/// load generator. Without `--addr` it self-hosts a multi-shard server
/// (default 2 shards, a small slice budget so the workers go quiet and
/// the measurement isolates the serving plane), drives every endpoint
/// from `--concurrency` client threads for `--duration-s`, and writes
/// the throughput/latency/shed report to `--out` (default
/// `BENCH_serve.json`, the document `bench_snapshot.sh`
/// collects). Exits 1 when the error rate exceeds 1% or the measured
/// throughput falls below `--min-rps`.
fn loadgen_cmd(
    addr: Option<&str>,
    shards: usize,
    concurrency: usize,
    duration_s: f64,
    out: &str,
    min_rps: f64,
) {
    use ahbpower_bench::{
        loadgen_report_json, run_loadgen, serve, write_atomic, LoadgenConfig, ScenarioMix,
        ServeConfig,
    };
    use std::time::Duration;
    let self_hosted = addr.is_none();
    let shards = if self_hosted { shards.max(2) } else { shards };
    let handle = if self_hosted {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            mix: ScenarioMix::Paper,
            slice_cycles: 5_000,
            max_slices: Some(2),
            shards,
            ..ServeConfig::default()
        };
        let handle = serve(cfg).expect("bind loadgen server");
        println!(
            "loadgen: self-hosted {shards}-shard server on http://{}",
            handle.addr()
        );
        // Let the slice budget drain so worker CPU does not distort the
        // serving-plane measurement (2 x 5k cycles per shard is quick).
        std::thread::sleep(Duration::from_millis(300));
        Some(handle)
    } else {
        None
    };
    let target = match (&handle, addr) {
        (Some(h), _) => h.addr().to_string(),
        (None, Some(a)) => a.to_string(),
        (None, None) => unreachable!(),
    };
    let cfg = LoadgenConfig {
        addr: target.clone(),
        concurrency,
        duration: Duration::from_secs_f64(duration_s),
        ..LoadgenConfig::default()
    };
    println!("loadgen: driving http://{target} from {concurrency} thread(s) for {duration_s:.1} s");
    let report = run_loadgen(&cfg);
    if let Some(handle) = handle {
        let _ = ahbpower_bench::http_get(&target, "/quit", Duration::from_secs(10));
        let _ = handle.wait_for_quit();
    }
    let json = loadgen_report_json(&report, shards);
    validate_json(&json).expect("loadgen report JSON validates");
    write_atomic(std::path::Path::new(out), &json).expect("write loadgen report");
    println!(
        "loadgen: {} requests in {:.2} s = {:.0} req/s ({} ok, {} shed, {} errors) -> {out}",
        report.requests(),
        report.duration_s,
        report.throughput_rps(),
        report.ok(),
        report.shed(),
        report.errors()
    );
    for e in &report.endpoints {
        println!(
            "  {:<40} {:>7} reqs  p50 {:>8.0} us  p95 {:>8.0} us  p99 {:>8.0} us",
            e.path,
            e.requests(),
            e.latency_us.quantile(0.5),
            e.latency_us.quantile(0.95),
            e.latency_us.quantile(0.99)
        );
    }
    let error_rate = report.errors() as f64 / report.requests().max(1) as f64;
    if error_rate > 0.01 {
        eprintln!("loadgen: error rate {:.2}% exceeds 1%", error_rate * 100.0);
        std::process::exit(1);
    }
    if min_rps > 0.0 && report.throughput_rps() < min_rps {
        eprintln!(
            "loadgen: {:.0} req/s is below the required {min_rps:.0}",
            report.throughput_rps()
        );
        std::process::exit(1);
    }
}

/// `repro baseline record|compare`: the energy regression gate.
///
/// `record` runs the paper testbench and snapshots the per-instruction
/// energy distribution to `--out` (default `results/baseline.json`).
/// `compare` re-runs at the cycles/seed stamped in `--file` (so the
/// diff is always apples-to-apples) and exits 1 when any tracked
/// quantity drifts beyond `--tolerance-pct`. `--inject block:factor`
/// scales one sub-block's coefficients first — the self-test proving
/// the gate trips.
fn baseline_cmd(
    sub: &str,
    cycles: u64,
    seed: u64,
    out: Option<&str>,
    file: Option<&str>,
    tolerance_pct: f64,
    inject: Option<&str>,
) {
    use ahbpower_bench::{compare_baselines, record_baseline, BaselineSnapshot, Injection};
    let inject = inject.map(|spec| {
        let inj = Injection::parse(spec)
            .unwrap_or_else(|| usage(&format!("bad --inject {spec} (block:factor)")));
        (inj.block, inj.factor)
    });
    match sub {
        "record" => {
            let path = out.unwrap_or("results/baseline.json");
            let snap = record_baseline(cycles, seed, inject);
            snap.save(std::path::Path::new(path))
                .expect("write baseline snapshot");
            println!(
                "recorded baseline: {} cycles @ seed {}, {:.3} uJ, {} instructions -> {path}",
                snap.cycles,
                snap.seed,
                snap.total_energy_j * 1e6,
                snap.rows.len()
            );
        }
        "compare" => {
            let path = file.unwrap_or("results/baseline.json");
            let base = BaselineSnapshot::load(std::path::Path::new(path))
                .unwrap_or_else(|e| usage(&format!("cannot load baseline {path}: {e}")));
            let fresh = record_baseline(base.cycles, base.seed, inject);
            let cmp = compare_baselines(&base, &fresh, tolerance_pct);
            print!("{}", cmp.render_text());
            if !cmp.passed() {
                std::process::exit(1);
            }
        }
        other => usage(&format!(
            "unknown baseline subcommand {other} (record|compare)"
        )),
    }
}

/// `repro analyze [--script FILE] [--deep] [--mutate M]`: static
/// analysis before any simulation.
///
/// Without `--script`, runs the full two-layer analysis (instruction set,
/// macromodel domains, shipped workload maps/scripts, workspace source
/// lint). With `--script`, parses and lints the given text op script
/// against the paper testbench's address map.
///
/// `--deep` adds the concurrency verification pass: the event-ring
/// interleaving model checker, the workspace atomic-ordering census, and
/// the exhaustive AHB arbiter state-space walk, plus a self-check that
/// every seeded mutant is still caught. `--mutate M` (implies `--deep`)
/// runs only the seeded fault `M` — findings (exit 1) are then the
/// expected outcome, a clean exit the regression.
///
/// Either way the findings are printed human-readable, exported to
/// `results/analyze.jsonl` (telemetry JSONL metrics followed by one event
/// per diagnostic), and error-severity findings make the process exit 1.
fn analyze(script: Option<&str>, deep: bool, mutate: Option<&str>) -> ! {
    use ahbpower::telemetry::{to_jsonl, ExportMeta, MetricsRegistry};
    use ahbpower_analyzer::verify::{verify_deep, DeepConfig, DeepMutation, DeepStats};
    use ahbpower_analyzer::{analyze_all, analyze_models_and_workloads, Report};

    let mutation = match mutate {
        Some(m) => DeepMutation::parse(m).unwrap_or_else(|| {
            usage("--mutate needs ring-torn|ordering-relaxed|arbiter-double-grant")
        }),
        None => DeepMutation::None,
    };
    let deep = deep || mutate.is_some();

    let mut report: Report = match script {
        Some(path) => {
            let text = match fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => usage(&format!("cannot read script {path}: {e}")),
            };
            let map = PaperTestbench::default().address_map();
            println!("== Static analysis: script {path} ==");
            Report::from_diagnostics(ahbpower_analyzer::script::check_script_text(
                &text,
                Some(&map),
                path,
            ))
        }
        None if mutation != DeepMutation::None => {
            // A mutant direction verifies the tooling, not the shipped
            // models; the base layers would only dilute its exit code.
            println!(
                "== Static analysis: seeded mutant {} ==",
                mutate.unwrap_or("")
            );
            Report::new()
        }
        None => {
            println!("== Static analysis: models, workloads, sources ==");
            match workspace_root() {
                Some(root) => analyze_all(&root),
                None => {
                    println!("(no workspace root found: skipping the source lint layer)");
                    analyze_models_and_workloads()
                }
            }
        }
    };

    let mut deep_stats: Option<DeepStats> = None;
    if deep && script.is_none() {
        let root = workspace_root().unwrap_or_else(|| std::path::PathBuf::from("."));
        let cfg = DeepConfig {
            mutation,
            ..DeepConfig::default()
        };
        println!("== Deep verification: ring model checker, ordering census, arbiter walk ==");
        let (deep_report, stats) = verify_deep(&root, cfg);
        println!(
            "   ring: {} scenarios, {} interleavings (max {} steps); \
             arbiter: {} states, {} bus cycles, {} burst checks; \
             atomics: {} sites in {} files; wall {:.2?}",
            stats.ring.scenarios,
            stats.ring.executions,
            stats.ring.max_steps,
            stats.arbiter.decide_states,
            stats.arbiter.bus_cycles,
            stats.arbiter.burst_checks,
            stats.census.total(),
            stats.census.files_with_atomics,
            stats.wall,
        );
        report.merge(deep_report);
        deep_stats = Some(stats);
    }

    print!("{}", report.render_text());

    let mut reg = MetricsRegistry::new();
    report.to_metrics(&mut reg);
    if let Some(stats) = &deep_stats {
        let gauges: [(&str, &str, f64); 8] = [
            (
                "verify_ring_executions",
                "Interleavings explored by the ring model checker",
                stats.ring.executions as f64,
            ),
            (
                "verify_ring_scenarios",
                "Ring scenarios model-checked",
                stats.ring.scenarios as f64,
            ),
            (
                "verify_arbiter_decide_states",
                "Arbiter decide() states exhaustively enumerated",
                stats.arbiter.decide_states as f64,
            ),
            (
                "verify_arbiter_bus_cycles",
                "Bus cycles simulated under the protocol checker",
                stats.arbiter.bus_cycles as f64,
            ),
            (
                "verify_burst_checks",
                "Burst boundary predicates cross-checked",
                stats.arbiter.burst_checks as f64,
            ),
            (
                "verify_atomic_ordering_sites",
                "Atomic ordering sites in workspace library code",
                stats.census.total() as f64,
            ),
            (
                "verify_atomic_relaxed_sites",
                "Ordering::Relaxed sites in workspace library code",
                stats.census.relaxed as f64,
            ),
            (
                "verify_deep_wall_seconds",
                "Wall-clock seconds spent in the deep pass",
                stats.wall.as_secs_f64(),
            ),
        ];
        for (name, help, value) in gauges {
            let id = reg.gauge(name, help, &[]);
            reg.set(id, value);
        }
    }
    let meta = ExportMeta {
        scenario: if deep { "analyze-deep" } else { "analyze" }.to_string(),
        cycles: 0,
        seed: 0,
    };
    let jsonl = format!("{}{}", to_jsonl(&reg, &meta), report.render_jsonl());
    fs::write("results/analyze.jsonl", jsonl).expect("write results/analyze.jsonl");
    println!("wrote results/analyze.jsonl");

    std::process::exit(if report.is_clean() { 0 } else { 1 });
}

/// Walks up from the current directory to the first one that looks like
/// the workspace root (has both `Cargo.toml` and `crates/`).
fn workspace_root() -> Option<std::path::PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run(cycles: u64, seed: u64, telemetry: bool) -> PaperRun {
    eprintln!("running paper testbench: {cycles} cycles @ 100 MHz, seed {seed} ...");
    let t0 = Instant::now();
    let mut r = if telemetry {
        run_paper_experiment_telemetered(cycles, seed)
    } else {
        run_paper_experiment(cycles, seed)
    };
    eprintln!(
        "  done in {:.2?} ({:.1} Mcycles/s), {} OK transfers, {} handovers",
        t0.elapsed(),
        cycles as f64 / 1e6 / t0.elapsed().as_secs_f64(),
        r.bus.stats().transfers_ok,
        r.bus.stats().handovers,
    );
    export_telemetry(&mut r);
    r
}

/// Writes `results/telemetry.{jsonl,csv,prom}` when the run carries
/// telemetry; a no-op otherwise.
fn export_telemetry(r: &mut PaperRun) {
    let Some(t) = r.session.finish_telemetry() else {
        return;
    };
    fs::write("results/telemetry.jsonl", t.to_jsonl()).expect("write results/telemetry.jsonl");
    fs::write("results/telemetry.csv", t.to_csv()).expect("write results/telemetry.csv");
    fs::write("results/telemetry.prom", t.to_prometheus()).expect("write results/telemetry.prom");
    println!("-> results/telemetry.jsonl, results/telemetry.csv, results/telemetry.prom\n");
}

/// One seed's worth of the threaded telemetry sweep: the summary numbers
/// a telemetered run boils down to, in a plain `Send` shape so
/// [`SweepRunner`] threads can return it (the bus itself is not `Send`).
struct SeedSummary {
    seed: u64,
    utilization: f64,
    handovers: u64,
    arb_latency_mean: f64,
    total_energy: f64,
}

/// Runs telemetered paper-testbench experiments for `n_seeds` consecutive
/// seeds starting at `base_seed`, sharded over `jobs` threads. Results are
/// in seed order regardless of the job count.
fn telemetry_seed_sweep(
    cycles: u64,
    base_seed: u64,
    n_seeds: u64,
    jobs: usize,
) -> Vec<SeedSummary> {
    let seeds: Vec<u64> = (0..n_seeds).map(|i| base_seed + i).collect();
    SweepRunner::new(jobs).run(&seeds, |_, &seed| {
        let mut r = run_paper_experiment_telemetered(cycles, seed);
        let total_energy = r.session.total_energy();
        let t = r.session.finish_telemetry().expect("telemetry enabled");
        let perf = t.perf();
        SeedSummary {
            seed,
            utilization: perf.utilization(),
            handovers: perf.handovers(),
            arb_latency_mean: perf.arbitration_latency().mean(),
            total_energy,
        }
    })
}

/// The telemetry showcase: an enabled run (bus-performance analyzers +
/// observer spans + power ledgers) plus a kernel-hosted profiling pass so
/// the `sim_*` span metrics are populated too, plus a `--jobs`-wide
/// multi-seed sweep showing how the headline metrics move with the seed.
fn telemetry_run(cycles: u64, seed: u64, jobs: usize) {
    println!("== Telemetry: metrics registry over {cycles} cycles ==");
    let mut r = run_paper_experiment_telemetered(cycles, seed);
    // A short kernel-hosted pass with wall-clock profiling enabled feeds
    // the sim-kernel span metrics.
    let kernel_cycles = cycles.min(20_000);
    let kr = run_on_kernel_profiled(
        build_paper_bus(kernel_cycles, seed),
        None,
        kernel_cycles,
        SimTime::from_ns(10),
        true,
    )
    .expect("kernel-hosted run succeeds");
    let t = r.session.telemetry_mut().expect("telemetry enabled");
    t.record_kernel(&kr.kernel.stats(), kr.kernel.profile(), &["ahb_bus"]);

    let t = r.session.finish_telemetry().expect("telemetry enabled");
    let perf = t.perf();
    println!(
        "bus utilization {:.1}%, {} handovers ({:.4}/cycle), mean arbitration latency {:.2} cycles",
        perf.utilization() * 100.0,
        perf.handovers(),
        perf.handover_rate(),
        perf.arbitration_latency().mean()
    );
    for (i, m) in perf.masters().iter().enumerate() {
        println!(
            "master {i}: {:>7} grant cycles, {:>6} transfers, {:>5} wait cycles, {:>6} request-wait cycles",
            m.grant_cycles, m.transfers_ok, m.wait_cycles, m.request_wait_cycles
        );
    }
    fs::write("results/telemetry.jsonl", t.to_jsonl()).expect("write results/telemetry.jsonl");
    fs::write("results/telemetry.csv", t.to_csv()).expect("write results/telemetry.csv");
    fs::write("results/telemetry.prom", t.to_prometheus()).expect("write results/telemetry.prom");
    println!("-> results/telemetry.jsonl, results/telemetry.csv, results/telemetry.prom");

    let sweep_cycles = cycles.min(100_000);
    println!("seed sweep ({sweep_cycles} cycles each, {jobs} jobs):");
    for s in telemetry_seed_sweep(sweep_cycles, seed, SWEEP_SEEDS as u64, jobs) {
        println!(
            "  seed {:>6}: utilization {:>5.1}%, {:>5} handovers, arb latency {:.2} cycles, {:.3} uJ",
            s.seed,
            s.utilization * 100.0,
            s.handovers,
            s.arb_latency_mean,
            s.total_energy * 1e6
        );
    }
    println!();
}

/// Measures what telemetry costs: functional-only vs power session with
/// telemetry disabled (the default) vs enabled, and how the threaded
/// seed sweep scales with `--jobs`. Writes `BENCH_telemetry.json`.
fn telemetry_overhead(cycles: u64, seed: u64, jobs: usize) {
    println!("== Telemetry overhead over {cycles} cycles ==");
    let cfg = AnalysisConfig::paper_testbench();
    let mut bus = build_paper_bus(cycles, seed);
    let t0 = Instant::now();
    bus.run(cycles);
    let functional = t0.elapsed().as_secs_f64();

    let mut bus = build_paper_bus(cycles, seed);
    let mut session = PowerSession::with_telemetry(&cfg, TelemetryConfig::default());
    let t0 = Instant::now();
    session.run(&mut bus, cycles);
    let disabled = t0.elapsed().as_secs_f64();

    let mut bus = build_paper_bus(cycles, seed);
    let tcfg = TelemetryConfig::enabled(PaperTestbench::LABEL).with_seed(seed);
    let mut session = PowerSession::with_telemetry(&cfg, tcfg);
    let t0 = Instant::now();
    session.run(&mut bus, cycles);
    let enabled = t0.elapsed().as_secs_f64();
    session.finish_telemetry();

    let enabled_pct = (enabled / disabled - 1.0) * 100.0;
    println!("functional only:      {functional:.4} s");
    println!(
        "power session (telemetry off): {disabled:.4} s ({:.2}x functional)",
        disabled / functional
    );
    println!("power session (telemetry on):  {enabled:.4} s ({enabled_pct:+.1}% vs off)");

    // The threaded seed sweep: serial baseline vs `--jobs` workers over
    // the same four telemetered runs.
    let sweep_cycles = cycles.min(200_000);
    let t0 = Instant::now();
    let serial = telemetry_seed_sweep(sweep_cycles, seed, SWEEP_SEEDS as u64, 1);
    let sweep_serial = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let threaded = telemetry_seed_sweep(sweep_cycles, seed, SWEEP_SEEDS as u64, jobs);
    let sweep_jobs = t0.elapsed().as_secs_f64();
    for (s, p) in serial.iter().zip(&threaded) {
        assert_eq!(
            s.total_energy.to_bits(),
            p.total_energy.to_bits(),
            "seed {} diverged across job counts",
            s.seed
        );
    }
    println!(
        "seed sweep ({} seeds x {sweep_cycles} cycles): {sweep_serial:.4} s serial, {sweep_jobs:.4} s with {jobs} jobs ({:.2}x)",
        SWEEP_SEEDS,
        sweep_serial / sweep_jobs
    );
    let json = format!(
        "{{\n  \"cycles\": {cycles},\n  \"seed\": {seed},\n  \"jobs\": {jobs},\n  \"functional_s\": {functional:.6},\n  \"telemetry_disabled_s\": {disabled:.6},\n  \"telemetry_enabled_s\": {enabled:.6},\n  \"instrumentation_ratio\": {:.4},\n  \"enabled_overhead_pct\": {enabled_pct:.2},\n  \"seed_sweep_seeds\": {},\n  \"seed_sweep_cycles\": {sweep_cycles},\n  \"seed_sweep_serial_s\": {sweep_serial:.6},\n  \"seed_sweep_jobs_s\": {sweep_jobs:.6},\n  \"seed_sweep_speedup\": {:.4}\n}}\n",
        disabled / functional,
        SWEEP_SEEDS,
        sweep_serial / sweep_jobs
    );
    fs::write("BENCH_telemetry.json", json).expect("write BENCH_telemetry.json");
    println!("-> BENCH_telemetry.json\n");
}

/// `repro events`: a sliced offline run with the structured event bus
/// enabled. Writes `results/events.jsonl` and self-checks it: every
/// line must be valid JSON, and every `AnomalyFlagged` must link
/// through an `EnergyBooked` verdict of the same window to at least one
/// `TxnComplete` of the same window and slice — the causal chain the
/// dashboard's drill-down renders. Exits 1 on any failure.
fn events_cmd(cycles: u64, seed: u64, slice_cycles: u64, inject: Option<&str>) {
    use ahbpower::telemetry::{
        events_to_jsonl, AnomalyConfig, EventBus, EventKind, ExportMeta, DEFAULT_EVENT_CAPACITY,
    };
    use ahbpower_bench::Injection;
    use std::sync::Arc;

    let n_slices = (cycles / slice_cycles).max(4);
    // Default to a mid-run fault so the causal self-check is never
    // vacuous; `--inject` overrides block/factor/slice.
    let inject = match inject {
        Some(spec) => Injection::parse(spec)
            .unwrap_or_else(|| usage(&format!("bad --inject {spec} (block:factor[@slice])"))),
        None => Injection {
            block: ahbpower::SubBlock::Arb,
            factor: 3.0,
            at_slice: n_slices / 2,
        },
    };
    println!(
        "== Structured events: {n_slices} slices x {slice_cycles} cycles, inject {:?} x{} @ slice {} ==",
        inject.block, inject.factor, inject.at_slice
    );

    let anomaly = AnomalyConfig::default();
    let warmup = slice_cycles / anomaly.window_cycles + 4;
    // The drain runs once per slice, so the ring must hold a whole
    // slice's events (bounded by one TxnComplete per cycle plus the
    // per-window verdict train) regardless of --slice-cycles.
    let bus_events = EventBus::shared(DEFAULT_EVENT_CAPACITY.max(2 * slice_cycles as usize));
    let acfg = AnalysisConfig::paper_testbench();
    let tcfg = TelemetryConfig::enabled("events")
        .with_seed(seed)
        .with_anomaly(anomaly.with_warmup_windows(warmup))
        .with_events(Arc::clone(&bus_events));
    let mut session = PowerSession::with_telemetry(&acfg, tcfg);
    let mut log = Vec::new();
    let mut cursor = 0u64;
    let mut dropped = 0u64;
    for slice in 0..n_slices {
        if inject.at_slice == slice {
            session.scale_model_block(inject.block, inject.factor);
        }
        let mut bus = build_paper_bus(slice_cycles, seed + slice);
        session.begin_slice(slice);
        session.run(&mut bus, slice_cycles);
        session.end_slice();
        loop {
            let batch = bus_events.read_since(cursor, 4096);
            cursor = batch.next;
            dropped += batch.dropped;
            if batch.events.is_empty() {
                break;
            }
            log.extend(batch.events);
        }
    }

    let mut counts = [0u64; EventKind::ALL.len()];
    for e in &log {
        counts[e.kind as usize] += 1;
    }
    for kind in EventKind::ALL {
        println!("  {:<16} {:>8}", kind.name(), counts[kind as usize]);
    }
    if dropped > 0 {
        println!("  (ring dropped {dropped} events before the drain)");
    }

    let mut failures = 0u32;
    let flagged: Vec<_> = log
        .iter()
        .filter(|e| e.kind == EventKind::AnomalyFlagged)
        .collect();
    if flagged.is_empty() {
        eprintln!("causal check: no AnomalyFlagged events despite the injected fault");
        failures += 1;
    }
    for f in &flagged {
        let booked = log
            .iter()
            .any(|e| e.kind == EventKind::EnergyBooked && e.window == f.window);
        let txn = log.iter().any(|e| {
            e.kind == EventKind::TxnComplete && e.window == f.window && e.slice == f.slice
        });
        if !booked {
            eprintln!(
                "causal check: window {} flagged without EnergyBooked",
                f.window
            );
            failures += 1;
        }
        if !txn {
            eprintln!(
                "causal check: window {} (slice {}) flagged without a TxnComplete",
                f.window, f.slice
            );
            failures += 1;
        }
    }
    if failures == 0 && !flagged.is_empty() {
        println!(
            "causal check: {} flagged window(s) each link to EnergyBooked + TxnComplete",
            flagged.len()
        );
    }

    let jsonl = events_to_jsonl(
        &log,
        &ExportMeta {
            scenario: "events".to_string(),
            cycles: n_slices * slice_cycles,
            seed,
        },
    );
    for (i, line) in jsonl.lines().enumerate() {
        if let Err(e) = validate_json(line) {
            eprintln!("events.jsonl line {}: invalid JSON: {e}", i + 1);
            failures += 1;
            break;
        }
    }
    fs::write("results/events.jsonl", &jsonl).expect("write results/events.jsonl");
    println!(
        "-> results/events.jsonl ({} events, {} bytes)\n",
        log.len(),
        jsonl.len()
    );
    if failures > 0 {
        eprintln!("events: {failures} check(s) failed");
        std::process::exit(1);
    }
}

/// Timing repetitions per variant in `events-overhead` (fastest wins).
const OVERHEAD_REPS: usize = 25;

/// Median of a non-empty sample, sorting in place.
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("timing ratios are finite"));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

/// `repro events-overhead`: what the structured event ring costs. Runs
/// the same telemetered workload three ways — no tap attached, tap
/// attached with the ring disabled (the cold-atomic path), and fully
/// enabled — then reports ns/cycle, the deltas, and the enabled ring's
/// publish rate. Each variant runs [`OVERHEAD_REPS`] times round-robin;
/// ns/cycle figures keep the fastest pass (the standard noise-robust
/// estimator for deterministic workloads), while the overhead
/// percentages are the median of per-round ratios: the three variants
/// of one round run back-to-back inside the same stretch of machine
/// time, so slow-host noise cancels in the ratio instead of biasing
/// whichever variant's minimum landed in a quiet window. Writes
/// `BENCH_events.json`.
fn events_overhead(cycles: u64, seed: u64) {
    use ahbpower::telemetry::{AnomalyConfig, EventBus, DEFAULT_EVENT_CAPACITY};
    use std::sync::Arc;

    println!(
        "== Event-bus overhead over {cycles} cycles ({OVERHEAD_REPS} reps; ns/cycle = min, % = median per-round ratio) =="
    );
    let acfg = AnalysisConfig::paper_testbench();
    let label = PaperTestbench::LABEL;

    // All three variants carry the anomaly detector, like every real
    // event-ring deployment (serve, `repro events`): without it the tap
    // falls back to its own per-cycle window accounting and the bench
    // would charge the ring for work the product config never does.
    let anomaly = || AnomalyConfig::default().with_warmup_windows(4);
    let run_no_tap = || {
        let mut bus = build_paper_bus(cycles, seed);
        let tcfg = TelemetryConfig::enabled(label)
            .with_seed(seed)
            .with_anomaly(anomaly());
        let mut session = PowerSession::with_telemetry(&acfg, tcfg);
        let t0 = Instant::now();
        session.run(&mut bus, cycles);
        t0.elapsed().as_secs_f64()
    };
    let run_with_ring = |enabled: bool| {
        let ring = EventBus::shared(DEFAULT_EVENT_CAPACITY);
        ring.set_enabled(enabled);
        let mut bus = build_paper_bus(cycles, seed);
        let tcfg = TelemetryConfig::enabled(label)
            .with_seed(seed)
            .with_anomaly(anomaly())
            .with_events(Arc::clone(&ring));
        let mut session = PowerSession::with_telemetry(&acfg, tcfg);
        let t0 = Instant::now();
        session.begin_slice(0);
        session.run(&mut bus, cycles);
        session.end_slice();
        (t0.elapsed().as_secs_f64(), ring.published())
    };

    // Round-robin the variants so a slow stretch of machine time hits
    // all three roughly equally instead of biasing one delta.
    let mut no_tap = f64::INFINITY;
    let mut disabled = f64::INFINITY;
    let mut enabled = f64::INFINITY;
    let mut disabled_ratios = Vec::with_capacity(OVERHEAD_REPS);
    let mut enabled_ratios = Vec::with_capacity(OVERHEAD_REPS);
    let mut published = 0u64;
    for _ in 0..OVERHEAD_REPS {
        let t_no = run_no_tap();
        let (t_dis, _) = run_with_ring(false);
        let (t_en, p) = run_with_ring(true);
        no_tap = no_tap.min(t_no);
        disabled = disabled.min(t_dis);
        enabled = enabled.min(t_en);
        disabled_ratios.push(t_dis / t_no);
        enabled_ratios.push(t_en / t_no);
        published = p;
    }

    let no_tap_ns = no_tap * 1e9 / cycles as f64;
    let disabled_ns = disabled * 1e9 / cycles as f64;
    let enabled_ns = enabled * 1e9 / cycles as f64;
    let disabled_pct = (median(&mut disabled_ratios) - 1.0) * 100.0;
    let enabled_pct = (median(&mut enabled_ratios) - 1.0) * 100.0;
    let events_per_sec = published as f64 / enabled;
    println!("no event tap:        {no_tap_ns:>7.2} ns/cycle");
    println!("tap, ring disabled:  {disabled_ns:>7.2} ns/cycle ({disabled_pct:+.2}%)");
    println!(
        "tap, ring enabled:   {enabled_ns:>7.2} ns/cycle ({enabled_pct:+.2}%), {published} events ({:.2} Mevents/s)",
        events_per_sec / 1e6
    );
    let json = format!(
        "{{\n  \"cycles\": {cycles},\n  \"seed\": {seed},\n  \"reps\": {OVERHEAD_REPS},\n  \"no_tap_ns_per_cycle\": {no_tap_ns:.4},\n  \"disabled_ns_per_cycle\": {disabled_ns:.4},\n  \"enabled_ns_per_cycle\": {enabled_ns:.4},\n  \"disabled_overhead_pct\": {disabled_pct:.3},\n  \"enabled_overhead_pct\": {enabled_pct:.3},\n  \"events_published\": {published},\n  \"events_per_sec\": {events_per_sec:.0}\n}}\n",
    );
    fs::write("BENCH_events.json", json).expect("write BENCH_events.json");
    println!("-> BENCH_events.json\n");
}

/// What `observatory-overhead` allows the store to cost before the
/// command exits 1 — the budget stamped into `BENCH_observatory.json`.
const OBSERVATORY_CEILING_PCT: f64 = 5.0;

/// `repro observatory-overhead`: what the multi-resolution power
/// observatory costs. Runs the same telemetered workload (anomaly
/// detector attached, like every serve deployment) two ways — without
/// and with the observatory ingesting every window into its three
/// retention levels — then reports ns/cycle and the overhead against
/// the [`OBSERVATORY_CEILING_PCT`] budget. Same noise protocol as
/// `events-overhead`: [`OVERHEAD_REPS`] reps round-robin, minima for
/// ns/cycle, median per-round ratio for the percentage. Writes
/// `BENCH_observatory.json`; exits 1 when the ceiling is blown.
fn observatory_overhead(cycles: u64, seed: u64) {
    use ahbpower::telemetry::{AnomalyConfig, ObservatoryConfig};

    println!(
        "== Observatory overhead over {cycles} cycles ({OVERHEAD_REPS} reps; ns/cycle = min, % = median per-round ratio) =="
    );
    let acfg = AnalysisConfig::paper_testbench();
    let label = PaperTestbench::LABEL;
    let anomaly = || AnomalyConfig::default().with_warmup_windows(4);
    let run_base = || {
        let mut bus = build_paper_bus(cycles, seed);
        let tcfg = TelemetryConfig::enabled(label)
            .with_seed(seed)
            .with_anomaly(anomaly());
        let mut session = PowerSession::with_telemetry(&acfg, tcfg);
        let t0 = Instant::now();
        session.run(&mut bus, cycles);
        t0.elapsed().as_secs_f64()
    };
    let run_obs = || {
        let mut bus = build_paper_bus(cycles, seed);
        let tcfg = TelemetryConfig::enabled(label)
            .with_seed(seed)
            .with_anomaly(anomaly())
            .with_observatory(ObservatoryConfig::default());
        let mut session = PowerSession::with_telemetry(&acfg, tcfg);
        let t0 = Instant::now();
        session.run(&mut bus, cycles);
        let elapsed = t0.elapsed().as_secs_f64();
        let windows = session
            .telemetry()
            .and_then(|t| t.observatory())
            .map_or(0, |o| o.windows_ingested());
        (elapsed, windows)
    };

    let mut base = f64::INFINITY;
    let mut obs = f64::INFINITY;
    let mut ratios = Vec::with_capacity(OVERHEAD_REPS);
    let mut windows = 0u64;
    for _ in 0..OVERHEAD_REPS {
        let t_base = run_base();
        let (t_obs, w) = run_obs();
        base = base.min(t_base);
        obs = obs.min(t_obs);
        ratios.push(t_obs / t_base);
        windows = w;
    }
    let base_ns = base * 1e9 / cycles as f64;
    let obs_ns = obs * 1e9 / cycles as f64;
    let overhead_pct = (median(&mut ratios) - 1.0) * 100.0;
    let within = overhead_pct <= OBSERVATORY_CEILING_PCT;
    println!("anomaly only:          {base_ns:>7.2} ns/cycle");
    println!(
        "anomaly + observatory: {obs_ns:>7.2} ns/cycle ({overhead_pct:+.2}%), {windows} windows ingested"
    );
    println!(
        "ceiling: {OBSERVATORY_CEILING_PCT:.1}% -> {}",
        if within { "within budget" } else { "EXCEEDED" }
    );
    let json = format!(
        "{{\n  \"cycles\": {cycles},\n  \"seed\": {seed},\n  \"reps\": {OVERHEAD_REPS},\n  \"baseline_ns_per_cycle\": {base_ns:.4},\n  \"observatory_ns_per_cycle\": {obs_ns:.4},\n  \"overhead_pct\": {overhead_pct:.3},\n  \"ceiling_pct\": {OBSERVATORY_CEILING_PCT:.1},\n  \"within_ceiling\": {within},\n  \"windows_ingested\": {windows}\n}}\n"
    );
    fs::write("BENCH_observatory.json", json).expect("write BENCH_observatory.json");
    println!("-> BENCH_observatory.json\n");
    if !within {
        std::process::exit(1);
    }
}

/// `repro trace`: transaction-level energy attribution on the paper
/// testbench and the SoC scenario. Writes Chrome trace-event JSON and
/// energy-flamegraph folded stacks per workload, prints the per-master
/// split and the `--top N` attribution cells, and self-checks both the
/// JSON well-formedness and energy conservation (attributed total ==
/// instruction-ledger total within 1e-9 J). Exits 1 on any failure.
fn trace_cmd(cycles: u64, seed: u64, top: usize, ring_capacity: usize) {
    use ahbpower::fmt_energy;
    use ahbpower::telemetry::{to_folded, to_trace_events, TraceEventMeta};

    println!("== Transaction-level energy attribution over {cycles} cycles ==");
    let mut failures = 0u32;
    type TracedRun = fn(u64, u64, usize) -> PaperRun;
    let workloads: [(&str, &str, &str, TracedRun); 2] = [
        (
            "paper_testbench",
            "results/trace.json",
            "results/energy.folded",
            run_paper_experiment_traced,
        ),
        (
            "soc_scenario",
            "results/trace_soc.json",
            "results/energy_soc.folded",
            run_soc_experiment_traced,
        ),
    ];
    for (label, json_file, folded_file, run_traced) in workloads {
        let t0 = Instant::now();
        let mut r = run_traced(cycles, seed, ring_capacity);
        r.session.finish_txn();
        let tracer = r.session.txn_tracer().expect("trace runs carry a tracer");
        let table = tracer.attribution();
        println!(
            "-- {label}: {} cycles in {:.2?} --",
            table.cycles(),
            t0.elapsed()
        );
        println!(
            "transactions: {} completed, {} in ring (capacity {}), {} evicted",
            tracer.completed(),
            tracer.len(),
            tracer.capacity(),
            tracer.evicted()
        );
        let total = table.total_energy();
        for (m, e) in table.per_master_energy().iter().enumerate() {
            println!(
                "  M{m}: {:>12} ({:>5.1}%)",
                fmt_energy(*e),
                if total > 0.0 { e / total * 100.0 } else { 0.0 }
            );
        }
        println!("top {top} attribution cells (master, slave, instruction):");
        for row in table.top_rows(top) {
            let slave = row
                .slave
                .map(|s| format!("S{}", s.0))
                .unwrap_or_else(|| "default".to_string());
            println!(
                "  M{} {:<8} {:<12} {:>12} (arb {:>5.1}%)",
                row.master.0,
                slave,
                row.instruction.name(),
                fmt_energy(row.energy.total()),
                if row.energy.total() > 0.0 {
                    row.energy.arb / row.energy.total() * 100.0
                } else {
                    0.0
                }
            );
        }

        let meta = TraceEventMeta {
            scenario: label.to_string(),
            n_masters: r.config.n_masters,
            period_ps: r.config.period_ps(),
            seed,
        };
        let json = to_trace_events(tracer.records(), r.session.trace_points(), &meta);
        let folded = to_folded(table);
        fs::write(json_file, &json).expect("write trace-event JSON");
        fs::write(folded_file, &folded).expect("write folded stacks");

        match validate_json(&json) {
            Ok(()) => println!("{label}: valid json ({} trace-event bytes)", json.len()),
            Err(e) => {
                eprintln!("{label}: INVALID trace-event JSON: {e}");
                failures += 1;
            }
        }
        let ledger_total = r.session.ledger().total_energy();
        let drift = (total - ledger_total).abs();
        if drift <= 1e-9 {
            println!(
                "{label}: conservation ok (attributed {} == ledger {}, drift {drift:.3e} J)",
                fmt_energy(total),
                fmt_energy(ledger_total)
            );
        } else {
            eprintln!(
                "{label}: CONSERVATION VIOLATED: attributed {total} J vs ledger {ledger_total} J (drift {drift:.3e} J)"
            );
            failures += 1;
        }
        println!("-> {json_file}, {folded_file}\n");
    }
    if failures > 0 {
        eprintln!("trace: {failures} check(s) failed");
        std::process::exit(1);
    }
}

fn table1(r: &mut PaperRun) {
    println!("== Table 1: instruction energy analysis ==");
    println!(
        "({} cycles = {:.3} ms simulated at 100 MHz)",
        r.cycles,
        r.cycles as f64 * 10e-9 * 1e3
    );
    print!("{}", report::table1_text(r.session.ledger()));
    fs::write("results/table1.csv", report::table1_csv(r.session.ledger()))
        .expect("write results/table1.csv");
    println!("-> results/table1.csv\n");
}

fn fig(r: &mut PaperRun, which: u8) {
    let horizon = 4e-6; // the paper plots the first 4 us
    let pts: Vec<TracePoint> = r.session.trace().points_before(horizon).to_vec();
    let (title, file, pick): (&str, &str, fn(&TracePoint) -> f64) = match which {
        3 => ("total AHB power", "results/fig3_total_power.csv", |p| {
            p.total_w
        }),
        4 => ("arbiter power", "results/fig4_arbiter_power.csv", |p| {
            p.arb_w
        }),
        5 => ("M2S mux power", "results/fig5_m2s_power.csv", |p| p.m2s_w),
        _ => unreachable!("fig() only handles 3, 4, 5"),
    };
    println!("== Fig {which}: {title}, first 4 us ==");
    print!("{}", report::trace_ascii(&pts, pick, 50));
    fs::write(file, report::trace_csv(&pts)).expect("write figure CSV");
    println!("-> {file}\n");
}

fn fig6(r: &mut PaperRun) {
    println!("== Fig 6: AHB sub-block power contributions ==");
    print!("{}", r.session.blocks());
    fs::write(
        "results/fig6_blocks.csv",
        report::fig6_csv(r.session.blocks()),
    )
    .expect("write results/fig6_blocks.csv");
    println!("-> results/fig6_blocks.csv\n");
}

/// The four AHB sub-block characterizations are independent gate-level
/// experiments with fixed seeds, so they run as four sweep points; the
/// ordered merge matches `fit_ahb_power_model`'s serial output exactly.
fn validation(jobs: usize) {
    println!("== Sec 5.1: macromodel validation vs gate level (SIS substitute) ==");
    let cfg = AnalysisConfig::paper_testbench();
    let tech = cfg.tech();
    let t0 = Instant::now();
    #[derive(Clone, Copy)]
    enum Fit {
        Decoder,
        M2sMux,
        S2mMux,
        Arbiter,
    }
    let fits = [Fit::Decoder, Fit::M2sMux, Fit::S2mMux, Fit::Arbiter];
    let validations: Vec<ModelValidation> = SweepRunner::new(jobs).run(&fits, |_, f| match f {
        Fit::Decoder => fit_decoder_model(cfg.n_slaves.max(2), &tech).1,
        Fit::M2sMux => {
            fit_mux_model(
                (ADDR_BITS + CTRL_BITS) as usize,
                cfg.n_masters.max(2),
                24,
                2003,
                &tech,
            )
            .1
        }
        Fit::S2mMux => {
            fit_mux_model(
                (RDATA_BITS + RESP_BITS) as usize,
                cfg.n_slaves + 1,
                24,
                2004,
                &tech,
            )
            .1
        }
        Fit::Arbiter => fit_arbiter_model(cfg.n_masters.max(2), &tech).1,
    });
    print!("{}", report::validation_text(&validations));
    fs::write(
        "results/validation.csv",
        report::validation_csv(&validations),
    )
    .expect("write results/validation.csv");
    println!(
        "(characterization took {:.2?} on {jobs} jobs)",
        t0.elapsed()
    );
    println!("-> results/validation.csv\n");
}

fn styles(cycles: u64, seed: u64, jobs: usize) {
    println!("== Fig 1: power-model styles (accuracy) over {cycles} cycles ==");
    let results = compare_probe_styles_parallel(cycles, seed, jobs);
    let reference = results[0].1;
    let mut csv = String::from("style,total_uj,error_vs_inline_pct\n");
    for (style, e) in &results {
        let err = (e - reference) / reference * 100.0;
        println!("{style:<8} {:>10.3} uJ  ({err:+.2}% vs inline)", e * 1e6);
        csv.push_str(&format!("{style},{:.5},{err:.3}\n", e * 1e6));
    }
    fs::write("results/probe_styles.csv", csv).expect("write results/probe_styles.csv");
    println!("-> results/probe_styles.csv\n");
}

fn overhead(cycles: u64, seed: u64) {
    println!("== Sec 6: simulation-time overhead of power analysis ==");
    // Functional-only run.
    let mut bus = build_paper_bus(cycles, seed);
    let t0 = Instant::now();
    bus.run(cycles);
    let functional = t0.elapsed();
    // Instrumented run (fresh bus, same traffic).
    let cfg = AnalysisConfig::paper_testbench();
    let mut bus = build_paper_bus(cycles, seed);
    let mut session = PowerSession::new(&cfg);
    let t0 = Instant::now();
    session.run(&mut bus, cycles);
    let instrumented = t0.elapsed();
    let ratio = instrumented.as_secs_f64() / functional.as_secs_f64();
    println!("functional:   {functional:.2?}  ({cycles} cycles)");
    println!("instrumented: {instrumented:.2?}");
    println!("ratio: {ratio:.2}x (paper reports ~2x for its SystemC setup)");
    fs::write(
        "results/overhead.csv",
        format!(
            "cycles,functional_s,instrumented_s,ratio\n{cycles},{:.6},{:.6},{ratio:.4}\n",
            functional.as_secs_f64(),
            instrumented.as_secs_f64()
        ),
    )
    .expect("write results/overhead.csv");
    println!("-> results/overhead.csv\n");
}

/// Cycles a sweep actually simulates: each point runs its bus for `cycles`,
/// and FSM-style points add a half-length calibration run.
fn simulated_cycles(points: &[SweepPoint]) -> u64 {
    points
        .iter()
        .map(|p| match p.style {
            ProbeStyle::Fsm => p.cycles + p.cycles / 2,
            _ => p.cycles,
        })
        .sum()
}

/// The standard seed×style sweep: prints the merged report and writes
/// `results/sweep.csv` (byte-identical for any `--jobs` value).
fn sweep(cycles: u64, seed: u64, jobs: usize) {
    let points = sweep_grid(cycles, seed, SWEEP_SEEDS);
    println!(
        "== Sweep: {SWEEP_SEEDS} seeds x {} styles, {cycles} cycles each, {jobs} jobs ==",
        points.len() / SWEEP_SEEDS
    );
    let t0 = Instant::now();
    let outcomes = run_sweep(&points, jobs);
    let elapsed = t0.elapsed();
    print!("{}", sweep_report(&outcomes));
    println!(
        "({} points in {elapsed:.2?}, {:.1} Mcycles/s aggregate)",
        points.len(),
        simulated_cycles(&points) as f64 / 1e6 / elapsed.as_secs_f64()
    );
    fs::write("results/sweep.csv", sweep_csv(&outcomes)).expect("write results/sweep.csv");
    println!("-> results/sweep.csv\n");
}

/// Times the same sweep at every power-of-two job count up to
/// `max(jobs, available_jobs())`, checks every output is byte-identical
/// to the serial run, and writes `BENCH_sweep.json`. Timing each job
/// count separately (instead of one serial-vs-parallel pair) makes a
/// core-starved box self-evident: on a 1-core runner the ladder is just
/// `[1]` and any serial-vs-parallel delta is pure noise (see
/// EXPERIMENTS.md E13).
fn sweep_bench(cycles: u64, seed: u64, jobs: usize) {
    let points = sweep_grid(cycles, seed, SWEEP_SEEDS);
    let total_cycles = simulated_cycles(&points);
    let max_jobs = jobs.max(available_jobs());
    let mut ladder = vec![1usize];
    let mut j = 2;
    while j < max_jobs {
        ladder.push(j);
        j *= 2;
    }
    if max_jobs > 1 {
        ladder.push(max_jobs);
    }
    println!(
        "== Sweep bench: {} points x {cycles} cycles, job counts {ladder:?} ==",
        points.len()
    );
    let t0 = Instant::now();
    let serial = run_sweep(&points, 1);
    let serial_s = t0.elapsed().as_secs_f64();
    let serial_csv = sweep_csv(&serial);
    let mut rows = vec![(1usize, serial_s)];
    for &j in &ladder[1..] {
        let t0 = Instant::now();
        let outcomes = run_sweep(&points, j);
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(
            sweep_csv(&outcomes) == serial_csv,
            "{j}-job sweep diverged from serial"
        );
        rows.push((j, elapsed));
    }
    let mut per_jobs = String::new();
    for (i, &(j, s)) in rows.iter().enumerate() {
        let ns = s * 1e9 / total_cycles as f64;
        let speedup = serial_s / s;
        println!("{j:>3} job(s): {s:.3} s  ({ns:.1} ns/cycle, {speedup:.2}x vs serial)");
        if i > 0 {
            per_jobs.push_str(",\n");
        }
        per_jobs.push_str(&format!(
            "    {{\"jobs\": {j}, \"seconds\": {s:.6}, \"ns_per_cycle\": {ns:.2}, \"speedup\": {speedup:.4}}}"
        ));
    }
    let &(best_jobs, parallel_s) = rows.last().expect("ladder is non-empty");
    let speedup = serial_s / parallel_s;
    let serial_ns = serial_s * 1e9 / total_cycles as f64;
    let parallel_ns = parallel_s * 1e9 / total_cycles as f64;
    println!("outputs byte-identical across all job counts: true");
    let json = format!(
        "{{\n  \"cycles_per_point\": {cycles},\n  \"points\": {},\n  \"simulated_cycles\": {total_cycles},\n  \"seed\": {seed},\n  \"jobs\": {best_jobs},\n  \"available_cores\": {},\n  \"serial_s\": {serial_s:.6},\n  \"parallel_s\": {parallel_s:.6},\n  \"speedup\": {speedup:.4},\n  \"serial_ns_per_cycle\": {serial_ns:.2},\n  \"parallel_ns_per_cycle\": {parallel_ns:.2},\n  \"outputs_identical\": true,\n  \"per_job_count\": [\n{per_jobs}\n  ]\n}}\n",
        points.len(),
        available_jobs()
    );
    fs::write("BENCH_sweep.json", json).expect("write BENCH_sweep.json");
    println!("-> BENCH_sweep.json\n");
}

/// `repro record`: runs the paper testbench once with the activity
/// recorder attached and writes the compact trace to `--out` (default
/// `results/replay_trace.bin`). Self-checks the round trip: the written
/// file is re-read and a same-model replay must reproduce the live
/// ledger total bit for bit, else the process exits 1.
fn record_cmd(cycles: u64, seed: u64, out: Option<&str>) {
    use ahbpower::{ActivityTrace, ReplayEngine};
    let path = out.unwrap_or("results/replay_trace.bin");
    println!("== Record: activity trace over {cycles} cycles ==");
    let t0 = Instant::now();
    let (run, trace) = run_paper_experiment_recorded(cycles, seed);
    let elapsed = t0.elapsed();
    let bytes = trace.to_bytes();
    fs::write(path, &bytes).expect("write activity trace");
    println!(
        "recorded {} cycles in {elapsed:.2?} ({:.1} Mcycles/s), {} bytes ({:.2} B/cycle)",
        trace.cycles(),
        cycles as f64 / 1e6 / elapsed.as_secs_f64(),
        bytes.len(),
        bytes.len() as f64 / cycles as f64
    );
    let reread = fs::read(path).expect("re-read activity trace");
    let trace = match ActivityTrace::from_bytes(&reread) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("record: written trace failed to re-parse: {e}");
            std::process::exit(1);
        }
    };
    let engine = ReplayEngine::new(&replay_variant_model(&run.config, 0));
    let outcome = engine.replay(&trace);
    let live = run.session.total_energy();
    if outcome.total_energy().to_bits() == live.to_bits() {
        println!(
            "golden check: replay reproduces the live ledger bit for bit ({:.6e} J)",
            live
        );
    } else {
        eprintln!(
            "record: GOLDEN CHECK FAILED: replay {:.17e} J != live {:.17e} J",
            outcome.total_energy(),
            live
        );
        std::process::exit(1);
    }
    println!("-> {path}\n");
}

/// `repro replay`: loads a recorded trace and re-estimates energy for
/// `--variants` coefficient variants (variant 0 is the unmodified
/// model) across `--jobs` threads, writing one JSON line per variant to
/// `--out` (default `results/replay.jsonl`). The identity variant must
/// reproduce the trace's stamped live total within 1e-9 J, else exit 1;
/// `--inject block:factor` perturbs the identity model and
/// `--expect-mismatch` inverts the verdict — the negative self-test
/// proving the golden check actually trips.
fn replay_cmd(
    file: &str,
    variants: usize,
    jobs: usize,
    out: &str,
    inject: Option<&str>,
    expect_mismatch: bool,
) {
    use ahbpower::{ActivityTrace, AhbPowerModel};
    use ahbpower_bench::Injection;
    let bytes = match fs::read(file) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("replay: cannot read {file}: {e} (run `repro record` first)");
            std::process::exit(1);
        }
    };
    let trace = match ActivityTrace::from_bytes(&bytes) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("replay: {file} is not a valid activity trace: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "== Replay: {} recorded cycles x {variants} variants, {jobs} jobs ==",
        trace.cycles()
    );
    let cfg = AnalysisConfig::paper_testbench();
    let mut models: Vec<AhbPowerModel> = (0..variants)
        .map(|k| replay_variant_model(&cfg, k))
        .collect();
    if let Some(spec) = inject {
        let inj = Injection::parse(spec)
            .unwrap_or_else(|| usage(&format!("bad --inject {spec} (block:factor)")));
        models[0].scale_block(inj.block, inj.factor);
        println!(
            "(injected {:?} x{} into the identity variant)",
            inj.block, inj.factor
        );
    }
    let t0 = Instant::now();
    let outcomes = replay_sweep(&trace, &models, jobs);
    let elapsed = t0.elapsed().as_secs_f64();
    let replayed = trace.cycles() * variants as u64;
    println!(
        "replayed {replayed} cycle-evaluations in {:.2?} ({:.1} Mcycles/s)",
        t0.elapsed(),
        replayed as f64 / 1e6 / elapsed
    );
    let mut jsonl = String::new();
    for (k, o) in outcomes.iter().enumerate() {
        let (block, factor) = match replay_variant_spec(k) {
            Some((b, f)) => (b.name(), f),
            None => ("none", 1.0),
        };
        let b = o.blocks().totals();
        println!(
            "variant {k:>2} ({block:<4} x{factor:<4}): {:>12.6e} J",
            o.total_energy()
        );
        jsonl.push_str(&format!(
            "{{\"variant\":{k},\"block\":\"{block}\",\"factor\":{factor},\"total_j\":{:e},\"energy_bits\":{},\"dec_j\":{:e},\"m2s_j\":{:e},\"s2m_j\":{:e},\"arb_j\":{:e},\"cycles\":{}}}\n",
            o.total_energy(),
            o.total_energy().to_bits(),
            b.dec,
            b.m2s,
            b.s2m,
            b.arb,
            o.cycles()
        ));
    }
    for (i, line) in jsonl.lines().enumerate() {
        validate_json(line)
            .unwrap_or_else(|e| panic!("replay.jsonl line {}: invalid JSON: {e}", i + 1));
    }
    fs::write(out, &jsonl).expect("write replay results");
    println!("-> {out}");
    let golden = outcomes[0].total_energy();
    let drift = (golden - trace.live_total_j).abs();
    let ok = drift <= 1e-9;
    match (ok, expect_mismatch) {
        (true, false) => {
            println!(
                "golden check: identity replay matches the recorded run (drift {drift:.3e} J)\n"
            );
        }
        (false, true) => {
            println!("golden check: mismatch detected as expected (drift {drift:.3e} J)\n");
        }
        (true, true) => {
            eprintln!("replay: expected a golden mismatch but the identity replay matched");
            std::process::exit(1);
        }
        (false, false) => {
            eprintln!(
                "replay: GOLDEN CHECK FAILED: identity replay {golden:.17e} J vs recorded {:.17e} J (drift {drift:.3e} J)",
                trace.live_total_j
            );
            std::process::exit(1);
        }
    }
}

/// `repro replay-bench`: the trace-once / estimate-many numbers. Times
/// the plain instrumented simulation, the same run with the recorder
/// attached (record overhead), the branchless replay hot loop
/// (throughput), and a full `--variants`-wide coefficient sweep done
/// both ways — re-simulating vs replaying — then writes
/// `BENCH_replay.json`.
fn replay_bench(cycles: u64, seed: u64, variants: usize, jobs: usize) {
    use ahbpower::{ReplayEngine, ReplayOutcome};
    println!("== Replay bench: {cycles} cycles, {variants} variants, {jobs} jobs ==");
    let cfg = AnalysisConfig::paper_testbench();

    // Plain instrumented simulation (the baseline everything compares to).
    let mut bus = build_paper_bus(cycles, seed);
    let mut session = PowerSession::new(&cfg);
    let t0 = Instant::now();
    session.run(&mut bus, cycles);
    let sim_s = t0.elapsed().as_secs_f64();
    let live_total = session.total_energy();

    // Same run with the recorder tap attached (bus built outside the
    // timed region, symmetric with the baseline leg).
    let mut bus = build_paper_bus(cycles, seed);
    let mut recording = PowerSession::with_recorder(&cfg);
    let t0 = Instant::now();
    recording.run(&mut bus, cycles);
    let record_s = t0.elapsed().as_secs_f64();
    let record_pct = (record_s / sim_s - 1.0) * 100.0;
    let trace = recording.finish_recorder().expect("recorder attached");
    let trace_bytes = trace.to_bytes().len();

    // Replay hot-loop throughput: windows-off outcome reused across
    // reps, fastest pass wins (deterministic workload).
    let engine = ReplayEngine::new(&replay_variant_model(&cfg, 0));
    let mut out = ReplayOutcome::new();
    engine.replay_into(&trace, &mut out); // warm-up fills the buffers
    let mut replay_s = f64::INFINITY;
    for _ in 0..7 {
        let t0 = Instant::now();
        engine.replay_into(&trace, &mut out);
        replay_s = replay_s.min(t0.elapsed().as_secs_f64());
    }
    let golden_ok = out.total_energy().to_bits() == recording.total_energy().to_bits()
        && (out.total_energy() - live_total).abs() <= 1e-9;
    assert!(golden_ok, "replay diverged from the live ledger");
    let replay_cps = cycles as f64 / replay_s;

    // The sweep both ways: N fresh cycle-accurate simulations vs N
    // replays of the one recorded trace, same job count for both legs.
    let ks: Vec<usize> = (0..variants).collect();
    let runner = SweepRunner::new(jobs);
    let t0 = Instant::now();
    let resim: Vec<f64> = runner.run(&ks, |_, &k| {
        resimulate_variant(cycles, seed, k).total_energy()
    });
    let resim_s = t0.elapsed().as_secs_f64();
    let models: Vec<_> = ks.iter().map(|&k| replay_variant_model(&cfg, k)).collect();
    let t0 = Instant::now();
    let replayed = replay_sweep(&trace, &models, jobs);
    let sweep_replay_s = t0.elapsed().as_secs_f64();
    for (k, (sim_e, rep)) in resim.iter().zip(&replayed).enumerate() {
        assert_eq!(
            sim_e.to_bits(),
            rep.total_energy().to_bits(),
            "variant {k}: replay != fresh simulation"
        );
    }
    let speedup = resim_s / sweep_replay_s;

    let sim_ns = sim_s * 1e9 / cycles as f64;
    let record_ns = record_s * 1e9 / cycles as f64;
    let replay_ns = replay_s * 1e9 / cycles as f64;
    println!("simulate (instrumented): {sim_s:.4} s  ({sim_ns:.1} ns/cycle)");
    println!(
        "simulate + record:       {record_s:.4} s  ({record_ns:.1} ns/cycle, {record_pct:+.1}%)"
    );
    println!(
        "replay (1 variant):      {replay_s:.6} s  ({replay_ns:.2} ns/cycle, {:.1} Mcycles/s)",
        replay_cps / 1e6
    );
    println!(
        "trace: {trace_bytes} bytes ({:.2} B/cycle)",
        trace_bytes as f64 / cycles as f64
    );
    println!("{variants}-variant sweep: re-simulate {resim_s:.3} s vs replay {sweep_replay_s:.4} s -> {speedup:.1}x (all variants bit-identical)");
    let json = format!(
        "{{\n  \"cycles\": {cycles},\n  \"seed\": {seed},\n  \"variants\": {variants},\n  \"jobs\": {jobs},\n  \"available_cores\": {},\n  \"sim_ns_per_cycle\": {sim_ns:.2},\n  \"record_ns_per_cycle\": {record_ns:.2},\n  \"record_overhead_pct\": {record_pct:.2},\n  \"replay_ns_per_cycle\": {replay_ns:.4},\n  \"replay_cycles_per_sec\": {replay_cps:.0},\n  \"trace_bytes\": {trace_bytes},\n  \"trace_bytes_per_cycle\": {:.3},\n  \"resim_sweep_s\": {resim_s:.6},\n  \"replay_sweep_s\": {sweep_replay_s:.6},\n  \"sweep_speedup\": {speedup:.2},\n  \"golden_ok\": {golden_ok}\n}}\n",
        available_jobs(),
        trace_bytes as f64 / cycles as f64
    );
    fs::write("BENCH_replay.json", json).expect("write BENCH_replay.json");
    println!("-> BENCH_replay.json\n");
}

/// Dynamic power management study: clock-gating the arbiter FSM after N
/// quiet cycles (the paper's run-time optimization outlook). Each threshold
/// replays the same seed-deterministic traffic on its own thread.
fn dpm(cycles: u64, seed: u64, jobs: usize) {
    use ahbpower::{ClockGatePolicy, DpmProbe};
    println!("== DPM study: arbiter clock gating over {cycles} cycles ==");
    let cfg = AnalysisConfig::paper_testbench();
    let model = ahbpower::AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());
    let thresholds = [0u32, 2, 4, 8, 16];
    struct DpmRow {
        threshold: u32,
        gated_pct: f64,
        savings_pct: f64,
        wakes: u64,
        latency: u64,
    }
    let rows: Vec<DpmRow> = SweepRunner::new(jobs).run(&thresholds, |_, &t| {
        let mut bus = build_paper_bus(cycles, seed);
        let mut probe = DpmProbe::new(
            model.clone(),
            ClockGatePolicy {
                idle_threshold: t,
                wake_penalty: 1,
            },
        );
        for _ in 0..cycles {
            probe.observe(bus.step());
        }
        let r = probe.report();
        DpmRow {
            threshold: t,
            gated_pct: r.gated_cycles as f64 / r.cycles as f64 * 100.0,
            savings_pct: r.savings() * 100.0,
            wakes: r.wake_events,
            latency: r.added_latency_cycles,
        }
    });
    let mut csv = String::from("idle_threshold,gated_pct,clock_savings_pct,wakes,latency_cycles\n");
    for r in &rows {
        println!(
            "threshold {:>2}: gated {:>5.1}% of cycles, clock energy -{:>5.1}%, {:>6} wakes, +{} latency cycles",
            r.threshold, r.gated_pct, r.savings_pct, r.wakes, r.latency
        );
        csv.push_str(&format!(
            "{},{:.2},{:.2},{},{}\n",
            r.threshold, r.gated_pct, r.savings_pct, r.wakes, r.latency
        ));
    }
    fs::write("results/dpm.csv", csv).expect("write results/dpm.csv");
    println!("-> results/dpm.csv\n");
}

/// Address-bus coding study: replay a burst-heavy trace with binary vs
/// gray-coded addresses and compare the address-path energy — the kind of
/// early design decision the paper's methodology is built to evaluate.
/// The trace recordings and the four workload×coding replays parallelize.
fn coding(cycles: u64, seed: u64, jobs: usize) {
    use ahbpower::{InlineProbe, PowerProbe};
    use ahbpower_workloads::SocScenario;
    println!("== Address-coding study (binary vs gray) ==");
    // Two traffics: a DMA engine streaming sequential bursts (where coding
    // matters) and the interleaved SoC mix (where it should not).
    let dma_bus = || {
        ahbpower_ahb::AhbBusBuilder::new(ahbpower_ahb::AddressMap::evenly_spaced(2, 0x8000))
            .master(Box::new(ahbpower_ahb::ScriptedMaster::new(
                ahbpower_workloads::try_dma_script(
                    seed,
                    400,
                    0x0,
                    0x8000,
                    ahbpower_ahb::HBurst::Incr8,
                )
                .expect("dma script params valid"),
            )))
            .slave(Box::new(ahbpower_ahb::MemorySlave::new(0x8000, 0, 0)))
            .slave(Box::new(ahbpower_ahb::MemorySlave::new(0x8000, 0, 0)))
            .build()
            .expect("dma bus builds")
    };
    let soc_bus = || {
        SocScenario {
            seed,
            ..SocScenario::default()
        }
        .build()
        .expect("scenario builds")
    };
    let record = |mut bus: ahbpower_ahb::AhbBus| {
        let mut trace = Vec::new();
        let mut n = 0;
        while n < cycles && !bus.all_masters_done() {
            trace.push(*bus.step());
            n += 1;
        }
        trace
    };
    let workloads = ["dma-sequential", "soc-mixed"];
    let runner = SweepRunner::new(jobs);
    let recorded = runner.run(&[0usize, 1], |_, &w| match w {
        0 => record(dma_bus()),
        _ => record(soc_bus()),
    });
    let cfg = AnalysisConfig {
        n_masters: ahbpower_workloads::SocScenario::N_MASTERS,
        n_slaves: ahbpower_workloads::SocScenario::N_SLAVES,
        ..AnalysisConfig::paper_testbench()
    };
    let model = ahbpower::AhbPowerModel::new(cfg.n_masters, cfg.n_slaves, &cfg.tech());
    // Gray-code the *word* address: word-sequential traffic then moves a
    // single address line per beat (the byte offset stays binary).
    let gray = |x: u32| {
        let w = x >> 2;
        ((w ^ (w >> 1)) << 2) | (x & 3)
    };
    // Binary precedes gray within each workload; dec deltas rely on that.
    let combos = [(0usize, "binary"), (0, "gray"), (1, "binary"), (1, "gray")];
    let replayed = runner.run(&combos, |_, &(w, name)| {
        let mut probe = InlineProbe::new(model.clone());
        for snap in &recorded[w] {
            let mut s = *snap;
            if name == "gray" {
                s.haddr = gray(s.haddr);
            }
            probe.observe(&s);
        }
        let b = probe.fsm().blocks().totals();
        (probe.total_energy(), b.dec, b.m2s)
    });
    let mut csv = String::from("workload,coding,total_uj,dec_uj,m2s_uj\n");
    for (&(w, name), &(total, dec, m2s)) in combos.iter().zip(&replayed) {
        let workload = workloads[w];
        let dec_binary = replayed[w * 2].1;
        let delta = if name == "gray" && dec_binary > 0.0 {
            format!(" (addr-path {:+.1}%)", (dec / dec_binary - 1.0) * 100.0)
        } else {
            String::new()
        };
        println!(
            "{workload:<16} {name:<8} total {:>9.3} uJ | DEC {:>7.4} uJ | M2S {:>8.3} uJ{delta}",
            total * 1e6,
            dec * 1e6,
            m2s * 1e6
        );
        csv.push_str(&format!(
            "{workload},{name},{:.5},{:.5},{:.5}\n",
            total * 1e6,
            dec * 1e6,
            m2s * 1e6
        ));
    }
    fs::write("results/coding.csv", csv).expect("write results/coding.csv");
    println!(
        "(Gray coding pays on sequential traffic and is a wash on mixed\n\
         traffic — quantified before any RTL exists.)"
    );
    println!("-> results/coding.csv\n");
}

/// Both arbitration variants run as independent sweep points.
fn ablation(cycles: u64, seed: u64, jobs: usize) {
    println!("== Ablations: arbitration policy and idle mix ==");
    let cfg = AnalysisConfig::paper_testbench();
    let variants = [
        ("fixed-priority", ahbpower_ahb::Arbitration::FixedPriority),
        ("round-robin", ahbpower_ahb::Arbitration::RoundRobin),
    ];
    let rows = SweepRunner::new(jobs).run(&variants, |_, &(name, arbitration)| {
        let tb = PaperTestbench {
            arbitration,
            ..PaperTestbench::sized_for(cycles, seed)
        };
        let mut bus = tb.build().expect("testbench builds");
        let mut session = PowerSession::new(&cfg);
        session.run(&mut bus, cycles);
        let total = session.total_energy();
        let handover_energy: f64 = session
            .ledger()
            .rows()
            .iter()
            .filter(|r| {
                r.instruction.from == ahbpower::ActivityMode::IdleHo
                    || r.instruction.to == ahbpower::ActivityMode::IdleHo
            })
            .map(|r| r.total)
            .sum();
        let m2s_share = session.blocks().shares()[0].2;
        (
            name,
            total,
            handover_energy / total * 100.0,
            m2s_share * 100.0,
        )
    });
    let mut csv = String::from("variant,total_uj,handover_share_pct,m2s_share_pct\n");
    for (name, total, handover_pct, m2s_pct) in rows {
        println!(
            "{name:<16} total {:>9.2} uJ | handover-instr share {:>5.2}% | M2S share {:>5.2}%",
            total * 1e6,
            handover_pct,
            m2s_pct
        );
        csv.push_str(&format!(
            "{name},{:.4},{:.3},{:.3}\n",
            total * 1e6,
            handover_pct,
            m2s_pct
        ));
    }
    fs::write("results/ablation.csv", csv).expect("write results/ablation.csv");
    println!("-> results/ablation.csv\n");
}
