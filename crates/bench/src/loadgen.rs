//! `repro loadgen`: a std-only multi-threaded HTTP load generator for
//! the serve plane.
//!
//! Each worker thread opens one fresh connection per request (the
//! server is connection-per-request anyway), rotates through the
//! configured endpoint paths, and books the request's wall-clock into a
//! per-endpoint latency histogram. 503 answers are counted as shed —
//! the server's admission limit working as designed, not an error —
//! transport failures and other statuses as errors. Per-thread tallies
//! merge at the end through [`CycleHistogram::merge`], the same
//! composition the shard aggregator uses, and the report renders as the
//! `BENCH_serve.json` document `bench_snapshot.sh` collects.

use std::fmt::Write as _;
use std::thread;
use std::time::{Duration, Instant};

use ahbpower_ahb::CycleHistogram;

use crate::serve::http_get;

/// Inclusive upper bounds (µs) for the per-endpoint latency
/// histograms; an implicit overflow bucket catches anything past a
/// second.
pub const LOADGEN_LATENCY_BOUNDS_US: [u64; 13] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// Per-request socket timeout. Long enough for a loaded single-core
/// box, short enough that a hung server fails the run instead of
/// stalling it.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(5);

/// What `run_loadgen` drives.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// `host:port` of the server under test.
    pub addr: String,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// How long to generate load.
    pub duration: Duration,
    /// Endpoint paths each worker rotates through.
    pub endpoints: Vec<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: String::new(),
            concurrency: 4,
            duration: Duration::from_secs(5),
            endpoints: vec![
                "/healthz".to_string(),
                "/status".to_string(),
                "/metrics".to_string(),
                "/query?series=energy&step=10".to_string(),
                "/events?since=0&max=64".to_string(),
            ],
        }
    }
}

/// One endpoint's merged tally.
#[derive(Debug, Clone)]
pub struct EndpointStats {
    /// The path driven (query string included).
    pub path: String,
    /// Requests answered 200.
    pub ok: u64,
    /// Requests answered 503 by the admission limit.
    pub shed: u64,
    /// Transport failures and unexpected statuses.
    pub errors: u64,
    /// Wall-clock per completed request, µs (any status).
    pub latency_us: CycleHistogram,
}

impl EndpointStats {
    fn new(path: &str) -> Self {
        EndpointStats {
            path: path.to_string(),
            ok: 0,
            shed: 0,
            errors: 0,
            latency_us: CycleHistogram::new(&LOADGEN_LATENCY_BOUNDS_US),
        }
    }

    /// Requests attempted against this endpoint.
    pub fn requests(&self) -> u64 {
        self.ok + self.shed + self.errors
    }
}

/// The whole run's merged outcome.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// The server driven.
    pub addr: String,
    /// Client threads used.
    pub concurrency: usize,
    /// Measured wall-clock of the generation phase, seconds.
    pub duration_s: f64,
    /// Per-endpoint tallies, in configuration order.
    pub endpoints: Vec<EndpointStats>,
}

impl LoadgenReport {
    /// Requests attempted across every endpoint.
    pub fn requests(&self) -> u64 {
        self.endpoints.iter().map(EndpointStats::requests).sum()
    }

    /// Requests answered 200.
    pub fn ok(&self) -> u64 {
        self.endpoints.iter().map(|e| e.ok).sum()
    }

    /// Requests shed with 503.
    pub fn shed(&self) -> u64 {
        self.endpoints.iter().map(|e| e.shed).sum()
    }

    /// Transport failures and unexpected statuses.
    pub fn errors(&self) -> u64 {
        self.endpoints.iter().map(|e| e.errors).sum()
    }

    /// Attempted requests per second over the generation phase.
    pub fn throughput_rps(&self) -> f64 {
        if self.duration_s > 0.0 {
            self.requests() as f64 / self.duration_s
        } else {
            0.0
        }
    }
}

/// Drives the server at `cfg.addr` from `cfg.concurrency` threads for
/// `cfg.duration` and returns the merged tallies. Workers never abort
/// on individual request failures — errors are data here.
pub fn run_loadgen(cfg: &LoadgenConfig) -> LoadgenReport {
    let concurrency = cfg.concurrency.max(1);
    let started = Instant::now();
    let deadline = started + cfg.duration;
    let tallies: Vec<Vec<EndpointStats>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|worker| {
                let addr = cfg.addr.as_str();
                let endpoints = cfg.endpoints.as_slice();
                scope.spawn(move || {
                    let mut stats: Vec<EndpointStats> =
                        endpoints.iter().map(|p| EndpointStats::new(p)).collect();
                    // Stagger start offsets so threads don't hit the
                    // same endpoint in lockstep.
                    let mut i = worker;
                    while Instant::now() < deadline {
                        let slot = i % endpoints.len();
                        i += 1;
                        let t0 = Instant::now();
                        let outcome = http_get(addr, &endpoints[slot], REQUEST_TIMEOUT);
                        let us = t0.elapsed().as_micros() as u64;
                        let s = &mut stats[slot];
                        s.latency_us.observe(us);
                        match outcome {
                            Ok(r) if r.status == 200 => s.ok += 1,
                            Ok(r) if r.status == 503 => s.shed += 1,
                            _ => s.errors += 1,
                        }
                    }
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });
    let duration_s = started.elapsed().as_secs_f64();
    let mut merged: Vec<EndpointStats> = cfg
        .endpoints
        .iter()
        .map(|p| EndpointStats::new(p))
        .collect();
    for per_thread in &tallies {
        for (m, t) in merged.iter_mut().zip(per_thread) {
            m.ok += t.ok;
            m.shed += t.shed;
            m.errors += t.errors;
            m.latency_us.merge(&t.latency_us);
        }
    }
    LoadgenReport {
        addr: cfg.addr.clone(),
        concurrency,
        duration_s,
        endpoints: merged,
    }
}

/// Renders the report as the `BENCH_serve.json` document: run totals,
/// throughput, shed/error rates, and per-endpoint latency quantiles.
pub fn loadgen_report_json(report: &LoadgenReport, shards: usize) -> String {
    let requests = report.requests();
    let rate = |n: u64| {
        if requests > 0 {
            n as f64 / requests as f64
        } else {
            0.0
        }
    };
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"bench\":\"serve_loadgen\",\"addr\":\"{}\",\"shards\":{shards},\"concurrency\":{},\"duration_s\":{},\"requests\":{requests},\"ok\":{},\"shed\":{},\"errors\":{},\"throughput_rps\":{},\"shed_rate\":{},\"error_rate\":{},\"endpoints\":[",
        report.addr,
        report.concurrency,
        jnum(report.duration_s),
        report.ok(),
        report.shed(),
        report.errors(),
        jnum(report.throughput_rps()),
        jnum(rate(report.shed())),
        jnum(rate(report.errors()))
    );
    for (i, e) in report.endpoints.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"path\":\"{}\",\"requests\":{},\"ok\":{},\"shed\":{},\"errors\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            json_escape(&e.path),
            e.requests(),
            e.ok,
            e.shed,
            e.errors,
            jnum(e.latency_us.quantile(0.5)),
            jnum(e.latency_us.quantile(0.95)),
            jnum(e.latency_us.quantile(0.99))
        );
    }
    out.push_str("]}");
    out
}

/// Escapes the characters a URL path could smuggle into a JSON string.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON-safe float (non-finite values become `null`).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, validate_json, JsonValue};

    #[test]
    fn report_json_validates_and_carries_quantiles() {
        let mut e = EndpointStats::new("/query?series=energy&step=10");
        for us in [100, 200, 300, 4000] {
            e.latency_us.observe(us);
        }
        e.ok = 3;
        e.shed = 1;
        let report = LoadgenReport {
            addr: "127.0.0.1:1".to_string(),
            concurrency: 2,
            duration_s: 2.0,
            endpoints: vec![e],
        };
        assert_eq!(report.requests(), 4);
        assert_eq!(report.throughput_rps(), 2.0);
        let doc = loadgen_report_json(&report, 2);
        validate_json(&doc).expect("report JSON validates");
        let parsed = parse_json(&doc).expect("report parses");
        assert_eq!(parsed.get("shards").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(parsed.get("requests").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(
            parsed.get("shed_rate").and_then(JsonValue::as_f64),
            Some(0.25)
        );
        let eps = parsed
            .get("endpoints")
            .and_then(JsonValue::as_array)
            .expect("endpoints");
        assert_eq!(eps.len(), 1);
        assert!(eps[0].get("p95_us").and_then(JsonValue::as_f64).is_some());
    }

    #[test]
    fn loadgen_against_dead_port_counts_errors_not_panics() {
        // Nothing listens on the reserved port 1 — every request must
        // come back as an error, quickly, from all threads.
        let cfg = LoadgenConfig {
            addr: "127.0.0.1:1".to_string(),
            concurrency: 2,
            duration: Duration::from_millis(200),
            endpoints: vec!["/healthz".to_string()],
        };
        let report = run_loadgen(&cfg);
        assert!(report.requests() > 0, "workers attempted requests");
        assert_eq!(report.errors(), report.requests(), "all failed");
        assert_eq!(report.ok(), 0);
    }
}
