//! A minimal JSON *validator* (no parse tree) for self-checking the
//! exporters' hand-rolled output — `repro trace` runs every trace-event
//! document it writes through [`validate_json`] before declaring success.
//!
//! Recursive-descent over the RFC 8259 grammar with a fixed nesting-depth
//! limit; rejects trailing garbage. It validates rather than parses: the
//! exporters' documents can reach hundreds of megabytes, and the smoke
//! checks only need well-formedness, not a DOM.
//!
//! For the *small* documents the workspace must read back (the committed
//! `results/baseline.json`), [`parse_json`] builds a [`JsonValue`] tree
//! over the same grammar. The validator stays allocation-free for the
//! huge exporter outputs; the parser is for kilobyte-scale inputs.

use std::fmt;

/// Maximum object/array nesting accepted by [`validate_json`].
const MAX_DEPTH: usize = 64;

/// Why a document failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, message: &str) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message: message.to_string(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", char::from(expected)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.err(&format!("expected literal '{lit}'"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), JsonError> {
        if depth > MAX_DEPTH {
            return self.err("nesting deeper than 64 levels");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.eat_literal("true"),
            Some(b'f') => self.eat_literal("false"),
            Some(b'n') => self.eat_literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => self.err("expected a value"),
            None => self.err("unexpected end of input"),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), JsonError> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or '}' in object"),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), JsonError> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or ']' in array"),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.eat(b'"')?;
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                                    return self.err("\\u needs four hex digits");
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                }
                Some(c) if c < 0x20 => return self.err("raw control character in string"),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return self.err("nesting deeper than 64 levels");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => self.parse_string().map(JsonValue::String),
            Some(b't') => self.eat_literal("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| JsonValue::Bool(false)),
            Some(b'n') => self.eat_literal("null").map(|()| JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => self.err("expected a value"),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        self.skip_ws();
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return self.err("expected ',' or '}' in object"),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.err("expected ',' or ']' in array"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        let start = self.pos;
        self.string()?;
        // The validator accepted bytes [start, pos): re-walk them
        // decoding escapes, without re-checking well-formedness.
        let inner = &self.bytes[start + 1..self.pos - 1];
        let mut out = String::with_capacity(inner.len());
        let mut i = 0;
        while i < inner.len() {
            let b = inner[i];
            if b != b'\\' {
                // Multi-byte UTF-8 passes through untouched (the input
                // &str was valid UTF-8 and the validator never splits
                // code points).
                let s = core::str::from_utf8(&inner[i..])
                    .map_err(|_| JsonError {
                        offset: start + 1 + i,
                        message: "invalid UTF-8 in string".to_string(),
                    })?
                    .chars()
                    .next()
                    .ok_or(JsonError {
                        offset: start + 1 + i,
                        message: "empty char in string".to_string(),
                    })?;
                out.push(s);
                i += s.len_utf8();
                continue;
            }
            i += 1;
            match inner[i] {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'b' => out.push('\u{8}'),
                b'f' => out.push('\u{c}'),
                b'n' => out.push('\n'),
                b'r' => out.push('\r'),
                b't' => out.push('\t'),
                b'u' => {
                    let hex = hex4(&inner[i + 1..i + 5]);
                    i += 4;
                    let code = if (0xD800..0xDC00).contains(&hex)
                        && inner.get(i + 1) == Some(&b'\\')
                        && inner.get(i + 2) == Some(&b'u')
                    {
                        // Surrogate pair: combine high + low halves.
                        let low = hex4(&inner[i + 3..i + 7]);
                        i += 6;
                        0x10000 + ((hex - 0xD800) << 10) + (low - 0xDC00)
                    } else {
                        hex
                    };
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                _ => {
                    // Unreachable: string() already rejected it.
                    return Err(JsonError {
                        offset: start + 1 + i,
                        message: "invalid escape".to_string(),
                    });
                }
            }
            i += 1;
        }
        Ok(out)
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        self.number()?;
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
            offset: start,
            message: "invalid UTF-8 in number".to_string(),
        })?;
        match text.parse::<f64>() {
            Ok(n) => Ok(JsonValue::Number(n)),
            Err(_) => Err(JsonError {
                offset: start,
                message: format!("unparseable number '{text}'"),
            }),
        }
    }

    fn digits(&mut self) -> Result<(), JsonError> {
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return self.err("expected a digit");
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone 0, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits()?,
            _ => return self.err("expected a digit"),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }
}

/// Decodes exactly four hex digits (already validated) into a code unit.
fn hex4(bytes: &[u8]) -> u32 {
    bytes.iter().fold(0u32, |acc, &b| {
        acc * 16 + (b as char).to_digit(16).unwrap_or(0)
    })
}

/// Checks that `text` is exactly one well-formed JSON document (value plus
/// optional surrounding whitespace, nothing else).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first violation.
///
/// # Examples
///
/// ```
/// use ahbpower_bench::validate_json;
///
/// assert!(validate_json(r#"{"traceEvents":[{"ph":"X","ts":0.5}]}"#).is_ok());
/// assert!(validate_json("{\"unterminated\":").is_err());
/// ```
pub fn validate_json(text: &str) -> Result<(), JsonError> {
    let mut c = Cursor {
        bytes: text.as_bytes(),
        pos: 0,
    };
    c.value(0)?;
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return c.err("trailing garbage after document");
    }
    Ok(())
}

/// A parsed JSON document. Object members keep their document order
/// (duplicate keys keep the last occurrence on lookup, first wins on
/// iteration order).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (`None` for non-objects / missing keys).
    /// With duplicate keys, the last occurrence wins, matching the
    /// common "last value" JSON semantics.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => {
                members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The numeric value (`None` for non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean value (`None` for non-booleans).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements (`None` for non-arrays).
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses `text` into a [`JsonValue`] tree. Same grammar, depth limit
/// and trailing-garbage rule as [`validate_json`].
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first violation.
///
/// # Examples
///
/// ```
/// use ahbpower_bench::parse_json;
///
/// let doc = parse_json(r#"{"cycles": 200000, "rows": [{"name": "READ_READ"}]}"#)?;
/// assert_eq!(doc.get("cycles").and_then(|v| v.as_u64()), Some(200000));
/// # Ok::<(), ahbpower_bench::JsonError>(())
/// ```
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let mut c = Cursor {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = c.parse_value(0)?;
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return c.err("trailing garbage after document");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            " false ",
            "0",
            "-12.5e-3",
            "1E+10",
            "\"\"",
            r#""é\n""#,
            "[]",
            "[1, [2, [3]], {\"a\": null}]",
            "{}",
            r#"{"traceEvents":[{"name":"WRITE S0","ph":"X","ts":0.02,"dur":0.05,"args":{"id":1}}],"displayTimeUnit":"ms"}"#,
        ] {
            assert!(validate_json(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "01",
            "1.",
            "+1",
            "nul",
            "\"unterminated",
            "\"bad \\x escape\"",
            "{} {}",
            "[1] trailing",
            "{\"a\": \u{1}\"ctl\"}",
        ] {
            assert!(validate_json(doc).is_err(), "{doc} should be rejected");
        }
    }

    #[test]
    fn parser_builds_trees_and_decodes_escapes() {
        let doc = parse_json(
            r#"{"name": "paper_testbench", "cycles": 200000, "mean": -1.5e-12,
               "flags": [true, false, null], "nested": {"esc": "a\"b\\c\ndA"},
               "dup": 1, "dup": 2}"#,
        )
        .expect("valid");
        assert_eq!(
            doc.get("name").and_then(JsonValue::as_str),
            Some("paper_testbench")
        );
        assert_eq!(doc.get("cycles").and_then(JsonValue::as_u64), Some(200_000));
        assert_eq!(doc.get("mean").and_then(JsonValue::as_f64), Some(-1.5e-12));
        let flags = doc
            .get("flags")
            .and_then(JsonValue::as_array)
            .expect("array");
        assert_eq!(
            flags,
            &[
                JsonValue::Bool(true),
                JsonValue::Bool(false),
                JsonValue::Null
            ]
        );
        assert_eq!(
            doc.get("nested")
                .and_then(|n| n.get("esc"))
                .and_then(JsonValue::as_str),
            Some("a\"b\\c\nd\u{41}")
        );
        assert_eq!(doc.get("dup").and_then(JsonValue::as_f64), Some(2.0));
        assert_eq!(doc.get("missing"), None);
        // Raw multi-byte UTF-8 passes through; surrogate-pair escapes
        // decode to the supplementary-plane character.
        let emoji = parse_json(r#""😀""#).expect("valid");
        assert_eq!(emoji.as_str(), Some("\u{1F600}"));
        let escaped = parse_json(r#""\ud83d\ude00""#).expect("valid");
        assert_eq!(escaped.as_str(), Some("\u{1F600}"));
        // Non-integer and negative numbers refuse as_u64.
        assert_eq!(parse_json("1.5").expect("ok").as_u64(), None);
        assert_eq!(parse_json("-1").expect("ok").as_u64(), None);
    }

    #[test]
    fn parser_rejects_what_the_validator_rejects() {
        for doc in ["", "{", "[1,]", "{\"a\":}", "[1] trailing", "nul"] {
            assert!(parse_json(doc).is_err(), "{doc} should be rejected");
        }
        let err = parse_json("[1, oops]").expect_err("bad literal");
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn reports_offsets_and_caps_depth() {
        let err = validate_json("[1, oops]").expect_err("bad literal");
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
        let deep = format!("{}1{}", "[".repeat(80), "]".repeat(80));
        let err = validate_json(&deep).expect_err("too deep");
        assert!(err.message.contains("nesting"));
        let ok = format!("{}1{}", "[".repeat(60), "]".repeat(60));
        assert!(validate_json(&ok).is_ok());
    }
}
