//! A minimal JSON *validator* (no parse tree) for self-checking the
//! exporters' hand-rolled output — `repro trace` runs every trace-event
//! document it writes through [`validate_json`] before declaring success.
//!
//! Recursive-descent over the RFC 8259 grammar with a fixed nesting-depth
//! limit; rejects trailing garbage. It validates rather than parses: the
//! exporters' documents can reach hundreds of megabytes, and the smoke
//! checks only need well-formedness, not a DOM.

use std::fmt;

/// Maximum object/array nesting accepted by [`validate_json`].
const MAX_DEPTH: usize = 64;

/// Why a document failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, message: &str) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message: message.to_string(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", char::from(expected)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.err(&format!("expected literal '{lit}'"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), JsonError> {
        if depth > MAX_DEPTH {
            return self.err("nesting deeper than 64 levels");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.eat_literal("true"),
            Some(b'f') => self.eat_literal("false"),
            Some(b'n') => self.eat_literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => self.err("expected a value"),
            None => self.err("unexpected end of input"),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), JsonError> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or '}' in object"),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), JsonError> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or ']' in array"),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.eat(b'"')?;
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                                    return self.err("\\u needs four hex digits");
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                }
                Some(c) if c < 0x20 => return self.err("raw control character in string"),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn digits(&mut self) -> Result<(), JsonError> {
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return self.err("expected a digit");
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone 0, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits()?,
            _ => return self.err("expected a digit"),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }
}

/// Checks that `text` is exactly one well-formed JSON document (value plus
/// optional surrounding whitespace, nothing else).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first violation.
///
/// # Examples
///
/// ```
/// use ahbpower_bench::validate_json;
///
/// assert!(validate_json(r#"{"traceEvents":[{"ph":"X","ts":0.5}]}"#).is_ok());
/// assert!(validate_json("{\"unterminated\":").is_err());
/// ```
pub fn validate_json(text: &str) -> Result<(), JsonError> {
    let mut c = Cursor {
        bytes: text.as_bytes(),
        pos: 0,
    };
    c.value(0)?;
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return c.err("trailing garbage after document");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            " false ",
            "0",
            "-12.5e-3",
            "1E+10",
            "\"\"",
            r#""é\n""#,
            "[]",
            "[1, [2, [3]], {\"a\": null}]",
            "{}",
            r#"{"traceEvents":[{"name":"WRITE S0","ph":"X","ts":0.02,"dur":0.05,"args":{"id":1}}],"displayTimeUnit":"ms"}"#,
        ] {
            assert!(validate_json(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "01",
            "1.",
            "+1",
            "nul",
            "\"unterminated",
            "\"bad \\x escape\"",
            "{} {}",
            "[1] trailing",
            "{\"a\": \u{1}\"ctl\"}",
        ] {
            assert!(validate_json(doc).is_err(), "{doc} should be rejected");
        }
    }

    #[test]
    fn reports_offsets_and_caps_depth() {
        let err = validate_json("[1, oops]").expect_err("bad literal");
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
        let deep = format!("{}1{}", "[".repeat(80), "]".repeat(80));
        let err = validate_json(&deep).expect_err("too deep");
        assert!(err.message.contains("nesting"));
        let ok = format!("{}1{}", "[".repeat(60), "]".repeat(60));
        assert!(validate_json(&ok).is_ok());
    }
}
